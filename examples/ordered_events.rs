//! An ordered event timeline on the raw §3 list: concurrent appends,
//! mid-list expiry, and — the §2.2 *cell persistence* property — readers
//! that keep a cursor on an event can still read it after its deletion.
//!
//! ```sh
//! cargo run --example ordered_events
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use valois::List;

#[derive(Clone, Debug)]
struct Event {
    seq: u64,
    payload: &'static str,
}

fn main() {
    let timeline: List<Event> = List::new();
    let produced = AtomicU64::new(0);
    let expired = AtomicU64::new(0);
    let observed = AtomicU64::new(0);
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        let timeline = &timeline;
        let produced = &produced;
        let expired = &expired;
        let observed = &observed;
        let done = &done;

        // Two producers append events at the end of the timeline.
        for p in 0..2u64 {
            s.spawn(move || {
                let mut cur = timeline.cursor();
                for i in 0..5_000u64 {
                    while cur.next() {} // seek the end position
                    cur.insert(Event {
                        seq: p * 5_000 + i,
                        payload: if p == 0 { "sensor" } else { "audit" },
                    })
                    .unwrap();
                    cur.update();
                    produced.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // One expirer deletes from the front (oldest first).
        s.spawn(move || {
            let mut cur = timeline.cursor();
            for _ in 0..6_000 {
                cur.seek_first();
                if !cur.is_at_end() && cur.try_delete() {
                    expired.fetch_add(1, Ordering::Relaxed);
                }
            }
        });

        // Observers traverse the live timeline while it churns.
        for _ in 0..2 {
            s.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let mut n = 0u64;
                    timeline.for_each(|e| {
                        // Values are always intact, even if the cell was
                        // deleted under our cursor (§2.2 persistence).
                        assert!(!e.payload.is_empty());
                        n += 1;
                    });
                    observed.fetch_add(n, Ordering::Relaxed);
                }
            });
        }

        // Wait for producers/expirer by joining the scope naturally:
        // the spawned closures above finish; tell observers to stop once
        // producers are done.
        // (scope joins all threads; we flip `done` from a watcher.)
        s.spawn(move || {
            while produced.load(Ordering::Relaxed) < 10_000 {
                std::thread::yield_now();
            }
            done.store(true, Ordering::Relaxed);
        });
    });

    println!("events produced: {}", produced.load(Ordering::Relaxed));
    println!("events expired:  {}", expired.load(Ordering::Relaxed));
    println!("events observed: {}", observed.load(Ordering::Relaxed));
    println!("events live:     {}", timeline.len());
    assert_eq!(
        timeline.len() as u64,
        produced.load(Ordering::Relaxed) - expired.load(Ordering::Relaxed)
    );

    // --- Cell persistence, §2.2, demonstrated deterministically. --------
    let mut cursor = timeline.cursor();
    let first_live = cursor.get().map(|e| e.seq);
    let mut deleter = cursor.clone();
    assert!(deleter.try_delete(), "delete the event under the observer");
    drop(deleter);
    let still_readable = cursor.get().map(|e| e.seq);
    println!(
        "\npersistence: event {first_live:?} deleted; observer cursor still reads {still_readable:?}"
    );
    assert_eq!(first_live, still_readable);
    // After revalidating, the cursor moves on to live data.
    cursor.update();
    println!(
        "after update, cursor sees {:?}",
        cursor.get().map(|e| e.seq)
    );
}
