//! The paper's motivating failure mode, §1: "the delay of a process while
//! in a critical section (for example, due to a page fault, multitasking
//! preemption, …) forms a bottleneck which can cause performance problems
//! such as convoying and priority inversion."
//!
//! A "low-priority" thread occasionally stalls for 1 ms in the middle of
//! its dictionary operation. With a lock, every other thread convoys
//! behind it; with the lock-free list, the stall hurts only the sleeper.
//!
//! ```sh
//! cargo run --release --example priority_inversion
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use valois::baseline::{CriticalDelay, LockedListDict};
use valois::{Dictionary, SortedListDict};

const KEY_RANGE: u64 = 256;
const RUN: Duration = Duration::from_millis(400);

/// Runs 1 stalling "low-priority" thread + 3 clean "high-priority"
/// threads; returns (high-priority ops, low-priority ops).
fn run<D: Dictionary<u64, u64>>(dict: &D, stall_in_op: bool) -> (u64, u64) {
    for k in 0..KEY_RANGE / 2 {
        dict.insert(k * 2, k);
    }
    let stop = AtomicBool::new(false);
    let high_ops = AtomicU64::new(0);
    let low_ops = AtomicU64::new(0);
    std::thread::scope(|s| {
        let stop = &stop;
        let high_ops = &high_ops;
        let low_ops = &low_ops;
        // The stalling low-priority thread.
        s.spawn(move || {
            let mut k = 1u64;
            while !stop.load(Ordering::Relaxed) {
                k = (k * 31 + 7) % KEY_RANGE;
                if stall_in_op {
                    // Mid-operation stall — between the lock-free CAS
                    // attempts there is no critical section, so this only
                    // costs the sleeper its own time.
                    std::thread::sleep(Duration::from_millis(1));
                }
                dict.insert(k, k);
                dict.remove(&k);
                low_ops.fetch_add(2, Ordering::Relaxed);
            }
        });
        // High-priority threads, never stalling.
        for t in 0..3u64 {
            s.spawn(move || {
                let mut k = t;
                while !stop.load(Ordering::Relaxed) {
                    k = (k * 17 + 3) % KEY_RANGE;
                    let _ = dict.contains(&k);
                    high_ops.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(RUN);
        stop.store(true, Ordering::Relaxed);
    });
    (
        high_ops.load(Ordering::Relaxed),
        low_ops.load(Ordering::Relaxed),
    )
}

fn main() {
    println!("workload: 3 high-priority readers + 1 low-priority writer that");
    println!("sleeps 1ms mid-operation; {RUN:?} per run\n");

    // Lock-based: the sleeper's stall happens while HOLDING the lock.
    let locked: LockedListDict<u64, u64> =
        LockedListDict::new().with_delay(CriticalDelay::new(1.0, Duration::from_millis(1)));
    let (high_locked, low_locked) = run(&locked, false);

    // Lock-free: the same stall, but there is no lock to hold.
    let lockfree: SortedListDict<u64, u64> = SortedListDict::new();
    let (high_free, low_free) = run(&lockfree, true);

    println!("                         high-prio ops   low-prio ops");
    println!("spin-locked list       {high_locked:>15}{low_locked:>15}");
    println!("lock-free list         {high_free:>15}{low_free:>15}");
    let factor = high_free as f64 / high_locked.max(1) as f64;
    println!("\nhigh-priority throughput with the lock-free list: {factor:.1}x the locked list");
    println!(
        "(the sleeping writer convoys every reader behind the lock — §1's priority inversion)"
    );
}
