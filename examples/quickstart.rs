//! Quickstart: the lock-free list and the sorted-list dictionary.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use valois::{Dictionary, List, SortedListDict};

fn main() {
    // --- The §3 list: cursors traverse, insert before, delete at. -------
    let list: List<&str> = List::new();
    let mut cur = list.cursor();
    cur.insert("world").unwrap();
    cur.insert("hello").unwrap(); // inserts *before* the cursor position
    println!("list: {:?}", list.iter().collect::<Vec<_>>());

    // Concurrent use: any number of threads, no locks anywhere.
    let numbers: List<u64> = List::new();
    std::thread::scope(|s| {
        let numbers = &numbers;
        for t in 0..4u64 {
            s.spawn(move || {
                let mut cur = numbers.cursor();
                for i in 0..1_000 {
                    cur.insert(t * 1_000 + i).expect("arena grows on demand");
                    cur.update();
                }
            });
        }
    });
    println!("4 threads inserted {} items lock-free", numbers.len());

    // --- The §4 dictionary: unique keys, kept sorted. --------------------
    let dict: SortedListDict<u64, &str> = SortedListDict::new();
    dict.insert(3, "three");
    dict.insert(1, "one");
    dict.insert(2, "two");
    assert!(!dict.insert(2, "again"), "duplicate keys are rejected");
    println!("sorted keys: {:?}", dict.keys());
    println!("find(2) = {:?}", dict.find(&2));
    dict.remove(&2);
    println!("after remove(2): {:?}", dict.keys());

    // The memory manager (§5) recycles every node through its free list:
    let stats = dict.mem_stats();
    println!(
        "memory protocol: {} allocs, {} reclaims, {} SafeReads",
        stats.allocs, stats.reclaims, stats.safe_reads
    );
}
