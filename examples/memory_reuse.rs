//! The §5 memory-management story, end to end:
//!
//! 1. a **fixed pool** (the paper's model) that recycles every node through
//!    the lock-free free list — thousands of operations through a pool of
//!    sixteen nodes;
//! 2. **cell persistence**: a reader parked on a deleted cell keeps it
//!    alive (and readable) until the reader moves on — then, and only
//!    then, the node is recycled;
//! 3. the **ABA scenario** the §5.1 reference counts prevent, shown as
//!    counters: nodes are never re-allocated while referenced;
//! 4. the §5.2 **buddy system** for variable-sized cells.
//!
//! ```sh
//! cargo run --release --example memory_reuse
//! ```

use valois::mem::BuddyAllocator;
use valois::{ArenaConfig, List};

fn main() {
    // --- 1. Fixed pool, heavy recycling --------------------------------
    let list: List<u64> = List::with_config(ArenaConfig::new().initial_capacity(16).max_nodes(16));
    println!(
        "pool: {} nodes (3 structural + 13 usable)",
        list.node_capacity()
    );
    let mut cur = list.cursor();
    for round in 0..50_000u64 {
        cur.seek_first();
        cur.insert(round).unwrap();
        cur.update();
        assert!(cur.try_delete());
    }
    let stats = list.mem_stats();
    println!(
        "50k insert+delete cycles: {} allocs, {} reclaims, pool still {} nodes",
        stats.allocs,
        stats.reclaims,
        list.node_capacity()
    );
    assert_eq!(list.node_capacity(), 16, "never grew");

    // --- 2. Cell persistence pins a node; release recycles it ----------
    cur.insert(42).unwrap();
    cur.update();
    let reader = cur.clone(); // second cursor on the same cell
    assert!(cur.try_delete());
    let live_while_held = list.mem_stats().live_nodes();
    assert_eq!(
        reader.get(),
        Some(&42),
        "deleted cell still readable through the parked reader (§2.2)"
    );
    drop(reader);
    drop(cur);
    let live_after = list.mem_stats().live_nodes();
    println!(
        "persistence: live nodes {live_while_held} while a reader held the deleted cell, \
         {live_after} after it let go"
    );
    assert!(live_after < live_while_held);

    // --- 3. No reuse while referenced = no ABA -------------------------
    // Every allocation below returns a node address; while we hold a cursor
    // on a cell, that address can never be handed out again. We demonstrate
    // by exhausting the pool while one node is pinned.
    let mut pin = list.cursor();
    pin.insert(7).unwrap();
    pin.update();
    assert!(pin.try_delete(), "logically deleted, physically pinned");
    // The pinned node cannot be recycled: filling the pool must hit the cap
    // one insert earlier than without the pin.
    let mut filled = 0;
    let mut filler = list.cursor();
    while filler.insert(filled).is_ok() {
        filler.update();
        filled += 1;
    }
    println!("with one deleted-but-pinned node, {filled} items fit before exhaustion");
    drop(pin); // release → the node returns to the free list
    assert!(
        filler.insert(999).is_ok(),
        "dropping the pin freed exactly one cell+aux pair"
    );
    println!("after dropping the pin, one more item fits — reuse is reference-gated (§5.1)");

    // --- 4. Variable-sized cells: the §5.2 buddy system ----------------
    let buddy = BuddyAllocator::new(10); // 1024 units
    let big = buddy.alloc(8).unwrap(); // 256 units
    let mid = buddy.alloc(6).unwrap(); // 64
    let small = buddy.alloc(2).unwrap(); // 4
    println!(
        "buddy: allocated {}+{}+{} of {} units",
        big.units(),
        mid.units(),
        small.units(),
        buddy.capacity_units()
    );
    buddy.free(big);
    buddy.free(small);
    buddy.free(mid);
    assert_eq!(buddy.allocated_units(), 0);
    assert_eq!(
        buddy.probe_max_free_order(),
        Some(10),
        "all blocks merged back into one maximal region"
    );
    println!("buddy: all blocks freed and coalesced back to a single 1024-unit region");
}
