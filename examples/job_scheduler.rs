//! A work-queue scheduler built entirely from this paper's building
//! blocks (§1: "a linked list is also useful as a building block for other
//! concurrent objects"):
//!
//! * a lock-free **FIFO queue** (\[27\]) feeds incoming jobs,
//! * a lock-free **priority queue** (sorted §3 list) orders urgent work,
//! * a lock-free **hash dictionary** (§4.1) tracks job status.
//!
//! Submitters, a dispatcher, and workers all run concurrently with no
//! locks anywhere in the data path.
//!
//! ```sh
//! cargo run --release --example job_scheduler
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use valois::{Dictionary, FifoQueue, HashDict, PriorityQueue};

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Job {
    /// Lower value = more urgent (priority queue pops min first).
    priority: u8,
    id: u64,
}

fn main() {
    let inbox: FifoQueue<Job> = FifoQueue::new();
    let ready: PriorityQueue<Job> = PriorityQueue::new();
    let status: HashDict<u64, &'static str> = HashDict::with_buckets(512);

    let submitted = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    let producers_done = AtomicBool::new(false);
    let dispatcher_done = AtomicBool::new(false);

    const JOBS_PER_PRODUCER: u64 = 10_000;
    const PRODUCERS: u64 = 3;
    const TOTAL: u64 = JOBS_PER_PRODUCER * PRODUCERS;

    std::thread::scope(|s| {
        let inbox = &inbox;
        let ready = &ready;
        let status = &status;
        let submitted = &submitted;
        let completed = &completed;
        let producers_done = &producers_done;
        let dispatcher_done = &dispatcher_done;

        // Submitters: enqueue jobs with mixed priorities.
        for p in 0..PRODUCERS {
            s.spawn(move || {
                for i in 0..JOBS_PER_PRODUCER {
                    let id = p * JOBS_PER_PRODUCER + i;
                    let job = Job {
                        priority: (id % 7) as u8,
                        id,
                    };
                    status.insert(id, "submitted");
                    inbox.enqueue(job).unwrap();
                    submitted.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        s.spawn(move || {
            while submitted.load(Ordering::Relaxed) < TOTAL {
                std::thread::yield_now();
            }
            producers_done.store(true, Ordering::Release);
        });

        // Dispatcher: drains the FIFO inbox into the priority queue.
        s.spawn(move || {
            loop {
                match inbox.dequeue() {
                    Some(job) => {
                        status.remove(&job.id);
                        status.insert(job.id, "ready");
                        ready.insert(job).unwrap();
                    }
                    None => {
                        if producers_done.load(Ordering::Acquire) && inbox.is_empty() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }
            dispatcher_done.store(true, Ordering::Release);
        });

        // Workers: always take the most urgent ready job.
        for _ in 0..4 {
            s.spawn(move || loop {
                match ready.pop_min() {
                    Some(job) => {
                        status.remove(&job.id);
                        status.insert(job.id, "done");
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        if dispatcher_done.load(Ordering::Acquire) && ready.is_empty() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
    });

    println!("jobs submitted: {}", submitted.load(Ordering::Relaxed));
    println!("jobs completed: {}", completed.load(Ordering::Relaxed));
    assert_eq!(completed.load(Ordering::Relaxed), TOTAL);

    // Every job must have reached the terminal status exactly once.
    let done = (0..TOTAL)
        .filter(|id| status.find(id) == Some("done"))
        .count() as u64;
    println!("status == done:  {done}");
    assert_eq!(done, TOTAL);
    println!("all jobs flowed FIFO → priority queue → workers, lock-free ✓");
}
