//! A multi-threaded task registry on the lock-free hash dictionary —
//! the OS-kernel-style use case the paper's introduction motivates
//! (Massalin & Pu built a whole kernel on structures like these).
//!
//! Worker threads register tasks, look peers up, and retire finished
//! tasks, all concurrently and without a single lock.
//!
//! ```sh
//! cargo run --example task_registry
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use valois::{Dictionary, HashDict};

#[derive(Clone, Debug, PartialEq)]
struct Task {
    owner: u64,
    priority: u8,
}

fn main() {
    let registry: HashDict<u64, Task> = HashDict::with_buckets(256);
    let spawned = AtomicU64::new(0);
    let retired = AtomicU64::new(0);
    let lookups = AtomicU64::new(0);
    let workers = 8u64;
    let per_worker = 20_000u64;

    let t0 = Instant::now();
    std::thread::scope(|s| {
        let registry = &registry;
        let spawned = &spawned;
        let retired = &retired;
        let lookups = &lookups;
        for w in 0..workers {
            s.spawn(move || {
                for i in 0..per_worker {
                    let id = w * per_worker + i;
                    // Register a new task.
                    if registry.insert(
                        id,
                        Task {
                            owner: w,
                            priority: (i % 5) as u8,
                        },
                    ) {
                        spawned.fetch_add(1, Ordering::Relaxed);
                    }
                    // Look up a (probably) live neighbour's task.
                    let probe = id.saturating_sub(5);
                    if registry.with_value(&probe, |t| t.priority).is_some() {
                        lookups.fetch_add(1, Ordering::Relaxed);
                    }
                    // Retire an older task of ours.
                    if i >= 10 {
                        let old = w * per_worker + i - 10;
                        if registry.remove(&old) {
                            retired.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let dt = t0.elapsed();

    let spawned = spawned.load(Ordering::Relaxed);
    let retired = retired.load(Ordering::Relaxed);
    println!("workers:            {workers}");
    println!("tasks registered:   {spawned}");
    println!("tasks retired:      {retired}");
    println!("successful lookups: {}", lookups.load(Ordering::Relaxed));
    println!("live tasks:         {}", registry.len());
    println!(
        "throughput:         {:.0} registry ops/s",
        (spawned + retired) as f64 * 2.0 / dt.as_secs_f64()
    );
    assert_eq!(registry.len() as u64, spawned - retired);
    println!("accounting exact:   registered - retired == live ✓");
}
