//! # valois — lock-free linked lists using compare-and-swap
//!
//! Facade crate re-exporting the full public API of the reproduction of
//! John D. Valois, *"Lock-Free Linked Lists Using Compare-and-Swap"*
//! (PODC 1995). See `README.md` and `DESIGN.md` at the repository root.
//!
//! # What's here
//!
//! * [`List`] and its [`core::Cursor`] — the paper's §3 singly-linked
//!   list: concurrent traversal, insertion, and deletion at any position,
//!   non-blocking, using only single-word CAS plus the §5 reference-
//!   counting memory manager (no GC, no epochs, no hazard pointers).
//! * The §4 dictionaries — [`SortedListDict`], [`HashDict`],
//!   [`SkipListDict`], [`BstDict`] — all behind the [`Dictionary`] trait.
//! * Building blocks: [`Stack`], [`PriorityQueue`], and the companion
//!   [`FifoQueue`] (the paper's reference \[27\]).
//! * The competition: spin locks ([`TasLock`], [`TtasLock`],
//!   [`TicketLock`], [`ClhLock`], [`AndersonLock`]) and the lock-based
//!   dictionaries in [`baseline`], plus the intentionally broken naive CAS
//!   list whose Fig. 2/3 anomalies motivate the whole design.
//! * Measurement: [`harness`] (workloads, throughput, latency histograms,
//!   a linearizability checker) driving the E1–E9 experiment suite in
//!   `valois-bench`.
//!
//! # Quickstart
//!
//! ```
//! use valois::SortedListDict;
//! use valois::Dictionary;
//!
//! let dict: SortedListDict<u64, &str> = SortedListDict::new();
//! dict.insert(1, "one");
//! assert_eq!(dict.find(&1), Some("one"));
//! assert!(dict.remove(&1));
//! assert_eq!(dict.find(&1), None);
//! ```
//!
//! # Concurrency model
//!
//! Every structure is `Send + Sync` and every operation is linearizable
//! (§2.1); the list/dictionary/queue/stack operations are non-blocking: a
//! thread suspended at any point cannot prevent others from completing
//! (the BST's two-child deletion is obstruction-free; see its module
//! docs). Memory is recycled through type-stable arenas under the §5
//! SafeRead/Release protocol, which also provides *cell persistence* — a
//! deleted cell stays readable through cursors still visiting it — and
//! ABA freedom without tagged pointers.

#![warn(missing_docs)]

pub use valois_baseline as baseline;
pub use valois_core as core;
pub use valois_dict as dict;
pub use valois_harness as harness;
pub use valois_mem as mem;
pub use valois_server as server;
pub use valois_sync as sync;

pub use valois_core::channel::{channel, Receiver, Sender};
pub use valois_core::{FifoQueue, List, ListStats, PriorityQueue, Stack};
pub use valois_dict::{
    BstDict, Dictionary, HashDict, ResizableHashDict, SkipListDict, SortedListDict,
};
pub use valois_mem::{ArenaConfig, MemStats};
pub use valois_server::{Server, ServiceConfig};
pub use valois_sync::{
    AndersonLock, Backoff, ClhLock, Lock, LockKind, TasLock, TicketLock, TtasLock,
};
