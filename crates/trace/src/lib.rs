//! Feature-gated flight recorder for the Valois protocol stack.
//!
//! Heisenbugs in lock-free code die by *evidence*: a one-in-sixty invariant
//! failure is useless until you can see the dozen protocol steps each thread
//! took right before it. This crate is an always-on-call, almost-always-off
//! flight recorder: every layer of the workspace (`valois-sync` CAS
//! primitives, `valois-mem` SafeRead/Release/Alloc/Reclaim, `valois-core`
//! cursors, `valois-dict` structure ops) carries [`probe!`] call sites, and
//! the `recorder` feature decides whether they record or vanish.
//!
//! # Design
//!
//! * **Per-thread rings.** Each thread owns a *lane*: a fixed-size ring of
//!   binary events written with a thread-local `Fetch&Add` cursor. No
//!   locks, no allocation after the lane's one-time setup, no cross-thread
//!   cache traffic on the hot path (the cursor is cache-line padded away
//!   from the slots).
//! * **Global sequence.** A single shared `Fetch&Add` counter stamps every
//!   event, giving the merged dump a total order that matches each thread's
//!   program order (an event's stamp is taken while the event happens, so
//!   per-thread stamps are monotonic). This *is* a shared RMW per event —
//!   the documented cost of turning the recorder on.
//! * **Zero cost when off.** [`probe!`] expands to
//!   `if valois_trace::ENABLED { record(...) }`; [`ENABLED`] is a `const`
//!   evaluated when *this* crate is compiled, so with the feature off the
//!   branch folds to `if false` and the event arguments are never even
//!   evaluated. `crates/analyze` enforces that hot paths only ever use the
//!   macro form (rule `probe-discipline`).
//! * **Post-mortem dumps.** On an invariant failure (or any panic, once
//!   [`arm_panic_dump`] is installed) the recorder merges every lane by
//!   sequence number and writes a binary `.vtrace` file;
//!   `cargo xtask trace-dump <file>` renders it. See
//!   `docs/OBSERVABILITY.md` for the workflow.
//! * **Metrics façade.** Per-lane event counters and log₂ histograms are
//!   summed into a [`Metrics`] snapshot (CAS failure rate, releases per
//!   hop, backoff spin distribution) printed by the `stress` binary.
//!
//! Lanes are recycled: a thread exiting returns its ring to a free pool,
//! so thread-churny workloads (spawn-per-round hammers) stay bounded at
//! *concurrent* threads, not total threads. A recycled ring keeps its old
//! events until overwritten — the global sequence keeps the merge honest.
//!
//! This crate sits **below** `valois-sync` so the CAS primitives themselves
//! can carry probes; it therefore uses `std::sync::atomic` directly and is
//! exempt from the shim-import lint (recorded traces are diagnostic, not
//! part of the modeled protocol).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::cell::RefCell;
use std::fmt;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Compile-time switch: `true` iff this crate was built with the
/// `recorder` feature. `const` so the `probe!` branch folds away in every
/// dependent crate when the feature is off.
pub const ENABLED: bool = cfg!(feature = "recorder");

/// Events per lane (power of two). 4096 × 32 B = 128 KiB per thread —
/// roughly the last few thousand protocol steps, which in practice spans
/// several complete operations per thread.
pub const RING_CAP: usize = 4096;

/// Log₂ histogram buckets: bucket *i* counts values in `[2^(i-1), 2^i)`
/// (bucket 0 counts zeros), saturating at the top.
pub const HIST_BUCKETS: usize = 16;

/// Number of histogram families (see [`Hist`]).
pub const NHISTS: usize = 6;

/// Number of event kinds (one counter per kind).
pub const NKINDS: usize = 28;

/// Every protocol event the stack records. The three `u64` payload words
/// are kind-specific (see [`EventKind::arg_names`]); pointers are recorded
/// as raw addresses — they identify nodes within a dump, nothing more.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// CAS about to be issued: `(cell, old, new)`.
    CasAttempt = 0,
    /// CAS succeeded: `(cell, old, new)`.
    CasSuccess = 1,
    /// CAS failed: `(cell, expected, found)`.
    CasFailure = 2,
    /// A backoff wait completed: `(spins, 0, 0)` (histogrammed).
    BackoffDone = 3,
    /// Fig. 15 SafeRead took a count: `(node, prev_count, 0)`.
    SafeRead = 4,
    /// Fig. 16 Release dropped a count: `(node, prev_count, 0)`.
    Release = 5,
    /// Fig. 17 Alloc handed out a node: `(node, 0, 0)`.
    Alloc = 6,
    /// Fig. 18 Reclaim pushed a node to the free list: `(node, 0, 0)`.
    Reclaim = 7,
    /// A magazine flushed to the global free list: `(nodes, 0, 0)`.
    MagFlush = 8,
    /// A magazine refilled from the global free list: `(nodes, 0, 0)`.
    MagRefill = 9,
    /// A deferred-release batch drained: `(releases, 0, 0)`.
    DeferFlush = 10,
    /// Cursor advanced one cell: `(from, to, 0)`.
    CursorHop = 11,
    /// Fig. 9 TryInsert succeeded: `(prev, new, 0)`.
    TryInsertOk = 12,
    /// Fig. 9 TryInsert lost its CAS: `(prev, new, 0)`.
    TryInsertFail = 13,
    /// Fig. 10 TryDelete succeeded: `(prev, target, 0)`.
    TryDeleteOk = 14,
    /// Fig. 10 TryDelete lost its swing: `(prev, target, 0)`.
    TryDeleteFail = 15,
    /// Dictionary-level insert returned: `(key, inserted, 0)`.
    DictInsert = 16,
    /// Dictionary-level remove returned: `(key, removed, 0)`.
    DictRemove = 17,
    /// Skip list linked a tower cell at a level: `(cell, level, key)`.
    TowerLink = 18,
    /// Skip list inserter self-undid an upper link: `(cell, level, key)`.
    TowerUndo = 19,
    /// Skip list remover swept an upper link: `(cell, level, key)`.
    TowerSweep = 20,
    /// An invariant check failed: free-form marker `(code, 0, 0)`.
    Invariant = 21,
    /// A cursor back-walked `back_link`s to resume a retry:
    /// `(hops, landed, 0)` (hops histogrammed — the resume distance).
    CursorResume = 22,
    /// Epoch backend: a thread took an outermost pin: `(epoch, depth, 0)`.
    EpochPin = 23,
    /// Epoch backend: the global epoch advanced: `(new_epoch, 0, 0)`.
    EpochAdvance = 24,
    /// Epoch backend: a limbo collection freed nodes:
    /// `(freed, kept, 0)` (freed histogrammed — the drain batch).
    EpochDrain = 25,
    /// A memory-pressure shed ran (magazines flushed + limbo drained):
    /// `(reclaimed, 0, 0)`.
    MemShed = 26,
    /// A service shard drained one request batch:
    /// `(requests, shard, 0)` (requests histogrammed — the batch size).
    ServiceBatch = 27,
}

impl EventKind {
    /// Decodes a kind from its wire byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        use EventKind::*;
        const ALL: [EventKind; NKINDS] = [
            CasAttempt,
            CasSuccess,
            CasFailure,
            BackoffDone,
            SafeRead,
            Release,
            Alloc,
            Reclaim,
            MagFlush,
            MagRefill,
            DeferFlush,
            CursorHop,
            TryInsertOk,
            TryInsertFail,
            TryDeleteOk,
            TryDeleteFail,
            DictInsert,
            DictRemove,
            TowerLink,
            TowerUndo,
            TowerSweep,
            Invariant,
            CursorResume,
            EpochPin,
            EpochAdvance,
            EpochDrain,
            MemShed,
            ServiceBatch,
        ];
        ALL.get(v as usize).copied()
    }

    /// Short stable name (used by the `trace-dump` renderer).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::CasAttempt => "cas.attempt",
            EventKind::CasSuccess => "cas.success",
            EventKind::CasFailure => "cas.failure",
            EventKind::BackoffDone => "backoff.done",
            EventKind::SafeRead => "mem.safe_read",
            EventKind::Release => "mem.release",
            EventKind::Alloc => "mem.alloc",
            EventKind::Reclaim => "mem.reclaim",
            EventKind::MagFlush => "mem.mag_flush",
            EventKind::MagRefill => "mem.mag_refill",
            EventKind::DeferFlush => "mem.defer_flush",
            EventKind::CursorHop => "cursor.hop",
            EventKind::TryInsertOk => "list.insert_ok",
            EventKind::TryInsertFail => "list.insert_fail",
            EventKind::TryDeleteOk => "list.delete_ok",
            EventKind::TryDeleteFail => "list.delete_fail",
            EventKind::DictInsert => "dict.insert",
            EventKind::DictRemove => "dict.remove",
            EventKind::TowerLink => "skip.tower_link",
            EventKind::TowerUndo => "skip.tower_undo",
            EventKind::TowerSweep => "skip.tower_sweep",
            EventKind::Invariant => "invariant.fail",
            EventKind::CursorResume => "cursor.resume",
            EventKind::EpochPin => "epoch.pin",
            EventKind::EpochAdvance => "epoch.advance",
            EventKind::EpochDrain => "epoch.drain",
            EventKind::MemShed => "mem.shed",
            EventKind::ServiceBatch => "service.batch",
        }
    }

    /// Names of the three payload words, `""` for unused ones. Names
    /// starting with `@` render as hex addresses.
    pub fn arg_names(self) -> [&'static str; 3] {
        match self {
            EventKind::CasAttempt | EventKind::CasSuccess => ["@cell", "@old", "@new"],
            EventKind::CasFailure => ["@cell", "@expected", "@found"],
            EventKind::BackoffDone => ["spins", "", ""],
            EventKind::SafeRead | EventKind::Release => ["@node", "prev_count", ""],
            EventKind::Alloc | EventKind::Reclaim => ["@node", "", ""],
            EventKind::MagFlush | EventKind::MagRefill => ["nodes", "", ""],
            EventKind::DeferFlush => ["releases", "", ""],
            EventKind::CursorHop => ["@from", "@to", ""],
            EventKind::TryInsertOk | EventKind::TryInsertFail => ["@prev", "@new", ""],
            EventKind::TryDeleteOk | EventKind::TryDeleteFail => ["@prev", "@target", ""],
            EventKind::DictInsert => ["@cell", "inserted", ""],
            EventKind::DictRemove => ["removed", "", ""],
            EventKind::TowerLink | EventKind::TowerUndo | EventKind::TowerSweep => {
                ["@cell", "level", ""]
            }
            EventKind::Invariant => ["code", "", ""],
            EventKind::CursorResume => ["hops", "@landed", ""],
            EventKind::EpochPin => ["epoch", "depth", ""],
            EventKind::EpochAdvance => ["epoch", "", ""],
            EventKind::EpochDrain => ["freed", "kept", ""],
            EventKind::MemShed => ["reclaimed", "", ""],
            EventKind::ServiceBatch => ["requests", "shard", ""],
        }
    }

    /// The histogram family this kind feeds, if any (the first payload
    /// word is the histogrammed value).
    fn hist(self) -> Option<Hist> {
        match self {
            EventKind::BackoffDone => Some(Hist::BackoffSpins),
            EventKind::MagFlush => Some(Hist::MagazineBatch),
            EventKind::DeferFlush => Some(Hist::DeferBatch),
            EventKind::CursorResume => Some(Hist::ResumeHops),
            EventKind::EpochDrain => Some(Hist::EpochDrainBatch),
            EventKind::ServiceBatch => Some(Hist::ServiceBatch),
            _ => None,
        }
    }
}

/// Histogram families exported by the metrics façade.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hist {
    /// Spins burned per completed backoff wait.
    BackoffSpins = 0,
    /// Nodes per magazine flush.
    MagazineBatch = 1,
    /// Releases per deferred-release drain.
    DeferBatch = 2,
    /// Back-link hops per cursor resume (the resume distance).
    ResumeHops = 3,
    /// Limbo nodes freed per epoch drain.
    EpochDrainBatch = 4,
    /// Requests per service-shard drain batch.
    ServiceBatch = 5,
}

impl Hist {
    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            Hist::BackoffSpins => "backoff_spins",
            Hist::MagazineBatch => "magazine_batch",
            Hist::DeferBatch => "defer_batch",
            Hist::ResumeHops => "resume_hops",
            Hist::EpochDrainBatch => "epoch_drain_batch",
            Hist::ServiceBatch => "service_batch",
        }
    }
}

fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// One ring slot: payload words are written first (`Relaxed`), then `meta`
/// (`Release`) — a dumper that reads `meta` with `Acquire` sees a
/// consistent event or an empty/previous slot, never payload from the
/// future. (A slot being overwritten *during* the dump can still tear;
/// the renderer treats events as best-effort evidence, not ground truth.)
#[derive(Default)]
struct Slot {
    /// `seq << 8 | kind`; 0 means never written.
    meta: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    c: AtomicU64,
}

#[repr(align(128))]
#[derive(Default)]
struct PaddedCursor(AtomicU64);

/// One thread's lane: cursor, event slots, and metric counters.
struct Ring {
    /// Stable id for rendering (recycled lanes keep theirs).
    lane: u64,
    cursor: PaddedCursor,
    slots: Box<[Slot]>,
    counters: [AtomicU64; NKINDS],
    hists: [[AtomicU64; HIST_BUCKETS]; NHISTS],
}

impl Ring {
    fn new(lane: u64) -> Self {
        Self {
            lane,
            cursor: PaddedCursor::default(),
            slots: (0..RING_CAP).map(|_| Slot::default()).collect(),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }

    #[inline]
    fn push(&self, seq: u64, kind: EventKind, a: u64, b: u64, c: u64) {
        self.counters[kind as usize].fetch_add(1, Ordering::Relaxed);
        if let Some(h) = kind.hist() {
            self.hists[h as usize][bucket_of(a)].fetch_add(1, Ordering::Relaxed);
        }
        // ORDER: Relaxed Fetch&Add — the cursor is single-writer (one lane
        // per live thread); atomicity is only for concurrent dump readers.
        let idx = self.cursor.0.fetch_add(1, Ordering::Relaxed) as usize & (RING_CAP - 1);
        let slot = &self.slots[idx];
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.c.store(c, Ordering::Relaxed);
        // ORDER: Release — publish the payload before the slot reads as
        // occupied (see `Slot` docs).
        slot.meta.store(seq << 8 | kind as u64, Ordering::Release);
    }
}

/// Global event stamp; starts at 1 so `meta == 0` means "empty slot".
static SEQ: AtomicU64 = AtomicU64::new(1);

struct Registry {
    /// Every ring ever created (leaked: lanes live for the process).
    rings: Vec<&'static Ring>,
    /// Lanes whose owning thread exited, ready for reuse.
    free: Vec<&'static Ring>,
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| {
        Mutex::new(Registry {
            rings: Vec::new(),
            free: Vec::new(),
        })
    })
}

/// TLS handle owning a lane for the thread's lifetime.
struct LaneHandle {
    ring: &'static Ring,
}

impl Drop for LaneHandle {
    fn drop(&mut self) {
        if let Ok(mut reg) = registry().lock() {
            reg.free.push(self.ring);
        }
    }
}

thread_local! {
    static LANE: RefCell<Option<LaneHandle>> = const { RefCell::new(None) };
}

fn acquire_lane() -> LaneHandle {
    let mut reg = registry().lock().unwrap();
    if let Some(ring) = reg.free.pop() {
        return LaneHandle { ring };
    }
    let lane = reg.rings.len() as u64;
    let ring: &'static Ring = Box::leak(Box::new(Ring::new(lane)));
    reg.rings.push(ring);
    LaneHandle { ring }
}

/// Records one event in the calling thread's lane. **Do not call this
/// directly from protocol code** — use [`probe!`], which compiles to
/// nothing when the recorder is off (`cargo xtask analyze` rejects bare
/// `record` calls outside this crate).
#[inline]
pub fn record(kind: EventKind, a: u64, b: u64, c: u64) {
    if !ENABLED {
        return;
    }
    // ORDER: Relaxed Fetch&Add — the stamp only needs to be unique and
    // monotone per thread (RMWs on one location are totally ordered).
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    // try_with + no-op fallback: probes fired from other TLS destructors
    // after this lane was torn down are dropped, not a panic.
    let _ = LANE.try_with(|slot| {
        let mut slot = slot.borrow_mut();
        let handle = slot.get_or_insert_with(acquire_lane);
        handle.ring.push(seq, kind, a, b, c);
    });
}

// ---------------------------------------------------------------------------
// Probe macro
// ---------------------------------------------------------------------------

/// Records a protocol event iff the `recorder` feature is on.
///
/// `probe!(Kind, a, b, c)` (trailing payload words default to 0) expands
/// to `if valois_trace::ENABLED { record(...) }`. [`ENABLED`] is `const`,
/// so with the feature off the branch — *including the argument
/// expressions* — is dead code and is eliminated; hot paths pay nothing.
///
/// ```
/// let node = 0xdead_beefu64;
/// valois_trace::probe!(SafeRead, node, 2);
/// ```
#[macro_export]
macro_rules! probe {
    ($kind:ident) => {
        $crate::probe!($kind, 0u64, 0u64, 0u64)
    };
    ($kind:ident, $a:expr) => {
        $crate::probe!($kind, $a, 0u64, 0u64)
    };
    ($kind:ident, $a:expr, $b:expr) => {
        $crate::probe!($kind, $a, $b, 0u64)
    };
    ($kind:ident, $a:expr, $b:expr, $c:expr) => {
        if $crate::ENABLED {
            $crate::record($crate::EventKind::$kind, $a as u64, $b as u64, $c as u64);
        }
    };
}

// ---------------------------------------------------------------------------
// Metrics façade
// ---------------------------------------------------------------------------

/// A point-in-time sum of every lane's counters and histograms.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Events recorded per [`EventKind`], indexed by the kind's byte.
    pub counts: [u64; NKINDS],
    /// Log₂ histograms per [`Hist`] family.
    pub hists: [[u64; HIST_BUCKETS]; NHISTS],
}

impl Metrics {
    /// Events of one kind.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Fraction of decided CAS operations that failed (`None` if no CAS
    /// outcome was recorded).
    pub fn cas_failure_rate(&self) -> Option<f64> {
        let ok = self.count(EventKind::CasSuccess);
        let fail = self.count(EventKind::CasFailure);
        let total = ok + fail;
        (total > 0).then(|| fail as f64 / total as f64)
    }

    /// `Release` operations per cursor hop (`None` before any hop) — the
    /// per-hop refcount traffic the batching layers exist to amortize.
    pub fn releases_per_hop(&self) -> Option<f64> {
        let hops = self.count(EventKind::CursorHop);
        (hops > 0).then(|| self.count(EventKind::Release) as f64 / hops as f64)
    }

    /// Total samples in a histogram family.
    pub fn hist_samples(&self, h: Hist) -> u64 {
        self.hists[h as usize].iter().sum()
    }

    /// `true` iff nothing was recorded (e.g. the recorder is off).
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace metrics:")?;
        for i in 0..NKINDS {
            let kind = EventKind::from_u8(i as u8).expect("kind index in range");
            if self.counts[i] > 0 {
                writeln!(f, "  {:<18} {:>12}", kind.name(), self.counts[i])?;
            }
        }
        if let Some(r) = self.cas_failure_rate() {
            writeln!(f, "  cas_failure_rate   {:>12.4}", r)?;
        }
        if let Some(r) = self.releases_per_hop() {
            writeln!(f, "  releases_per_hop   {:>12.2}", r)?;
        }
        for h in [
            Hist::BackoffSpins,
            Hist::MagazineBatch,
            Hist::DeferBatch,
            Hist::ResumeHops,
            Hist::EpochDrainBatch,
            Hist::ServiceBatch,
        ] {
            let row = &self.hists[h as usize];
            if row.iter().any(|&c| c > 0) {
                write!(f, "  {:<18} [", h.name())?;
                for (i, &c) in row.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{c}")?;
                }
                writeln!(f, "]  (log2 buckets)")?;
            }
        }
        Ok(())
    }
}

/// Sums every lane's counters into a [`Metrics`] snapshot. Cheap (reads
/// `O(lanes)` counters, touches no event slots); all-zero when the
/// recorder is off.
pub fn snapshot() -> Metrics {
    let mut m = Metrics::default();
    if !ENABLED {
        return m;
    }
    let reg = registry().lock().unwrap();
    for ring in &reg.rings {
        for (i, ctr) in ring.counters.iter().enumerate() {
            m.counts[i] += ctr.load(Ordering::Relaxed);
        }
        for (hi, hist) in ring.hists.iter().enumerate() {
            for (bi, b) in hist.iter().enumerate() {
                m.hists[hi][bi] += b.load(Ordering::Relaxed);
            }
        }
    }
    m
}

// ---------------------------------------------------------------------------
// Post-mortem dump
// ---------------------------------------------------------------------------

/// One decoded event from a dump.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Global order stamp.
    pub seq: u64,
    /// Lane (thread) that recorded it.
    pub lane: u64,
    /// Wire byte of the kind (may be unknown to an older renderer).
    pub kind: u8,
    /// Payload words.
    pub args: [u64; 3],
}

/// A parsed `.vtrace` file.
#[derive(Clone, Debug)]
pub struct TraceFile {
    /// Why the dump was taken (panic message / invariant text).
    pub reason: String,
    /// Events merged across lanes, ascending `seq`.
    pub events: Vec<Event>,
    /// Counter totals at dump time.
    pub counts: Vec<u64>,
}

const MAGIC: &[u8; 8] = b"VTRACE01";

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

impl TraceFile {
    /// Parses a `.vtrace` file written by [`dump`].
    pub fn read(path: &Path) -> std::io::Result<TraceFile> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        let mut cur = Reader {
            bytes: &bytes,
            off: 0,
        };
        if cur.take(8)? != MAGIC {
            return Err(Reader::bad("not a VTRACE01 file"));
        }
        let reason_len = cur.u64()? as usize;
        let reason = String::from_utf8_lossy(cur.take(reason_len)?).into_owned();
        let nevents = cur.u64()? as usize;
        let mut events = Vec::with_capacity(nevents.min(1 << 20));
        for _ in 0..nevents {
            let seq = cur.u64()?;
            let lane = cur.u64()?;
            let kind = cur.u64()? as u8;
            let args = [cur.u64()?, cur.u64()?, cur.u64()?];
            events.push(Event {
                seq,
                lane,
                kind,
                args,
            });
        }
        let ncounts = cur.u64()? as usize;
        let mut counts = Vec::with_capacity(ncounts.min(1 << 10));
        for _ in 0..ncounts {
            counts.push(cur.u64()?);
        }
        Ok(TraceFile {
            reason,
            events,
            counts,
        })
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn bad(msg: &str) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
    }

    fn take(&mut self, n: usize) -> std::io::Result<&'a [u8]> {
        let s = self
            .bytes
            .get(
                self.off
                    ..self
                        .off
                        .checked_add(n)
                        .ok_or_else(|| Self::bad("overflow"))?,
            )
            .ok_or_else(|| Self::bad("truncated"))?;
        self.off += n;
        Ok(s)
    }

    fn u64(&mut self) -> std::io::Result<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }
}

/// Merges every lane's surviving events (time-ordered by the global
/// stamp) and writes them, with the counter totals and `reason`, to a
/// `.vtrace` file. The file lands in `$VALOIS_TRACE_DIR` (default: the
/// current directory). Returns the path, or `None` when the recorder is
/// off or the write failed (a dump must never turn a failing test into a
/// different failure).
pub fn dump(reason: &str) -> Option<PathBuf> {
    if !ENABLED {
        return None;
    }
    let metrics = snapshot();
    let mut events: Vec<Event> = Vec::new();
    {
        let reg = registry().lock().ok()?;
        for ring in &reg.rings {
            for slot in ring.slots.iter() {
                // ORDER: Acquire — pairs with the push's Release so the
                // payload reads are not from the slot's future.
                let meta = slot.meta.load(Ordering::Acquire);
                if meta == 0 {
                    continue;
                }
                events.push(Event {
                    seq: meta >> 8,
                    lane: ring.lane,
                    kind: (meta & 0xff) as u8,
                    args: [
                        slot.a.load(Ordering::Relaxed),
                        slot.b.load(Ordering::Relaxed),
                        slot.c.load(Ordering::Relaxed),
                    ],
                });
            }
        }
    }
    events.sort_by_key(|e| e.seq);

    let mut out = Vec::with_capacity(64 + events.len() * 48);
    out.extend_from_slice(MAGIC);
    put_u64(&mut out, reason.len() as u64);
    out.extend_from_slice(reason.as_bytes());
    put_u64(&mut out, events.len() as u64);
    for e in &events {
        put_u64(&mut out, e.seq);
        put_u64(&mut out, e.lane);
        put_u64(&mut out, e.kind as u64);
        for &a in &e.args {
            put_u64(&mut out, a);
        }
    }
    put_u64(&mut out, NKINDS as u64);
    for &c in &metrics.counts {
        put_u64(&mut out, c);
    }

    let dir = std::env::var_os("VALOIS_TRACE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    std::fs::create_dir_all(&dir).ok()?;
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let path = dir.join(format!("valois-{}-{stamp}.vtrace", std::process::id()));
    let mut f = std::fs::File::create(&path).ok()?;
    f.write_all(&out).ok()?;
    Some(path)
}

/// Installs a process-wide panic hook (once) that writes a post-mortem
/// dump before the default hook runs, so *any* failed assertion — an
/// invariant walker, a refcount audit, a plain test `assert!` — leaves a
/// `.vtrace` artifact. No-op when the recorder is off.
pub fn arm_panic_dump() {
    static ARMED: OnceLock<()> = OnceLock::new();
    if !ENABLED {
        return;
    }
    ARMED.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let reason = info.to_string();
            record(EventKind::Invariant, 0, 0, 0);
            if let Some(path) = dump(&reason) {
                eprintln!("[valois-trace] post-mortem written to {}", path.display());
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_compiles_and_respects_gate() {
        probe!(CasAttempt, 1, 2, 3);
        probe!(SafeRead, 7);
        probe!(Invariant);
        let m = snapshot();
        if ENABLED {
            assert!(m.count(EventKind::CasAttempt) >= 1);
        } else {
            assert!(m.is_empty());
        }
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[cfg(feature = "recorder")]
    #[test]
    fn dump_roundtrips() {
        for i in 0..100u64 {
            record(EventKind::CursorHop, i, i + 1, 0);
        }
        let dir = std::env::temp_dir();
        std::env::set_var("VALOIS_TRACE_DIR", &dir);
        let path = dump("roundtrip test").expect("dump written");
        let parsed = TraceFile::read(&path).expect("parses");
        assert_eq!(parsed.reason, "roundtrip test");
        assert!(parsed.events.len() >= 100);
        assert!(parsed.events.windows(2).all(|w| w[0].seq <= w[1].seq));
        assert_eq!(parsed.counts.len(), NKINDS);
        std::fs::remove_file(path).ok();
    }
}
