//! The naive CAS list of §2.2 — deliberately broken, to demonstrate the
//! two anomalies that motivate auxiliary nodes.
//!
//! "At first glance, it may not seem too difficult to implement a
//! lock-free linked list. … However, when we consider deleting cells from
//! the list we run into difficulties." (§2.2)
//!
//! This list swings `next` pointers of *cells themselves* with CAS. Its
//! insert and delete both succeed locally, yet their combination corrupts
//! the list (Fig. 2: a cell inserted after a concurrently-deleted
//! predecessor vanishes; Fig. 3: of two adjacent deletions one is undone).
//! The unit tests drive the exact interleavings from the figures through
//! the step-level API ([`NaiveList::locate`], [`NaiveList::cas_next`]).
//!
//! Memory is intentionally never reclaimed (nodes leak until the list is
//! dropped): without §5's SafeRead/Release there is no safe moment to free
//! a node — which is itself part of the paper's motivation.

use std::fmt;
use valois_sync::shim::atomic::{AtomicPtr, Ordering};

/// A node of the naive list.
pub struct NaiveNode<T> {
    value: T,
    next: AtomicPtr<NaiveNode<T>>,
}

impl<T> NaiveNode<T> {
    /// The node's value.
    pub fn value(&self) -> &T {
        &self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for NaiveNode<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NaiveNode")
            .field("value", &self.value)
            .finish()
    }
}

/// The §2.2 naive sorted CAS list (no auxiliary nodes — **intentionally
/// unsound under concurrent insert+delete**; see module docs).
pub struct NaiveList<T: Ord> {
    /// Head dummy (simplifies edge cases; analogous to the paper's first
    /// dummy cell).
    head: Box<NaiveNode<T>>,
    /// Every node ever allocated, freed on drop (no safe reclamation
    /// exists mid-flight — that is the point).
    graveyard: std::sync::Mutex<Vec<*mut NaiveNode<T>>>,
}

// SAFETY: nodes are leaked for the list's lifetime; all mutation is CAS.
unsafe impl<T: Ord + Send + Sync> Send for NaiveList<T> {}
// SAFETY: as above — no reclamation means no use-after-free to race on.
unsafe impl<T: Ord + Send + Sync> Sync for NaiveList<T> {}

impl<T: Ord + Default> NaiveList<T> {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self {
            head: Box::new(NaiveNode {
                value: T::default(),
                next: AtomicPtr::new(std::ptr::null_mut()),
            }),
            graveyard: std::sync::Mutex::new(Vec::new()),
        }
    }
}

impl<T: Ord + Default> Default for NaiveList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord> NaiveList<T> {
    fn alloc(&self, value: T) -> *mut NaiveNode<T> {
        let p = Box::into_raw(Box::new(NaiveNode {
            value,
            next: AtomicPtr::new(std::ptr::null_mut()),
        }));
        self.graveyard.lock().unwrap().push(p);
        p
    }

    /// Finds the position for `value`: returns `(prev, cur)` where `prev`
    /// is the last node with value < `value` and `cur` is `prev`'s
    /// successor (null at the tail). Step-level API for the anomaly tests.
    pub fn locate(&self, value: &T) -> (*mut NaiveNode<T>, *mut NaiveNode<T>) {
        let mut prev = self.head.as_ref() as *const NaiveNode<T> as *mut NaiveNode<T>;
        // SAFETY: nodes are never freed while the list lives.
        unsafe {
            let mut cur = (*prev).next.load(Ordering::Acquire);
            while !cur.is_null() && (*cur).value < *value {
                prev = cur;
                cur = (*cur).next.load(Ordering::Acquire);
            }
            (prev, cur)
        }
    }

    /// Raw CAS on a node's next pointer — the only mutation primitive the
    /// naive design has. Step-level API for the anomaly tests.
    ///
    /// # Safety
    ///
    /// `node` must be a node of *this* list (head handle or a pointer
    /// returned by [`NaiveList::locate`]/[`NaiveList::make_node`]); such
    /// nodes are never freed while the list lives.
    // GUARD: node — the caller guarantees `node` outlives the call (this
    // baseline never frees list nodes while the list lives).
    pub unsafe fn cas_next(
        &self,
        node: *mut NaiveNode<T>,
        old: *mut NaiveNode<T>,
        new: *mut NaiveNode<T>,
    ) -> bool {
        (*node)
            .next
            .compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Reads a node's successor.
    ///
    /// # Safety
    ///
    /// Same contract as [`NaiveList::cas_next`].
    // GUARD: node — same liveness guarantee as `cas_next`.
    pub unsafe fn next_of(&self, node: *mut NaiveNode<T>) -> *mut NaiveNode<T> {
        (*node).next.load(Ordering::Acquire)
    }

    /// Allocates a detached node (not yet linked). Step-level API.
    pub fn make_node(&self, value: T) -> *mut NaiveNode<T> {
        self.alloc(value)
    }

    /// Sorted insert. Returns false if the value is already present.
    // COUNT: this baseline has no reference counts — `alloc` leaks into the
    // graveyard by design and the node is owned by the list (or the
    // graveyard, on the duplicate path) forever.
    pub fn insert(&self, value: T) -> bool {
        // SAFETY: nodes are never freed while the list lives.
        unsafe {
            let node = self.alloc(value);
            loop {
                let (prev, cur) = self.locate(&(*node).value);
                if !cur.is_null() && (*cur).value == (*node).value {
                    return false;
                }
                (*node).next.store(cur, Ordering::Release);
                if self.cas_next(prev, cur, node) {
                    return true;
                }
            }
        }
    }

    /// Delete by value: `CAS(prev.next, cur, cur.next)` — the §2.2 recipe
    /// whose combination with concurrent neighbours corrupts the list.
    pub fn remove(&self, value: &T) -> bool {
        // SAFETY: nodes are never freed while the list lives.
        unsafe {
            loop {
                let (prev, cur) = self.locate(value);
                if cur.is_null() || (*cur).value != *value {
                    return false;
                }
                let next = (*cur).next.load(Ordering::Acquire);
                if self.cas_next(prev, cur, next) {
                    return true;
                }
            }
        }
    }

    /// Whether `value` is currently reachable.
    pub fn contains(&self, value: &T) -> bool {
        let (_, cur) = self.locate(value);
        // SAFETY: nodes are never freed while the list lives.
        unsafe { !cur.is_null() && (*cur).value == *value }
    }

    /// Reachable values, front to back.
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::new();
        // SAFETY: nodes are never freed while the list lives.
        unsafe {
            let mut cur = self.head.next.load(Ordering::Acquire);
            while !cur.is_null() {
                out.push((*cur).value.clone());
                cur = (*cur).next.load(Ordering::Acquire);
            }
        }
        out
    }

    /// Head handle for step-level tests.
    pub fn head_ptr(&self) -> *mut NaiveNode<T> {
        self.head.as_ref() as *const NaiveNode<T> as *mut NaiveNode<T>
    }
}

impl<T: Ord> Drop for NaiveList<T> {
    fn drop(&mut self) {
        for p in self.graveyard.lock().unwrap().drain(..) {
            // SAFETY: exclusive access in drop; every allocation is in the
            // graveyard exactly once.
            unsafe { drop(Box::from_raw(p)) };
        }
    }
}

impl<T: Ord + fmt::Debug + Clone> fmt::Debug for NaiveList<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NaiveList")
            .field("items", &self.to_vec())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 2: "Deletion of B concurrent with insertion of C."
    ///
    /// List A → B → D. Process 1 prepares to insert C after B (has read
    /// B.next = D). Process 2 deletes B. Process 1's CAS on B.next still
    /// *succeeds* — but B is unreachable, so C is silently lost.
    #[test]
    fn fig2_insert_lost_after_concurrent_delete() {
        let list: NaiveList<u32> = NaiveList::new();
        list.insert(1); // A
        list.insert(2); // B
        list.insert(4); // D

        // Process 1 prepares the insertion of C=3 after B.
        let (b, d) = list.locate(&3); // prev = B, cur = D
        let c = list.make_node(3);
        unsafe { (*c).next.store(d, Ordering::Release) };

        // Process 2 deletes B: CAS(A.next, B, D).
        assert!(list.remove(&2));
        assert!(!list.contains(&2));

        // Process 1 completes its insertion — the CAS SUCCEEDS...
        assert!(
            unsafe { list.cas_next(b, d, c) },
            "the naive CAS cannot detect that B was deleted"
        );
        // ...but C is not in the list: the anomaly of Fig. 2.
        assert!(
            !list.contains(&3),
            "Fig. 2 anomaly: the inserted cell must have been lost"
        );
        assert_eq!(list.to_vec(), vec![1, 4]);
    }

    /// Fig. 3: "Concurrent deletion of B and C; second is undone."
    ///
    /// List A → B → C → D. Process 1 deletes B (CAS A.next: B→C);
    /// process 2 deletes C (CAS B.next: C→D). Both CAS succeed, yet C is
    /// still reachable: its deletion was undone by the other.
    #[test]
    fn fig3_adjacent_delete_undone() {
        let list: NaiveList<u32> = NaiveList::new();
        for v in [1, 2, 3, 4] {
            list.insert(v); // A=1, B=2, C=3, D=4
        }
        let (a, b) = list.locate(&2);
        let (b2, c) = list.locate(&3);
        assert_eq!(b, b2);
        let d = unsafe { list.next_of(c) };

        // Process 2 starts deleting C but stalls just before its CAS;
        // process 1 deletes B first.
        assert!(
            unsafe { list.cas_next(a, b, c) },
            "delete B: CAS(A.next, B, C)"
        );
        // Process 2 resumes: CAS(B.next, C, D) — still succeeds, because
        // nothing marks B as deleted.
        assert!(
            unsafe { list.cas_next(b, c, d) },
            "delete C: CAS(B.next, C, D)"
        );

        // Both deletions "succeeded", yet C is still in the list.
        assert!(
            list.contains(&3),
            "Fig. 3 anomaly: C's deletion must have been undone"
        );
        assert_eq!(list.to_vec(), vec![1, 3, 4]);
    }

    #[test]
    fn sequential_operations_work() {
        // Without adversarial interleavings the naive list is a fine
        // sorted list — which is exactly why the bug class is insidious.
        let list: NaiveList<u32> = NaiveList::new();
        for v in [5, 1, 3, 2, 4] {
            assert!(list.insert(v));
        }
        assert!(!list.insert(3));
        assert_eq!(list.to_vec(), vec![1, 2, 3, 4, 5]);
        assert!(list.remove(&3));
        assert!(!list.remove(&3));
        assert_eq!(list.to_vec(), vec![1, 2, 4, 5]);
    }

    #[test]
    fn disjoint_concurrent_inserts_survive() {
        // Insert-only workloads do not trigger the anomalies (§2.2 says
        // insertion alone is "straightforward").
        let list: NaiveList<u64> = NaiveList::new();
        std::thread::scope(|s| {
            let list = &list;
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..250 {
                        assert!(list.insert(t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(list.to_vec().len(), 1000);
    }
}
