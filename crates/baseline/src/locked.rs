//! Mutual-exclusion baselines (§1's "conventional way"): the same sorted
//! singly-linked-list dictionary, protected by a lock.
//!
//! The point of experiment E2 is the paper's core motivation: "the delay
//! of a process while in a critical section (for example, due to a page
//! fault, multitasking preemption, memory access latency, etc.) forms a
//! bottleneck". Every lock-based dictionary here accepts a
//! [`CriticalDelay`] that stalls the caller *while holding the lock*,
//! simulating exactly that failure mode; the lock-free structures keep
//! making progress under the same injected stalls, the locked ones convoy.

use std::cell::{Cell, UnsafeCell};
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{BuildHasher, Hash, Hasher, RandomState};
use std::sync::Mutex;
use std::time::Duration;

use valois_dict::Dictionary;
use valois_sync::{Lock, TtasLock};

/// Probabilistic stall injected inside critical sections (see module
/// docs). `probability` is per operation; the stall is a real
/// `thread::sleep`, modelling the thread being descheduled.
#[derive(Clone, Debug, Default)]
pub struct CriticalDelay {
    /// Chance (0.0–1.0) that an operation stalls.
    pub probability: f64,
    /// How long a stalled operation holds still.
    pub stall: Duration,
}

thread_local! {
    static DELAY_RNG: Cell<u64> = const { Cell::new(0) };
}

impl CriticalDelay {
    /// No injected delays.
    pub fn none() -> Self {
        Self::default()
    }

    /// Stall for `stall` with probability `probability` per operation.
    pub fn new(probability: f64, stall: Duration) -> Self {
        Self { probability, stall }
    }

    /// Rolls the dice; sleeps if the stall fires.
    pub fn maybe_stall(&self) {
        if self.probability <= 0.0 {
            return;
        }
        let roll = DELAY_RNG.with(|c| {
            let mut x = c.get();
            if x == 0 {
                // Seed from the thread's identity.
                let mut h = std::hash::DefaultHasher::new();
                std::thread::current().id().hash(&mut h);
                x = h.finish() | 1;
            }
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            c.set(x);
            (x >> 11) as f64 / (1u64 << 53) as f64
        });
        if roll < self.probability {
            std::thread::sleep(self.stall);
        }
    }
}

/// A plain sequential sorted singly-linked list — the data structure the
/// paper's lock-based competitor protects. Box-based so its cache
/// behaviour matches the lock-free list's (pointer chasing), unlike an
/// array or B-tree.
pub struct SeqSortedList<K, V> {
    head: Option<Box<SeqNode<K, V>>>,
    len: usize,
}

struct SeqNode<K, V> {
    key: K,
    value: V,
    next: Option<Box<SeqNode<K, V>>>,
}

impl<K: Ord, V> SeqSortedList<K, V> {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self { head: None, len: 0 }
    }

    /// Inserts sorted; `false` if the key exists.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        let mut cursor = &mut self.head;
        loop {
            match cursor {
                Some(node) if node.key < key => {
                    cursor = &mut cursor.as_mut().unwrap().next;
                }
                Some(node) if node.key == key => return false,
                _ => {
                    let next = cursor.take();
                    *cursor = Some(Box::new(SeqNode { key, value, next }));
                    self.len += 1;
                    return true;
                }
            }
        }
    }

    /// Removes by key; `false` if absent.
    pub fn remove(&mut self, key: &K) -> bool {
        let mut cursor = &mut self.head;
        loop {
            match cursor {
                Some(node) if node.key < *key => {
                    cursor = &mut cursor.as_mut().unwrap().next;
                }
                Some(node) if node.key == *key => {
                    let removed = cursor.take().unwrap();
                    *cursor = removed.next;
                    self.len -= 1;
                    return true;
                }
                _ => return false,
            }
        }
    }

    /// Looks up by key.
    pub fn find(&self, key: &K) -> Option<&V> {
        let mut cursor = &self.head;
        while let Some(node) = cursor {
            if node.key == *key {
                return Some(&node.value);
            }
            if node.key > *key {
                return None;
            }
            cursor = &node.next;
        }
        None
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<K: Ord, V> Default for SeqSortedList<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> fmt::Debug for SeqSortedList<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SeqSortedList")
            .field("len", &self.len)
            .finish()
    }
}

impl<K, V> Drop for SeqSortedList<K, V> {
    fn drop(&mut self) {
        // Iterative teardown: the default recursive drop overflows the
        // stack on long lists.
        let mut cursor = self.head.take();
        while let Some(mut node) = cursor {
            cursor = node.next.take();
        }
    }
}

/// The sorted-list dictionary under a single spin lock (§1 baseline).
///
/// Generic over the lock algorithm; defaults to TTAS-with-backoff, the
/// strongest simple spin lock of the era the paper compares against.
pub struct LockedListDict<K, V, L: Lock = TtasLock> {
    lock: L,
    list: UnsafeCell<SeqSortedList<K, V>>,
    delay: CriticalDelay,
}

// SAFETY: `list` is only touched while `lock` is held.
unsafe impl<K: Send, V: Send, L: Lock> Send for LockedListDict<K, V, L> {}
// SAFETY: as above — the lock serializes every shared access.
unsafe impl<K: Send, V: Send, L: Lock> Sync for LockedListDict<K, V, L> {}

impl<K: Ord, V> LockedListDict<K, V, TtasLock> {
    /// Creates an empty TTAS-locked dictionary.
    pub fn new() -> Self {
        Self::with_lock(TtasLock::new())
    }
}

impl<K: Ord, V> Default for LockedListDict<K, V, TtasLock> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V, L: Lock> LockedListDict<K, V, L> {
    /// Creates an empty dictionary guarded by `lock`.
    pub fn with_lock(lock: L) -> Self {
        Self {
            lock,
            list: UnsafeCell::new(SeqSortedList::new()),
            delay: CriticalDelay::none(),
        }
    }

    /// Sets the critical-section stall injector (experiment E2).
    pub fn with_delay(mut self, delay: CriticalDelay) -> Self {
        self.delay = delay;
        self
    }

    fn locked<R>(&self, f: impl FnOnce(&mut SeqSortedList<K, V>) -> R) -> R {
        self.lock.acquire();
        // The injected stall happens while the lock is held — the paper's
        // §1 bottleneck scenario.
        self.delay.maybe_stall();
        // SAFETY: exclusive by mutual exclusion.
        let r = f(unsafe { &mut *self.list.get() });
        self.lock.release();
        r
    }
}

impl<K, V, L> Dictionary<K, V> for LockedListDict<K, V, L>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
    L: Lock,
{
    fn insert(&self, key: K, value: V) -> bool {
        self.locked(|l| l.insert(key, value))
    }

    fn remove(&self, key: &K) -> bool {
        self.locked(|l| l.remove(key))
    }

    fn find(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.locked(|l| l.find(key).cloned())
    }

    fn contains(&self, key: &K) -> bool {
        self.locked(|l| l.find(key).is_some())
    }

    fn len(&self) -> usize {
        self.locked(|l| l.len())
    }
}

impl<K, V, L: Lock> fmt::Debug for LockedListDict<K, V, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("LockedListDict { .. }")
    }
}

/// The sorted-list dictionary under a blocking [`std::sync::Mutex`]
/// (the OS-assisted alternative to spinning).
pub struct MutexListDict<K, V> {
    list: Mutex<SeqSortedList<K, V>>,
    delay: CriticalDelay,
}

impl<K: Ord, V> MutexListDict<K, V> {
    /// Creates an empty mutex-guarded dictionary.
    pub fn new() -> Self {
        Self {
            list: Mutex::new(SeqSortedList::new()),
            delay: CriticalDelay::none(),
        }
    }

    /// Sets the critical-section stall injector (experiment E2).
    pub fn with_delay(mut self, delay: CriticalDelay) -> Self {
        self.delay = delay;
        self
    }

    fn locked<R>(&self, f: impl FnOnce(&mut SeqSortedList<K, V>) -> R) -> R {
        let mut guard = self.list.lock().unwrap();
        self.delay.maybe_stall();
        f(&mut guard)
    }
}

impl<K: Ord, V> Default for MutexListDict<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Dictionary<K, V> for MutexListDict<K, V>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
{
    fn insert(&self, key: K, value: V) -> bool {
        self.locked(|l| l.insert(key, value))
    }

    fn remove(&self, key: &K) -> bool {
        self.locked(|l| l.remove(key))
    }

    fn find(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.locked(|l| l.find(key).cloned())
    }

    fn contains(&self, key: &K) -> bool {
        self.locked(|l| l.find(key).is_some())
    }

    fn len(&self) -> usize {
        self.locked(|l| l.len())
    }
}

impl<K, V> fmt::Debug for MutexListDict<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MutexListDict { .. }")
    }
}

/// Hash table with one spin lock per bucket — the conventional competitor
/// for the §4.1 hash dictionary (E4).
pub struct LockedHashDict<K, V, S: BuildHasher = RandomState> {
    buckets: Box<[LockedListDict<K, V, TtasLock>]>,
    hasher: S,
}

impl<K: Ord + Hash, V> LockedHashDict<K, V> {
    /// Creates a table with `buckets` TTAS-locked buckets.
    pub fn with_buckets(buckets: usize) -> Self {
        Self {
            buckets: (0..buckets.max(1)).map(|_| LockedListDict::new()).collect(),
            hasher: RandomState::new(),
        }
    }

    /// Applies a stall injector to every bucket (experiment E2/E4).
    pub fn with_delay(mut self, delay: CriticalDelay) -> Self {
        for b in self.buckets.iter_mut() {
            b.delay = delay.clone();
        }
        self
    }

    fn bucket(&self, key: &K) -> &LockedListDict<K, V, TtasLock> {
        let h = self.hasher.hash_one(key);
        &self.buckets[(h as usize) % self.buckets.len()]
    }
}

impl<K, V> Dictionary<K, V> for LockedHashDict<K, V>
where
    K: Ord + Hash + Send + Sync,
    V: Send + Sync,
{
    fn insert(&self, key: K, value: V) -> bool {
        self.bucket(&key).insert(key, value)
    }

    fn remove(&self, key: &K) -> bool {
        self.bucket(key).remove(key)
    }

    fn find(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.bucket(key).find(key)
    }

    fn contains(&self, key: &K) -> bool {
        self.bucket(key).contains(key)
    }

    fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }
}

impl<K, V, S: BuildHasher> fmt::Debug for LockedHashDict<K, V, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockedHashDict")
            .field("buckets", &self.buckets.len())
            .finish()
    }
}

/// A balanced search tree under one global mutex — the conventional
/// competitor for the §4.2 BST (E6).
pub struct LockedBstDict<K, V> {
    map: Mutex<BTreeMap<K, V>>,
    delay: CriticalDelay,
}

impl<K: Ord, V> LockedBstDict<K, V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self {
            map: Mutex::new(BTreeMap::new()),
            delay: CriticalDelay::none(),
        }
    }

    /// Sets the critical-section stall injector.
    pub fn with_delay(mut self, delay: CriticalDelay) -> Self {
        self.delay = delay;
        self
    }
}

impl<K: Ord, V> Default for LockedBstDict<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Dictionary<K, V> for LockedBstDict<K, V>
where
    K: Ord + Send + Sync,
    V: Send + Sync,
{
    fn insert(&self, key: K, value: V) -> bool {
        let mut m = self.map.lock().unwrap();
        self.delay.maybe_stall();
        match m.entry(key) {
            std::collections::btree_map::Entry::Occupied(_) => false,
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(value);
                true
            }
        }
    }

    fn remove(&self, key: &K) -> bool {
        let mut m = self.map.lock().unwrap();
        self.delay.maybe_stall();
        m.remove(key).is_some()
    }

    fn find(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let m = self.map.lock().unwrap();
        self.delay.maybe_stall();
        m.get(key).cloned()
    }

    fn contains(&self, key: &K) -> bool {
        let m = self.map.lock().unwrap();
        self.delay.maybe_stall();
        m.contains_key(key)
    }

    fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }
}

impl<K, V> fmt::Debug for LockedBstDict<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("LockedBstDict { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valois_sync::{ClhLock, TicketLock};

    #[test]
    fn seq_list_roundtrip() {
        let mut l: SeqSortedList<u32, u32> = SeqSortedList::new();
        assert!(l.insert(2, 20));
        assert!(l.insert(1, 10));
        assert!(l.insert(3, 30));
        assert!(!l.insert(2, 99));
        assert_eq!(l.find(&2), Some(&20));
        assert_eq!(l.len(), 3);
        assert!(l.remove(&2));
        assert!(!l.remove(&2));
        assert_eq!(l.find(&2), None);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn seq_list_long_drop_does_not_overflow() {
        let mut l: SeqSortedList<u32, u32> = SeqSortedList::new();
        for k in (0..200_000).rev() {
            l.insert(k, k);
        }
        drop(l); // must not blow the stack
    }

    #[test]
    fn locked_dict_concurrent_accounting() {
        let d: LockedListDict<u64, u64> = LockedListDict::new();
        std::thread::scope(|s| {
            let d = &d;
            for t in 0..4u64 {
                s.spawn(move || {
                    for k in (t * 100)..(t * 100 + 100) {
                        assert!(d.insert(k, k));
                    }
                });
            }
        });
        assert_eq!(d.len(), 400);
    }

    #[test]
    fn locked_dict_with_all_lock_kinds() {
        let ticket: LockedListDict<u32, u32, TicketLock> =
            LockedListDict::with_lock(TicketLock::new());
        let clh: LockedListDict<u32, u32, ClhLock> = LockedListDict::with_lock(ClhLock::new());
        for d in [&ticket as &dyn Dictionary<u32, u32>, &clh] {
            assert!(d.insert(1, 1));
            assert!(d.contains(&1));
            assert!(d.remove(&1));
        }
    }

    #[test]
    fn mutex_dict_matches_semantics() {
        let d: MutexListDict<u32, &str> = MutexListDict::new();
        assert!(d.insert(1, "a"));
        assert!(!d.insert(1, "b"));
        assert_eq!(d.find(&1), Some("a"));
        assert!(d.remove(&1));
        assert!(d.is_empty());
    }

    #[test]
    fn locked_hash_dict_roundtrip() {
        let d: LockedHashDict<u64, u64> = LockedHashDict::with_buckets(8);
        for k in 0..100 {
            assert!(d.insert(k, k));
        }
        assert_eq!(d.len(), 100);
        for k in 0..100 {
            assert_eq!(d.find(&k), Some(k));
        }
    }

    #[test]
    fn locked_bst_dict_roundtrip() {
        let d: LockedBstDict<u64, u64> = LockedBstDict::new();
        assert!(d.insert(1, 10));
        assert!(!d.insert(1, 20));
        assert_eq!(d.find(&1), Some(10));
        assert!(d.remove(&1));
        assert!(!d.contains(&1));
    }

    #[test]
    fn critical_delay_fires_probabilistically() {
        let never = CriticalDelay::none();
        never.maybe_stall(); // must not sleep
        let always = CriticalDelay::new(1.0, Duration::from_micros(50));
        let t0 = std::time::Instant::now();
        always.maybe_stall();
        assert!(t0.elapsed() >= Duration::from_micros(50));
    }

    #[test]
    fn delayed_lock_still_correct() {
        let d: LockedListDict<u64, u64> =
            LockedListDict::new().with_delay(CriticalDelay::new(0.5, Duration::from_micros(10)));
        std::thread::scope(|s| {
            let d = &d;
            for t in 0..4u64 {
                s.spawn(move || {
                    for k in (t * 50)..(t * 50 + 50) {
                        assert!(d.insert(k, k));
                    }
                });
            }
        });
        assert_eq!(d.len(), 200);
    }
}
