//! Baselines for the Valois reproduction.
//!
//! Two families:
//!
//! * [`naive`] — the list §2.2 warns about: plain CAS on `next` pointers
//!   with **no auxiliary nodes**. Its tests reproduce the paper's Fig. 2
//!   (an insert lost when its predecessor is concurrently deleted) and
//!   Fig. 3 (one of two adjacent deletions undone) — the two anomalies
//!   auxiliary nodes exist to prevent.
//! * [`locked`] — the mutual-exclusion competition from §1: the same
//!   sorted-list dictionary protected by a spin lock (any of the
//!   `valois-sync` algorithms), by a blocking [`std::sync::Mutex`], and a
//!   per-bucket-locked hash table. These are the E1/E2 comparison points.
//!
//! All lock-based dictionaries accept a [`locked::CriticalDelay`] injector
//! that stalls the holder *inside* the critical section — the paper's
//! "page fault / multitasking preemption" failure mode (experiment E2).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod locked;
pub mod naive;

pub use locked::{CriticalDelay, LockedBstDict, LockedHashDict, LockedListDict, MutexListDict};
pub use naive::NaiveList;
