//! Switchable concurrency shim: `std` primitives by default, a
//! model-checking scheduler under `--cfg loom`.
//!
//! Every crate in this workspace imports atomics, `UnsafeCell`, threads,
//! and blocking mutexes **exclusively** through this module (enforced by
//! `cargo xtask analyze`). In a normal build the re-exports below compile
//! to the `std` types with zero overhead. When built with
//! `RUSTFLAGS="--cfg loom"`, the same paths resolve to instrumented
//! wrappers that funnel every atomic operation through the deterministic
//! scheduler in [`sched`], which explores thread interleavings
//! exhaustively (up to a preemption bound) the way
//! [loom](https://docs.rs/loom) / CHESS do.
//!
//! The crates registry is unreachable in this build environment, so the
//! loom dependency itself cannot be added; [`sched`] is a self-contained
//! reimplementation of the part we need: systematic exploration of
//! sequentially-consistent interleavings at atomic-operation granularity
//! with bounded preemptions. It does **not** simulate weak memory
//! orderings (every instrumented access is performed `SeqCst`), so it can
//! miss reordering-only bugs; see `docs/VERIFICATION.md` for what each
//! verification layer does and does not prove.
//!
//! # Layout
//!
//! | module | normal build | `--cfg loom` |
//! |---|---|---|
//! | [`atomic`] | re-export of `std::sync::atomic` types | instrumented wrappers |
//! | [`cell`] | `std::cell::UnsafeCell` | same (accesses are *not* checked) |
//! | [`thread`] | `std::thread::{spawn, yield_now}` | scheduler-registered threads |
//! | [`sync`] | `std::sync::{Mutex, MutexGuard}` | scheduler-aware blocking mutex |
//! | [`hint`] | `std::hint::spin_loop` | no-op (spinning is modeled by the scheduler) |
//!
//! # Example (model checking)
//!
//! ```ignore
//! // Only compiles under RUSTFLAGS="--cfg loom".
//! use std::sync::Arc;
//! use valois_sync::shim::atomic::{AtomicUsize, Ordering};
//!
//! valois_sync::shim::model(|| {
//!     let x = Arc::new(AtomicUsize::new(0));
//!     let x2 = Arc::clone(&x);
//!     let t = valois_sync::shim::thread::spawn(move || x2.fetch_add(1, Ordering::AcqRel));
//!     x.fetch_add(1, Ordering::AcqRel);
//!     t.join().unwrap();
//!     assert_eq!(x.load(Ordering::Acquire), 2);
//! });
//! ```

#[cfg(loom)]
pub mod sched;

#[cfg(loom)]
pub use sched::{model, Builder};

/// Atomic types and orderings.
///
/// Normal builds re-export `std::sync::atomic`; under `--cfg loom` these
/// are wrappers that insert a scheduling point before every operation.
pub mod atomic {
    #[cfg(not(loom))]
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };

    #[cfg(loom)]
    pub use std::sync::atomic::Ordering;

    #[cfg(loom)]
    mod instrumented {
        use super::Ordering;
        use crate::shim::sched;
        use std::fmt;

        // Under the model checker every access is performed SeqCst: the
        // scheduler explores interleavings of sequentially-consistent
        // executions, so honouring weaker caller orderings would only
        // *reduce* the guarantees without changing what is explored.
        macro_rules! instrumented_int {
            ($(#[$meta:meta])* $name:ident, $ty:ty, $std:ty) => {
                $(#[$meta])*
                pub struct $name {
                    inner: $std,
                }

                impl $name {
                    /// Creates a new atomic with the given initial value.
                    pub const fn new(v: $ty) -> Self {
                        Self { inner: <$std>::new(v) }
                    }

                    /// Instrumented load.
                    #[track_caller]
                    pub fn load(&self, _order: Ordering) -> $ty {
                        sched::sched_point();
                        self.inner.load(Ordering::SeqCst)
                    }

                    /// Instrumented store.
                    #[track_caller]
                    pub fn store(&self, v: $ty, _order: Ordering) {
                        sched::sched_point();
                        self.inner.store(v, Ordering::SeqCst)
                    }

                    /// Instrumented swap.
                    #[track_caller]
                    pub fn swap(&self, v: $ty, _order: Ordering) -> $ty {
                        sched::sched_point();
                        self.inner.swap(v, Ordering::SeqCst)
                    }

                    /// Instrumented compare-exchange.
                    #[track_caller]
                    pub fn compare_exchange(
                        &self,
                        current: $ty,
                        new: $ty,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$ty, $ty> {
                        sched::sched_point();
                        self.inner
                            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                    }

                    /// Instrumented compare-exchange-weak (never fails
                    /// spuriously under the model checker, which is a
                    /// legal strengthening).
                    #[track_caller]
                    pub fn compare_exchange_weak(
                        &self,
                        current: $ty,
                        new: $ty,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$ty, $ty> {
                        self.compare_exchange(current, new, success, failure)
                    }

                    /// Instrumented fetch-add.
                    #[track_caller]
                    pub fn fetch_add(&self, v: $ty, _order: Ordering) -> $ty {
                        sched::sched_point();
                        self.inner.fetch_add(v, Ordering::SeqCst)
                    }

                    /// Instrumented fetch-sub.
                    #[track_caller]
                    pub fn fetch_sub(&self, v: $ty, _order: Ordering) -> $ty {
                        sched::sched_point();
                        self.inner.fetch_sub(v, Ordering::SeqCst)
                    }

                    /// Instrumented fetch-and.
                    #[track_caller]
                    pub fn fetch_and(&self, v: $ty, _order: Ordering) -> $ty {
                        sched::sched_point();
                        self.inner.fetch_and(v, Ordering::SeqCst)
                    }

                    /// Instrumented fetch-or.
                    #[track_caller]
                    pub fn fetch_or(&self, v: $ty, _order: Ordering) -> $ty {
                        sched::sched_point();
                        self.inner.fetch_or(v, Ordering::SeqCst)
                    }

                    /// Instrumented fetch-xor.
                    #[track_caller]
                    pub fn fetch_xor(&self, v: $ty, _order: Ordering) -> $ty {
                        sched::sched_point();
                        self.inner.fetch_xor(v, Ordering::SeqCst)
                    }

                    /// Unsynchronized read through exclusive access.
                    pub fn get_mut(&mut self) -> &mut $ty {
                        self.inner.get_mut()
                    }

                    /// Consumes the atomic, returning the value.
                    pub fn into_inner(self) -> $ty {
                        self.inner.into_inner()
                    }
                }

                impl fmt::Debug for $name {
                    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        // No sched point: Debug is used by panic paths.
                        fmt::Debug::fmt(&self.inner, f)
                    }
                }

                impl Default for $name {
                    fn default() -> Self {
                        Self::new(Default::default())
                    }
                }

                impl From<$ty> for $name {
                    fn from(v: $ty) -> Self {
                        Self::new(v)
                    }
                }
            };
        }

        instrumented_int!(
            /// Model-checked `AtomicU8`.
            AtomicU8, u8, std::sync::atomic::AtomicU8
        );
        instrumented_int!(
            /// Model-checked `AtomicU32`.
            AtomicU32, u32, std::sync::atomic::AtomicU32
        );
        instrumented_int!(
            /// Model-checked `AtomicU64`.
            AtomicU64, u64, std::sync::atomic::AtomicU64
        );
        instrumented_int!(
            /// Model-checked `AtomicUsize`.
            AtomicUsize, usize, std::sync::atomic::AtomicUsize
        );

        /// Model-checked `AtomicBool`.
        pub struct AtomicBool {
            inner: std::sync::atomic::AtomicBool,
        }

        impl AtomicBool {
            /// Creates a new atomic bool.
            pub const fn new(v: bool) -> Self {
                Self {
                    inner: std::sync::atomic::AtomicBool::new(v),
                }
            }

            /// Instrumented load.
            #[track_caller]
            pub fn load(&self, _order: Ordering) -> bool {
                sched::sched_point();
                self.inner.load(Ordering::SeqCst)
            }

            /// Instrumented store.
            #[track_caller]
            pub fn store(&self, v: bool, _order: Ordering) {
                sched::sched_point();
                self.inner.store(v, Ordering::SeqCst)
            }

            /// Instrumented swap.
            #[track_caller]
            pub fn swap(&self, v: bool, _order: Ordering) -> bool {
                sched::sched_point();
                self.inner.swap(v, Ordering::SeqCst)
            }

            /// Instrumented compare-exchange.
            #[track_caller]
            pub fn compare_exchange(
                &self,
                current: bool,
                new: bool,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<bool, bool> {
                sched::sched_point();
                self.inner
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            /// Instrumented compare-exchange-weak (never fails spuriously
            /// under the model checker).
            #[track_caller]
            pub fn compare_exchange_weak(
                &self,
                current: bool,
                new: bool,
                success: Ordering,
                failure: Ordering,
            ) -> Result<bool, bool> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Instrumented fetch-and.
            #[track_caller]
            pub fn fetch_and(&self, v: bool, _order: Ordering) -> bool {
                sched::sched_point();
                self.inner.fetch_and(v, Ordering::SeqCst)
            }

            /// Instrumented fetch-or.
            #[track_caller]
            pub fn fetch_or(&self, v: bool, _order: Ordering) -> bool {
                sched::sched_point();
                self.inner.fetch_or(v, Ordering::SeqCst)
            }

            /// Instrumented fetch-xor.
            #[track_caller]
            pub fn fetch_xor(&self, v: bool, _order: Ordering) -> bool {
                sched::sched_point();
                self.inner.fetch_xor(v, Ordering::SeqCst)
            }

            /// Unsynchronized read through exclusive access.
            pub fn get_mut(&mut self) -> &mut bool {
                self.inner.get_mut()
            }
        }

        impl fmt::Debug for AtomicBool {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(&self.inner, f)
            }
        }

        impl Default for AtomicBool {
            fn default() -> Self {
                Self::new(false)
            }
        }

        /// Model-checked `AtomicPtr<T>`.
        pub struct AtomicPtr<T> {
            inner: std::sync::atomic::AtomicPtr<T>,
        }

        impl<T> AtomicPtr<T> {
            /// Creates a new atomic pointer.
            pub const fn new(p: *mut T) -> Self {
                Self {
                    inner: std::sync::atomic::AtomicPtr::new(p),
                }
            }

            /// Instrumented load.
            #[track_caller]
            pub fn load(&self, _order: Ordering) -> *mut T {
                sched::sched_point();
                self.inner.load(Ordering::SeqCst)
            }

            /// Instrumented store.
            #[track_caller]
            pub fn store(&self, p: *mut T, _order: Ordering) {
                sched::sched_point();
                self.inner.store(p, Ordering::SeqCst)
            }

            /// Instrumented swap.
            #[track_caller]
            pub fn swap(&self, p: *mut T, _order: Ordering) -> *mut T {
                sched::sched_point();
                self.inner.swap(p, Ordering::SeqCst)
            }

            /// Instrumented compare-exchange.
            #[track_caller]
            pub fn compare_exchange(
                &self,
                current: *mut T,
                new: *mut T,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<*mut T, *mut T> {
                sched::sched_point();
                self.inner
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            /// Instrumented compare-exchange-weak (never fails spuriously
            /// under the model checker).
            #[track_caller]
            pub fn compare_exchange_weak(
                &self,
                current: *mut T,
                new: *mut T,
                success: Ordering,
                failure: Ordering,
            ) -> Result<*mut T, *mut T> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Unsynchronized read through exclusive access.
            pub fn get_mut(&mut self) -> &mut *mut T {
                self.inner.get_mut()
            }
        }

        impl<T> fmt::Debug for AtomicPtr<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(&self.inner, f)
            }
        }

        impl<T> Default for AtomicPtr<T> {
            fn default() -> Self {
                Self::new(std::ptr::null_mut())
            }
        }

        /// Instrumented fence: a scheduling point (all instrumented
        /// accesses are SeqCst already, so no hardware fence is needed).
        #[track_caller]
        pub fn fence(_order: Ordering) {
            sched::sched_point();
        }
    }

    #[cfg(loom)]
    pub use instrumented::{
        fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
    };
}

/// Interior-mutability cell.
///
/// Both modes use `std::cell::UnsafeCell`; the model checker does not
/// instrument raw cell accesses (data-race detection on non-atomic data
/// is Miri/TSan's job — see `docs/VERIFICATION.md`). The shim path exists
/// so a future switch to loom's access-checked `UnsafeCell` is a one-line
/// change here instead of a tree-wide migration.
pub mod cell {
    pub use std::cell::UnsafeCell;
}

/// Spin-wait hint.
pub mod hint {
    /// Backoff hint inside spin loops.
    ///
    /// Under the model checker this is a no-op: spinning burns no time in
    /// a deterministic scheduler, and the retry's atomic reload is already
    /// a scheduling point.
    #[inline]
    pub fn spin_loop() {
        #[cfg(not(loom))]
        std::hint::spin_loop();
    }
}

/// Thread spawning and yielding.
pub mod thread {
    #[cfg(not(loom))]
    pub use std::thread::{spawn, yield_now, JoinHandle};

    #[cfg(loom)]
    pub use crate::shim::sched::{spawn, yield_now, JoinHandle};
}

/// Blocking synchronization (used only off the lock-free hot paths, e.g.
/// the arena's segment table and growth lock).
pub mod sync {
    #[cfg(not(loom))]
    pub use std::sync::{Mutex, MutexGuard};

    #[cfg(loom)]
    pub use crate::shim::sched::{Mutex, MutexGuard};
}
