//! Deterministic model-checking scheduler (compiled only under
//! `--cfg loom`).
//!
//! This is a self-contained reimplementation of the part of
//! [loom](https://docs.rs/loom) / CHESS this workspace needs: exhaustive,
//! depth-first exploration of thread interleavings at atomic-operation
//! granularity, with a **preemption bound** to keep the schedule space
//! tractable (Musuvathi & Qadeer, "Iterative Context Bounding for
//! Systematic Testing of Multithreaded Programs", PLDI 2007 — most
//! concurrency bugs manifest within 2 preemptions).
//!
//! # How it works
//!
//! Real OS threads execute the model body, but they are serialized by a
//! token: exactly one thread runs at a time, and every instrumented
//! operation (each `shim::atomic` access, mutex acquire, spawn/join/yield)
//! is a *scheduling point* where the scheduler may hand the token to a
//! different runnable thread. The sequence of such decisions forms a
//! schedule; after each complete execution the driver backtracks the last
//! decision with an unexplored alternative and replays. Exploration is
//! exhaustive within the preemption bound: switching away from a thread
//! that is still runnable costs one unit of a finite budget, while forced
//! switches (the running thread blocked or finished) and voluntary yields
//! are free.
//!
//! # What it does and does not check
//!
//! * Explored: every interleaving of instrumented operations reachable
//!   with at most `preemption_bound` preemptions, for the given model.
//! * Not modeled: weak memory orderings (all instrumented accesses are
//!   performed `SeqCst`), non-atomic data races (use Miri/TSan), and
//!   anything behind more preemptions than the bound.
//!
//! Model bodies must be **deterministic** apart from scheduling: no wall
//! clocks, no OS randomness, no I/O dependence — replay divergence is
//! detected and reported as a panic.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{PoisonError, TryLockError};

/// Default preemption budget per execution.
pub const DEFAULT_PREEMPTION_BOUND: usize = 2;
/// Default per-execution step limit (livelock backstop).
pub const DEFAULT_MAX_STEPS: usize = 50_000;
/// Default limit on explored schedules (model-too-big backstop).
pub const DEFAULT_MAX_ITERATIONS: u64 = 2_000_000;

thread_local! {
    static CONTEXT: RefCell<Option<(Arc<Model>, usize)>> = const { RefCell::new(None) };
}

fn current() -> Option<(Arc<Model>, usize)> {
    CONTEXT.with(|c| c.borrow().clone())
}

/// One recorded scheduling decision: which thread, out of which options.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Decision {
    choices: Vec<usize>,
    chosen_idx: usize,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    /// Waiting for the given thread to finish.
    BlockedJoin(usize),
    /// Waiting for the mutex with the given address key to be released.
    BlockedMutex(usize),
    Finished,
}

struct SchedState {
    /// Replay prefix plus this run's extension.
    schedule: Vec<Decision>,
    /// Index of the next decision to replay.
    pos: usize,
    threads: Vec<ThreadState>,
    current: usize,
    preemptions: usize,
    steps: usize,
    /// Random-schedule state; `None` selects the deterministic DFS
    /// default (extend with index 0).
    rand: Option<RandState>,
    /// First failure message; once set, every thread unwinds.
    abort: Option<String>,
}

/// Per-execution state for random exploration (see [`Builder::random`]):
/// a PCT-style schedule — run the current thread until a pre-drawn
/// *change point* (a step index), then switch to a uniformly random other
/// runnable thread.
struct RandState {
    rng: u64,
    change_points: Vec<usize>,
}

fn xorshift64(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

struct Model {
    state: StdMutex<SchedState>,
    cv: Condvar,
    preemption_bound: usize,
    max_steps: usize,
    /// Forced `chosen_idx` per decision (schedule replay; see
    /// `VALOIS_SCHED_REPLAY` in [`Builder::check`]).
    forced: Option<Vec<usize>>,
    /// Print every scheduling point (thread + call site) to stderr.
    trace: bool,
}

impl Model {
    /// Blocks until this thread holds the token (or the run aborted).
    fn wait_for_token<'a>(
        &self,
        mut st: StdMutexGuard<'a, SchedState>,
        me: usize,
    ) -> StdMutexGuard<'a, SchedState> {
        while st.abort.is_none() && st.current != me {
            st = self.cv.wait(st).unwrap();
        }
        if let Some(msg) = &st.abort {
            let msg = msg.clone();
            drop(st);
            panic!("model aborted: {msg}");
        }
        st
    }

    fn abort_locked(&self, st: &mut SchedState, msg: String) {
        if st.abort.is_none() {
            st.abort = Some(msg);
        }
        self.cv.notify_all();
    }

    /// Replays or extends the schedule at a decision point. `choices`
    /// must be non-empty and deterministic across replays.
    fn decide(&self, st: &mut SchedState, choices: Vec<usize>) -> usize {
        if choices.len() == 1 {
            return choices[0];
        }
        let chosen = if st.pos < st.schedule.len() {
            let d = &st.schedule[st.pos];
            if d.choices != choices {
                let msg = format!(
                    "nondeterministic model execution: replay expected choices {:?} \
                     but found {:?} at decision {} — model bodies must not depend on \
                     time, OS randomness, or other non-scheduler input",
                    d.choices, choices, st.pos
                );
                self.abort_locked(st, msg.clone());
                panic!("model aborted: {msg}");
            }
            d.choices[d.chosen_idx]
        } else {
            let idx = match &self.forced {
                Some(f) => f
                    .get(st.schedule.len())
                    .copied()
                    .unwrap_or(0)
                    .min(choices.len() - 1),
                None => match st.rand.as_mut() {
                    // PCT-style extension: keep running the current thread
                    // (`choices[0]` at a switch point) unless this step is a
                    // pre-drawn change point, in which case preempt to a
                    // uniformly random *other* thread. Forced hand-offs
                    // (current thread blocked/finished, so not in `choices`)
                    // pick uniformly.
                    Some(r) => {
                        if choices[0] == st.current {
                            if r.change_points.contains(&st.steps) {
                                1 + (xorshift64(&mut r.rng) as usize) % (choices.len() - 1)
                            } else {
                                0
                            }
                        } else {
                            (xorshift64(&mut r.rng) as usize) % choices.len()
                        }
                    }
                    None => 0,
                },
            };
            st.schedule.push(Decision {
                choices: choices.clone(),
                chosen_idx: idx,
            });
            choices[idx]
        };
        st.pos += 1;
        chosen
    }

    fn runnable(st: &SchedState) -> Vec<usize> {
        (0..st.threads.len())
            .filter(|&t| st.threads[t] == ThreadState::Runnable)
            .collect()
    }

    fn count_step(&self, st: &mut SchedState) {
        st.steps += 1;
        if st.steps > self.max_steps {
            let msg = format!(
                "exceeded {} scheduling points in one execution — livelock, or a \
                 model too large to check exhaustively",
                self.max_steps
            );
            self.abort_locked(st, msg.clone());
            panic!("model aborted: {msg}");
        }
    }

    /// A scheduling point for thread `me` (which is runnable and holds the
    /// token). `free` switches (yields) do not consume preemption budget.
    fn switch(&self, me: usize, free: bool, loc: &'static std::panic::Location<'static>) {
        let mut st = self.state.lock().unwrap();
        if let Some(msg) = &st.abort {
            let msg = msg.clone();
            drop(st);
            panic!("model aborted: {msg}");
        }
        self.count_step(&mut st);
        let others: Vec<usize> = Self::runnable(&st)
            .into_iter()
            .filter(|&t| t != me)
            .collect();
        let choices = if others.is_empty() || (!free && st.preemptions >= self.preemption_bound) {
            vec![me]
        } else {
            // `me` first: the first exploration of each decision continues
            // the current thread, so run 0 is the sequential execution and
            // backtracking introduces preemptions one at a time.
            let mut c = Vec::with_capacity(1 + others.len());
            c.push(me);
            c.extend(others);
            c
        };
        let chosen = self.decide(&mut st, choices);
        if self.trace {
            eprintln!(
                "[sched] step {:>4} t{me} {loc}{}",
                st.steps,
                if chosen == me {
                    String::new()
                } else {
                    format!("  => t{chosen}")
                }
            );
        }
        if chosen != me {
            if !free {
                st.preemptions += 1;
            }
            st.current = chosen;
            self.cv.notify_all();
            let st = self.wait_for_token(st, me);
            drop(st);
        }
    }

    /// Marks `me` blocked with the given reason, hands the token to some
    /// runnable thread, and returns once `me` is rescheduled.
    fn block(&self, me: usize, why: ThreadState) {
        let mut st = self.state.lock().unwrap();
        if let Some(msg) = &st.abort {
            let msg = msg.clone();
            drop(st);
            panic!("model aborted: {msg}");
        }
        self.count_step(&mut st);
        st.threads[me] = why;
        self.hand_off(&mut st);
        let st = self.wait_for_token(st, me);
        drop(st);
    }

    /// Transfers the token to some runnable thread (the current thread is
    /// blocked or finished, so the switch is forced and free). Detects
    /// deadlock.
    fn hand_off(&self, st: &mut SchedState) {
        let runnable = Self::runnable(st);
        if runnable.is_empty() {
            if st.threads.iter().all(|t| *t == ThreadState::Finished) {
                // Run complete; wake the driver.
                self.cv.notify_all();
                return;
            }
            let stuck: Vec<(usize, ThreadState)> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !matches!(t, ThreadState::Finished))
                .map(|(i, t)| (i, t.clone()))
                .collect();
            let msg = format!("deadlock: no runnable threads, blocked = {stuck:?}");
            self.abort_locked(st, msg.clone());
            panic!("model aborted: {msg}");
        }
        let chosen = self.decide(st, runnable);
        st.current = chosen;
        self.cv.notify_all();
    }

    /// Marks `me` finished, wakes joiners, and hands the token onward.
    fn finish(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        st.threads[me] = ThreadState::Finished;
        for t in 0..st.threads.len() {
            if st.threads[t] == ThreadState::BlockedJoin(me) {
                st.threads[t] = ThreadState::Runnable;
            }
        }
        if st.abort.is_some() {
            self.cv.notify_all();
            return;
        }
        self.hand_off(&mut st);
    }

    /// Records a panic from `me` and marks it finished so every other
    /// thread (and the driver) unwinds promptly.
    fn abort_from(&self, me: usize, msg: String) {
        let mut st = self.state.lock().unwrap();
        self.abort_locked(&mut st, msg);
        st.threads[me] = ThreadState::Finished;
        self.cv.notify_all();
    }

    /// Wakes threads parked on the mutex identified by `key`. The caller
    /// still holds the token; the woken threads compete at the caller's
    /// next scheduling point.
    fn mutex_released(&self, key: usize) {
        let mut st = self.state.lock().unwrap();
        for t in 0..st.threads.len() {
            if st.threads[t] == ThreadState::BlockedMutex(key) {
                st.threads[t] = ThreadState::Runnable;
            }
        }
    }

    /// Blocks `me` until `target` has finished (join edge).
    fn join_wait(&self, me: usize, target: usize) {
        {
            let st = self.state.lock().unwrap();
            if st.threads[target] == ThreadState::Finished {
                return;
            }
        }
        self.block(me, ThreadState::BlockedJoin(target));
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Body wrapper every modeled OS thread runs: waits for its first token,
/// executes, then either hands the token onward or aborts the run.
fn run_thread<T>(model: Arc<Model>, me: usize, body: impl FnOnce() -> T) -> T {
    CONTEXT.with(|c| *c.borrow_mut() = Some((Arc::clone(&model), me)));
    {
        let st = model.state.lock().unwrap();
        let st = model.wait_for_token(st, me);
        drop(st);
    }
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(v) => {
            model.finish(me);
            v
        }
        Err(e) => {
            model.abort_from(me, panic_message(&*e));
            resume_unwind(e)
        }
    }
}

/// Inserts a scheduling point if the calling thread is inside a model
/// (no-op otherwise, so `--cfg loom` builds still run ordinary tests).
#[track_caller]
pub fn sched_point() {
    if let Some((m, me)) = current() {
        m.switch(me, false, std::panic::Location::caller());
    }
}

/// Voluntary yield: a free scheduling point inside a model, a plain
/// `std::thread::yield_now` outside one.
#[track_caller]
pub fn yield_now() {
    match current() {
        Some((m, me)) => m.switch(me, true, std::panic::Location::caller()),
        None => std::thread::yield_now(),
    }
}

/// Handle to a thread spawned through [`spawn`].
pub struct JoinHandle<T> {
    meta: Option<(Arc<Model>, usize)>,
    inner: std::thread::JoinHandle<T>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result (`Err` holds
    /// the panic payload, as with `std`).
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((model, target)) = &self.meta {
            if let Some((m, me)) = current() {
                debug_assert!(Arc::ptr_eq(&m, model));
                m.join_wait(me, *target);
            }
        }
        self.inner.join()
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JoinHandle { .. }")
    }
}

/// Spawns a thread. Inside a model the thread is registered with the
/// scheduler and serialized like every other; outside one this is
/// `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current() {
        None => JoinHandle {
            meta: None,
            inner: std::thread::spawn(f),
        },
        Some((model, _me)) => {
            let tid = {
                let mut st = model.state.lock().unwrap();
                st.threads.push(ThreadState::Runnable);
                st.threads.len() - 1
            };
            let m2 = Arc::clone(&model);
            let inner = std::thread::spawn(move || run_thread(m2, tid, f));
            JoinHandle {
                meta: Some((model, tid)),
                inner,
            }
        }
    }
}

/// Scheduler-aware mutex: `std::sync::Mutex` outside a model; inside one,
/// contended acquires park the thread in the scheduler instead of the OS
/// (an OS block while holding the token would wedge the whole model).
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(t: T) -> Self {
        Self {
            inner: StdMutex::new(t),
        }
    }

    /// Acquires the mutex (see type docs for in-model behaviour).
    #[track_caller]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match current() {
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    inner: Some(g),
                    release: None,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    inner: Some(p.into_inner()),
                    release: None,
                })),
            },
            Some((model, me)) => {
                let key = self as *const Self as usize;
                // ORDER: acquiring a lock is a visible synchronization
                // event — give the scheduler a chance to preempt first.
                model.switch(me, false, std::panic::Location::caller());
                loop {
                    match self.inner.try_lock() {
                        Ok(g) => {
                            return Ok(MutexGuard {
                                inner: Some(g),
                                release: Some((Arc::clone(&model), key)),
                            })
                        }
                        Err(TryLockError::WouldBlock) => {
                            model.block(me, ThreadState::BlockedMutex(key));
                        }
                        Err(TryLockError::Poisoned(p)) => {
                            return Err(PoisonError::new(MutexGuard {
                                inner: Some(p.into_inner()),
                                release: Some((Arc::clone(&model), key)),
                            }))
                        }
                    }
                }
            }
        }
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// Guard for [`Mutex`]; wakes scheduler-parked waiters on drop.
pub struct MutexGuard<'a, T> {
    inner: Option<StdMutexGuard<'a, T>>,
    release: Option<(Arc<Model>, usize)>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().unwrap()
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().unwrap()
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the OS lock *before* marking waiters runnable so a
        // rescheduled waiter's try_lock cannot spuriously fail.
        self.inner = None;
        if let Some((model, key)) = self.release.take() {
            model.mutex_released(key);
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.as_ref().unwrap().fmt(f)
    }
}

/// Configures and runs an exploration (see [`model`] for the default).
#[derive(Debug, Clone)]
pub struct Builder {
    /// Preemption budget per execution (see module docs).
    pub preemption_bound: usize,
    /// Per-execution scheduling-point limit (livelock backstop).
    pub max_steps: usize,
    /// Limit on the number of explored schedules.
    pub max_iterations: u64,
    /// Programmatic forced schedule (the `chosen_idx` sequence of a
    /// failing run). Takes precedence over `VALOIS_SCHED_REPLAY`.
    pub replay: Option<Vec<usize>>,
    /// Random-schedule exploration: `(schedules, seed)`. Instead of the
    /// DFS sweep, run this many independent PCT-style schedules: each run
    /// draws `preemption_bound` random *change points* (step indices) up
    /// front, runs the current thread until a change point, then switches
    /// to a random other thread (forced hand-offs stay uniform). For
    /// models whose DFS frontier is much wider than the bug's window —
    /// e.g. two ~500-step threads where the failure needs a preemption in
    /// one specific ~20-step region — a random schedule hits the window
    /// with probability ≈ 20/500 per draw, i.e. in O(10²–10³) runs, while
    /// DFS order may visit O(10⁵) schedules first. (Per-decision coin
    /// flips would be far worse: the chance of running one thread for the
    /// ~200 uninterrupted steps the window needs decays exponentially.)
    /// Failures still print a `VALOIS_SCHED_REPLAY` vector and are
    /// exactly reproducible from `(seed, preemption_bound)`.
    pub random: Option<(u64, u64)>,
}

impl Default for Builder {
    fn default() -> Self {
        Self {
            preemption_bound: DEFAULT_PREEMPTION_BOUND,
            max_steps: DEFAULT_MAX_STEPS,
            max_iterations: DEFAULT_MAX_ITERATIONS,
            replay: None,
            random: None,
        }
    }
}

impl Builder {
    /// A builder with the default bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the preemption budget.
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Replays exactly one schedule: the `chosen_idx` vector printed with
    /// a failing run (the same numbers `VALOIS_SCHED_REPLAY` accepts, but
    /// usable from test code without touching process-global env vars —
    /// `std::env::set_var` would race with concurrently running tests).
    pub fn replay_schedule(mut self, schedule: &[usize]) -> Self {
        self.replay = Some(schedule.to_vec());
        self
    }

    /// Switches to seeded random-walk exploration of `schedules` runs
    /// (see [`Builder::random`] for when this beats the DFS sweep).
    pub fn random_walks(mut self, schedules: u64, seed: u64) -> Self {
        self.random = Some((schedules, seed));
        self
    }

    /// Runs `body` under every schedule reachable within the preemption
    /// bound, returning the number of schedules explored. Panics (with
    /// the original assertion message and the failing schedule) if any
    /// execution fails.
    pub fn check<F>(&self, body: F) -> u64
    where
        F: Fn() + Send + Sync + 'static,
    {
        assert!(
            current().is_none(),
            "nested model() calls are not supported"
        );
        let body = Arc::new(body);
        // Replay support: `VALOIS_SCHED_REPLAY=0,0,1,...` (the chosen_idx
        // sequence printed with a failing schedule) runs exactly that one
        // schedule with per-step tracing; `VALOIS_SCHED_TRACE=1` traces a
        // normal exploration. A programmatic `replay_schedule` wins over
        // the env var so committed regression tests stay hermetic.
        let forced: Option<Vec<usize>> = self.replay.clone().or_else(|| {
            std::env::var("VALOIS_SCHED_REPLAY").ok().map(|s| {
                s.split(',')
                    .map(str::trim)
                    .filter(|t| !t.is_empty())
                    .map(|t| {
                        t.parse()
                            .expect("VALOIS_SCHED_REPLAY: comma-separated indices")
                    })
                    .collect()
            })
        });
        let trace = forced.is_some() || std::env::var_os("VALOIS_SCHED_TRACE").is_some();
        let mut schedule: Vec<Decision> = Vec::new();
        let mut iterations: u64 = 0;
        // Rolling estimate of a run's step count (random mode only): the
        // first run's change points use the seed value below; later runs
        // use the measured length of the run before them.
        let mut est_steps: usize = 256;
        loop {
            iterations += 1;
            assert!(
                iterations <= self.max_iterations,
                "exceeded {} explored schedules — shrink the model",
                self.max_iterations
            );
            // Per-schedule deterministic RNG: failures reproduce from
            // (seed, iteration) alone, independent of earlier schedules.
            // Change points are drawn uniformly over the previous run's
            // step count, so preemptions land anywhere in the execution
            // rather than clustering at the start.
            let rand = match (&forced, self.random) {
                (None, Some((_, seed))) => {
                    let mut rng = seed
                        .wrapping_add(iterations)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        | 1;
                    let change_points = (0..self.preemption_bound)
                        .map(|_| (xorshift64(&mut rng) as usize % est_steps) + 1)
                        .collect();
                    Some(RandState { rng, change_points })
                }
                _ => None,
            };
            let model = Arc::new(Model {
                state: StdMutex::new(SchedState {
                    schedule: std::mem::take(&mut schedule),
                    pos: 0,
                    threads: vec![ThreadState::Runnable],
                    current: 0,
                    preemptions: 0,
                    steps: 0,
                    rand,
                    abort: None,
                }),
                cv: Condvar::new(),
                preemption_bound: self.preemption_bound,
                max_steps: self.max_steps,
                forced: forced.clone(),
                trace,
            });
            let m2 = Arc::clone(&model);
            let b2 = Arc::clone(&body);
            let root = std::thread::spawn(move || run_thread(m2, 0, move || b2()));
            let root_result = root.join();
            // Wait until every modeled thread (including ones whose
            // handles the body dropped) has passed its final scheduling
            // point before reading the schedule back.
            {
                let mut st = model.state.lock().unwrap();
                while !st.threads.iter().all(|t| *t == ThreadState::Finished) {
                    st = model.cv.wait(st).unwrap();
                }
            }
            let (mut sched, abort) = {
                let mut st = model.state.lock().unwrap();
                est_steps = st.steps.max(64);
                (std::mem::take(&mut st.schedule), st.abort.take())
            };
            if let Some(msg) = abort {
                let csv = sched
                    .iter()
                    .map(|d| d.chosen_idx.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                panic!(
                    "model failed on schedule {iterations} \
                     (preemption bound {}): {msg}\nfailing schedule: {sched:?}\n\
                     replay deterministically (with a per-step trace) via \
                     VALOIS_SCHED_REPLAY={csv}",
                    self.preemption_bound
                );
            }
            if let Err(e) = root_result {
                resume_unwind(e);
            }
            if forced.is_some() {
                eprintln!(
                    "[sched] replayed schedule passed ({} decisions)",
                    sched.len()
                );
                return iterations;
            }
            if let Some((schedules, _)) = self.random {
                // Random-walk mode: independent schedules, no backtrack.
                if iterations >= schedules {
                    return iterations;
                }
                continue;
            }
            // Depth-first backtrack: advance the deepest decision with an
            // unexplored alternative; exploration is complete when none
            // remains.
            loop {
                match sched.last_mut() {
                    None => return iterations,
                    Some(d) => {
                        if d.chosen_idx + 1 < d.choices.len() {
                            d.chosen_idx += 1;
                            break;
                        }
                        sched.pop();
                    }
                }
            }
            schedule = sched;
        }
    }
}

/// Explores `body` under every schedule reachable with the default
/// preemption bound ([`DEFAULT_PREEMPTION_BOUND`]), panicking on the
/// first failing schedule.
pub fn model<F>(body: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(body);
}
