//! Spin locks — the baselines the paper positions itself against.
//!
//! §1 of the paper: "a number of efficient *spin locking* techniques have
//! been developed [3, 8, 20]" (Anderson; Graunke & Thakkar; Mellor-Crummey &
//! Scott). The E1/E2 experiments compare the lock-free list against lists
//! protected by these locks, so this module implements the standard
//! progression:
//!
//! * [`TasLock`] — naive test-and-set,
//! * [`TtasLock`] — test-and-test-and-set with exponential backoff
//!   (Anderson \[3\]),
//! * [`TicketLock`] — FIFO ticket lock (Graunke & Thakkar \[8\] family),
//! * [`ClhLock`] — queue lock with local spinning (the CLH variant of the
//!   MCS idea from Mellor-Crummey & Scott \[20\]),
//! * [`AndersonLock`] — Anderson's array-based queue lock \[3\]: one
//!   padded flag per waiter slot, FIFO, local spinning without heap
//!   allocation.
//!
//! All implement the [`Lock`] trait and hand out RAII [`LockGuard`]s. These
//! are *mutual exclusion* devices: a thread preempted while holding one
//! blocks everyone — exactly the failure mode the lock-free list avoids,
//! and what experiment E2 demonstrates.

use crate::shim::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::fmt;

use crate::backoff::Backoff;
use crate::pad::CachePadded;

/// A mutual-exclusion spin lock.
///
/// Object-safe so the harness can select lock algorithms at run time.
///
/// # Example
///
/// ```
/// use valois_sync::{Lock, TtasLock};
///
/// let lock = TtasLock::new();
/// {
///     let _guard = lock.guard(); // released on drop
/// }
/// lock.acquire();
/// lock.release();
/// ```
pub trait Lock: Send + Sync {
    /// Acquires the lock, spinning until available.
    fn acquire(&self);
    /// Releases the lock.
    ///
    /// Callers must hold the lock; use [`Lock::guard`] to make that
    /// impossible to get wrong.
    fn release(&self);

    /// Acquires and returns an RAII guard that releases on drop.
    fn guard(&self) -> LockGuard<'_>
    where
        Self: Sized,
    {
        self.acquire();
        LockGuard { lock: self }
    }
}

/// RAII guard returned by [`Lock::guard`]; releases the lock on drop.
pub struct LockGuard<'a> {
    lock: &'a dyn Lock,
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        self.lock.release();
    }
}

impl fmt::Debug for LockGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("LockGuard { .. }")
    }
}

/// Which spin-lock algorithm to instantiate (harness configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockKind {
    /// Naive test-and-set.
    Tas,
    /// Test-and-test-and-set with exponential backoff.
    Ttas,
    /// FIFO ticket lock.
    Ticket,
    /// CLH queue lock.
    Clh,
    /// Anderson array-based queue lock.
    Anderson,
}

impl LockKind {
    /// All lock kinds, for parameter sweeps.
    pub const ALL: [LockKind; 5] = [
        Self::Tas,
        Self::Ttas,
        Self::Ticket,
        Self::Clh,
        Self::Anderson,
    ];

    /// Instantiates the chosen lock.
    pub fn build(self) -> Box<dyn Lock> {
        match self {
            Self::Tas => Box::new(TasLock::new()),
            Self::Ttas => Box::new(TtasLock::new()),
            Self::Ticket => Box::new(TicketLock::new()),
            Self::Clh => Box::new(ClhLock::new()),
            Self::Anderson => Box::new(AndersonLock::new()),
        }
    }

    /// Short name for experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Self::Tas => "tas",
            Self::Ttas => "ttas",
            Self::Ticket => "ticket",
            Self::Clh => "clh",
            Self::Anderson => "anderson",
        }
    }
}

impl fmt::Display for LockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Naive test-and-set spin lock: every acquisition attempt is a write,
/// producing heavy cache-line ping-pong under contention.
#[derive(Default)]
pub struct TasLock {
    flag: CachePadded<AtomicBool>,
}

impl TasLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Lock for TasLock {
    fn acquire(&self) {
        while self.flag.swap(true, Ordering::Acquire) {
            crate::shim::hint::spin_loop();
        }
    }

    fn release(&self) {
        self.flag.store(false, Ordering::Release);
    }
}

impl fmt::Debug for TasLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TasLock")
            .field("locked", &self.flag.load(Ordering::Relaxed))
            .finish()
    }
}

/// Test-and-test-and-set with exponential backoff: spins read-only on the
/// cached flag, attempting the write only when the lock looks free.
#[derive(Default)]
pub struct TtasLock {
    flag: CachePadded<AtomicBool>,
}

impl TtasLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts a single acquisition without spinning.
    pub fn try_acquire(&self) -> bool {
        !self.flag.load(Ordering::Relaxed) && !self.flag.swap(true, Ordering::Acquire)
    }
}

impl Lock for TtasLock {
    fn acquire(&self) {
        let mut backoff = Backoff::new();
        loop {
            if self.try_acquire() {
                return;
            }
            while self.flag.load(Ordering::Relaxed) {
                backoff.spin();
            }
        }
    }

    fn release(&self) {
        self.flag.store(false, Ordering::Release);
    }
}

impl fmt::Debug for TtasLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TtasLock")
            .field("locked", &self.flag.load(Ordering::Relaxed))
            .finish()
    }
}

/// FIFO ticket lock: acquisitions take a ticket with `Fetch&Add` and spin
/// until the grant counter reaches it. Fair, but preemption of any waiter
/// in line stalls everyone behind it.
#[derive(Default)]
pub struct TicketLock {
    next_ticket: CachePadded<AtomicUsize>,
    now_serving: CachePadded<AtomicUsize>,
}

impl TicketLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Lock for TicketLock {
    fn acquire(&self) {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        while self.now_serving.load(Ordering::Acquire) != ticket {
            crate::shim::hint::spin_loop();
        }
    }

    fn release(&self) {
        let current = self.now_serving.load(Ordering::Relaxed);
        self.now_serving.store(current + 1, Ordering::Release);
    }
}

impl fmt::Debug for TicketLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TicketLock")
            .field("next_ticket", &self.next_ticket.load(Ordering::Relaxed))
            .field("now_serving", &self.now_serving.load(Ordering::Relaxed))
            .finish()
    }
}

struct ClhNode {
    locked: AtomicBool,
}

thread_local! {
    /// Per-(thread, lock-acquisition) CLH state: the node we queued and the
    /// predecessor node we now own. Keyed by lock address to support a
    /// thread holding several CLH locks at once.
    static CLH_SLOTS: std::cell::RefCell<Vec<(usize, *mut ClhNode, *mut ClhNode)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// CLH queue lock: waiters form an implicit queue and each spins on its
/// *predecessor's* flag only, giving local spinning and FIFO order.
///
/// This is the allocating variant: each acquisition enqueues a fresh
/// heap node; the node is reclaimed by its successor. Nested acquisition of
/// *different* CLH locks by one thread is supported; recursive acquisition
/// of the same lock deadlocks (as with every lock here).
pub struct ClhLock {
    tail: CachePadded<AtomicPtr<ClhNode>>,
}

impl ClhLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        let dummy = Box::into_raw(Box::new(ClhNode {
            locked: AtomicBool::new(false),
        }));
        Self {
            tail: CachePadded::new(AtomicPtr::new(dummy)),
        }
    }
}

impl Default for ClhLock {
    fn default() -> Self {
        Self::new()
    }
}

impl Lock for ClhLock {
    fn acquire(&self) {
        let node = Box::into_raw(Box::new(ClhNode {
            locked: AtomicBool::new(true),
        }));
        let pred = self.tail.swap(node, Ordering::AcqRel);
        // SAFETY: `pred` stays alive until *we* free it after acquiring.
        unsafe {
            while (*pred).locked.load(Ordering::Acquire) {
                crate::shim::hint::spin_loop();
            }
        }
        CLH_SLOTS.with(|s| s.borrow_mut().push((self as *const _ as usize, node, pred)));
    }

    fn release(&self) {
        let key = self as *const _ as usize;
        let (node, pred) = CLH_SLOTS.with(|s| {
            let mut slots = s.borrow_mut();
            let idx = slots
                .iter()
                .rposition(|(k, _, _)| *k == key)
                .expect("release() without matching acquire() on this thread");
            let (_, node, pred) = slots.remove(idx);
            (node, pred)
        });
        // SAFETY: we own `pred` (we finished spinning on it) and `node` was
        // allocated by our acquire. Unlocking `node` transfers its ownership
        // to our successor (or to the lock's Drop if none arrives).
        unsafe {
            drop(Box::from_raw(pred));
            (*node).locked.store(false, Ordering::Release);
        }
    }
}

impl Drop for ClhLock {
    fn drop(&mut self) {
        // The final tail node is owned by nobody once the lock is idle.
        let tail = self.tail.load(Ordering::Acquire);
        if !tail.is_null() {
            // SAFETY: exclusive access in Drop; any released node reachable
            // here has no successor spinning on it.
            unsafe { drop(Box::from_raw(tail)) };
        }
    }
}

impl fmt::Debug for ClhLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ClhLock { .. }")
    }
}

/// Anderson's array-based queue lock (\[3\]): a ring of cache-padded
/// flags; each acquirer takes a slot with `Fetch&Add` and spins on *its
/// own* flag (no global cache-line ping-pong); release passes the flag to
/// the next slot. FIFO, allocation-free.
///
/// Capacity-bounded: at most [`AndersonLock::DEFAULT_SLOTS`] (or the value
/// given to [`AndersonLock::with_slots`]) threads may contend
/// simultaneously; more would alias slots.
pub struct AndersonLock {
    slots: Box<[CachePadded<AtomicBool>]>,
    next: CachePadded<AtomicUsize>,
}

thread_local! {
    /// (lock address, my slot) pairs for locks currently held/waited on.
    static ANDERSON_SLOTS: std::cell::RefCell<Vec<(usize, usize)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl AndersonLock {
    /// Default waiter capacity.
    pub const DEFAULT_SLOTS: usize = 64;

    /// Creates a lock with the default capacity.
    pub fn new() -> Self {
        Self::with_slots(Self::DEFAULT_SLOTS)
    }

    /// Creates a lock supporting up to `slots` simultaneous contenders.
    pub fn with_slots(slots: usize) -> Self {
        let slots = slots.max(2);
        let flags: Box<[CachePadded<AtomicBool>]> = (0..slots)
            .map(|i| CachePadded::new(AtomicBool::new(i == 0)))
            .collect();
        Self {
            slots: flags,
            next: CachePadded::new(AtomicUsize::new(0)),
        }
    }
}

impl Default for AndersonLock {
    fn default() -> Self {
        Self::new()
    }
}

impl Lock for AndersonLock {
    fn acquire(&self) {
        let me = self.next.fetch_add(1, Ordering::AcqRel) % self.slots.len();
        while !self.slots[me].load(Ordering::Acquire) {
            crate::shim::hint::spin_loop();
        }
        // Re-arm our slot for its next lap around the ring.
        self.slots[me].store(false, Ordering::Relaxed);
        ANDERSON_SLOTS.with(|s| s.borrow_mut().push((self as *const _ as usize, me)));
    }

    fn release(&self) {
        let key = self as *const _ as usize;
        let me = ANDERSON_SLOTS.with(|s| {
            let mut v = s.borrow_mut();
            let idx = v
                .iter()
                .rposition(|(k, _)| *k == key)
                .expect("release() without matching acquire() on this thread");
            v.remove(idx).1
        });
        let nxt = (me + 1) % self.slots.len();
        self.slots[nxt].store(true, Ordering::Release);
    }
}

impl fmt::Debug for AndersonLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AndersonLock")
            .field("slots", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn hammer(lock: Arc<dyn Lock>, threads: usize, iters: usize) -> usize {
        let counter = Arc::new(crate::shim::atomic::AtomicUsize::new(0));
        struct ForceSync<T>(T);
        unsafe impl<T> Sync for ForceSync<T> {}
        unsafe impl<T> Send for ForceSync<T> {}
        let shared = Arc::new(ForceSync(std::cell::UnsafeCell::new(0usize)));
        std::thread::scope(|s| {
            for _ in 0..threads {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                let shared = Arc::clone(&shared);
                s.spawn(move || {
                    for _ in 0..iters {
                        lock.acquire();
                        // Non-atomic increment under the lock: torn or lost
                        // updates would reveal a broken lock.
                        unsafe {
                            let p = shared.0.get();
                            *p += 1;
                        }
                        counter.fetch_add(1, Ordering::Relaxed);
                        lock.release();
                    }
                });
            }
        });
        let inside = unsafe { *shared.0.get() };
        assert_eq!(inside, counter.load(Ordering::Relaxed));
        inside
    }

    #[test]
    fn tas_lock_mutual_exclusion() {
        assert_eq!(hammer(Arc::new(TasLock::new()), 4, 5_000), 20_000);
    }

    #[test]
    fn ttas_lock_mutual_exclusion() {
        assert_eq!(hammer(Arc::new(TtasLock::new()), 4, 5_000), 20_000);
    }

    #[test]
    fn ticket_lock_mutual_exclusion() {
        assert_eq!(hammer(Arc::new(TicketLock::new()), 4, 5_000), 20_000);
    }

    #[test]
    fn clh_lock_mutual_exclusion() {
        assert_eq!(hammer(Arc::new(ClhLock::new()), 4, 5_000), 20_000);
    }

    #[test]
    fn anderson_lock_mutual_exclusion() {
        assert_eq!(hammer(Arc::new(AndersonLock::new()), 4, 5_000), 20_000);
    }

    #[test]
    fn anderson_ring_wraps_many_laps() {
        // Far more acquisitions than slots: the ring must keep rotating.
        let lock = AndersonLock::with_slots(4);
        for _ in 0..1_000 {
            lock.acquire();
            lock.release();
        }
    }

    #[test]
    fn guard_releases_on_drop() {
        let lock = TtasLock::new();
        {
            let _g = lock.guard();
            assert!(!lock.try_acquire());
        }
        assert!(lock.try_acquire());
        lock.release();
    }

    #[test]
    fn lock_kind_builds_all_variants() {
        for kind in LockKind::ALL {
            let lock = kind.build();
            lock.acquire();
            lock.release();
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn ticket_lock_is_fifo_single_thread() {
        let lock = TicketLock::new();
        lock.acquire();
        lock.release();
        lock.acquire();
        lock.release();
        assert_eq!(lock.next_ticket.load(Ordering::Relaxed), 2);
        assert_eq!(lock.now_serving.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn clh_nested_different_locks() {
        let a = ClhLock::new();
        let b = ClhLock::new();
        a.acquire();
        b.acquire();
        b.release();
        a.release();
    }

    #[test]
    fn tas_uncontended_reacquire() {
        let lock = TasLock::new();
        for _ in 0..1_000 {
            lock.acquire();
            lock.release();
        }
    }
}
