//! Small, fast, dependency-free pseudo-random number generation for
//! workload generation and randomized tests.
//!
//! The container this repository builds in has no network access to a
//! crates registry, so the test/harness layers cannot depend on the `rand`
//! crate. This module provides the tiny subset those layers need: a
//! seedable 64-bit generator ([`SmallRng`], an xoshiro256++ behind a
//! SplitMix64 seeder), uniform ranges, booleans, floats, and a
//! Fisher–Yates shuffle.
//!
//! This RNG is for *workloads and tests only* — it is deterministic by
//! design (identical seeds reproduce identical schedules) and makes no
//! cryptographic claims.
//!
//! # Example
//!
//! ```
//! use valois_sync::rng::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(42);
//! let k: u64 = rng.gen_range(0..100u64);
//! assert!(k < 100);
//! let mut v = vec![1, 2, 3, 4];
//! rng.shuffle(&mut v);
//! assert_eq!(v.len(), 4);
//! ```

use std::fmt;
use std::ops::Range;

/// SplitMix64 step — used to expand a single `u64` seed into the four
/// xoshiro state words (the construction recommended by the xoshiro
/// authors).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, seedable xoshiro256++ generator (name mirrors `rand`'s
/// `SmallRng` so call sites read identically).
#[derive(Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed. Identical seeds produce
    /// identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform value in `range` (half-open). Panics on an empty range.
    ///
    /// Uses Lemire-style rejection to stay unbiased.
    pub fn gen_range<T: RangeSample>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range on an empty range");
        // Rejection sampling over the largest multiple of `bound`.
        let zone = u64::MAX - (u64::MAX % bound + 1) % bound.max(1);
        loop {
            let v = self.next_u64();
            if v <= zone || zone == u64::MAX {
                return v % bound;
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniformly chooses one element (None on an empty slice).
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.bounded_u64(slice.len() as u64) as usize])
        }
    }
}

impl fmt::Debug for SmallRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SmallRng { .. }")
    }
}

/// Integer types [`SmallRng::gen_range`] can sample uniformly.
pub trait RangeSample: Copy {
    /// Uniform sample from a half-open range.
    fn sample(rng: &mut SmallRng, range: Range<Self>) -> Self;
}

macro_rules! impl_range_sample {
    ($($ty:ty),*) => {$(
        impl RangeSample for $ty {
            fn sample(rng: &mut SmallRng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on an empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + rng.bounded_u64(span) as $ty
            }
        }
    )*};
}

impl_range_sample!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let u: u8 = rng.gen_range(0..3u8);
            assert!(u < 3);
            let w: usize = rng.gen_range(0..1usize);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits={hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SmallRng::seed_from_u64(6);
        let items = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*rng.choose(&items).unwrap());
        }
        assert_eq!(seen.len(), 3);
        assert!(rng.choose::<u8>(&[]).is_none());
    }
}
