//! Paper-faithful wrappers for the three atomic primitives of §2.1.
//!
//! Figure 1 of the paper defines `Compare&Swap(a, old, new)` as an atomic
//! conditional store returning a boolean. Modern hardware (and Rust's
//! [`std::sync::atomic`]) exposes the same operation as `compare_exchange`;
//! the wrappers here keep the paper's boolean-returning shape so the
//! algorithm implementations in `valois-core` read line-for-line like the
//! paper's pseudo-code.
//!
//! Footnote 1 of the paper notes that `Test&Set` and `Fetch&Add` are easily
//! implemented with `Compare&Swap`; we expose them directly on top of the
//! corresponding hardware instructions (`swap`, `fetch_add`), which is
//! semantically identical and faster. A CAS-loop fallback is provided (and
//! tested) in [`TestAndSet::set_via_cas`] and [`Counter::add_via_cas`] to
//! demonstrate the footnote's claim.
//!
//! # Memory orderings
//!
//! The 1995 paper assumes sequential consistency. We use acquire/release
//! orderings at the points where the algorithms publish or consume nodes
//! (documented on each method), which is the standard, weaker-but-sufficient
//! mapping; statistics counters use `Relaxed`.

use crate::shim::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::fmt;

/// A single shared word supporting `Read`, `Write`, and `Compare&Swap`.
///
/// This is the paper's memory cell abstraction for non-pointer words.
///
/// # Example
///
/// ```
/// use valois_sync::primitives::CasCell;
/// let c = CasCell::new(1usize);
/// assert!(c.compare_and_swap(1, 2));
/// assert_eq!(c.read(), 2);
/// ```
#[derive(Default)]
pub struct CasCell {
    word: AtomicUsize,
}

impl CasCell {
    /// Creates a cell holding `initial`.
    pub fn new(initial: usize) -> Self {
        Self {
            word: AtomicUsize::new(initial),
        }
    }

    /// Atomic read (paper `Read`). Acquire ordering: values read through
    /// this cell happen-after the write that published them.
    pub fn read(&self) -> usize {
        self.word.load(Ordering::Acquire)
    }

    /// Atomic write (paper `Write`). Release ordering.
    pub fn write(&self, value: usize) {
        self.word.store(value, Ordering::Release);
    }

    /// The paper's Fig. 1 `Compare&Swap`: if the cell holds `old`, replace
    /// it with `new` and return `true`; otherwise return `false`.
    ///
    /// Uses `AcqRel` on success so a successful swing both publishes `new`
    /// and observes everything published before `old` was installed.
    pub fn compare_and_swap(&self, old: usize, new: usize) -> bool {
        self.word
            .compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Weak variant allowed to fail spuriously; callers already in retry
    /// loops (every use in the paper) can use this on LL/SC architectures.
    pub fn compare_and_swap_weak(&self, old: usize, new: usize) -> bool {
        self.word
            .compare_exchange_weak(old, new, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

impl fmt::Debug for CasCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CasCell").field(&self.read()).finish()
    }
}

/// A shared pointer word supporting `Read`, `Write`, and `Compare&Swap`.
///
/// The paper's algorithms use `Compare&Swap` exclusively to *swing* pointers
/// (§2.1); `CasPtr` is the pointer-typed twin of [`CasCell`].
///
/// `CasPtr` stores raw pointers; it is up to the caller (the memory manager
/// in `valois-mem`) to guarantee the pointees outlive all readers. That is
/// exactly the job of the paper's `SafeRead`/`Release` protocol.
///
/// # Example
///
/// ```
/// use valois_sync::primitives::CasPtr;
///
/// let mut a = 1u32;
/// let mut b = 2u32;
/// let p = CasPtr::new(&mut a as *mut u32);
/// assert!(p.compare_and_swap(&mut a, &mut b), "swing a -> b");
/// assert!(!p.compare_and_swap(&mut a, std::ptr::null_mut()), "stale old value");
/// assert_eq!(p.read(), &mut b as *mut u32);
/// ```
pub struct CasPtr<T> {
    ptr: AtomicPtr<T>,
}

impl<T> CasPtr<T> {
    /// Creates a pointer cell holding `initial` (may be null).
    pub fn new(initial: *mut T) -> Self {
        Self {
            ptr: AtomicPtr::new(initial),
        }
    }

    /// Creates a null pointer cell.
    pub fn null() -> Self {
        Self::new(std::ptr::null_mut())
    }

    /// Atomic read with acquire ordering.
    pub fn read(&self) -> *mut T {
        // ORDER: Acquire — a pointer read here happens-after the Release
        // that published it, so the pointee's initialization is visible.
        self.ptr.load(Ordering::Acquire)
    }

    /// Atomic write with release ordering.
    pub fn write(&self, value: *mut T) {
        // ORDER: Release — publishing a node pointer must publish the
        // node's fields (kind, links, value) written before it.
        self.ptr.store(value, Ordering::Release);
    }

    /// Fig. 1 `Compare&Swap` on a pointer word.
    pub fn compare_and_swap(&self, old: *mut T, new: *mut T) -> bool {
        valois_trace::probe!(
            CasAttempt,
            self as *const Self as usize,
            old as usize,
            new as usize
        );
        // ORDER: AcqRel — a successful swing publishes `new` (Release)
        // and observes everything published before `old` was installed
        // (Acquire); failure still acquires the competing publication.
        match self
            .ptr
            .compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => {
                valois_trace::probe!(
                    CasSuccess,
                    self as *const Self as usize,
                    old as usize,
                    new as usize
                );
                true
            }
            Err(found) => {
                valois_trace::probe!(
                    CasFailure,
                    self as *const Self as usize,
                    old as usize,
                    found as usize
                );
                false
            }
        }
    }

    /// Unconditional atomic exchange; returns the previous value.
    pub fn swap(&self, new: *mut T) -> *mut T {
        // ORDER: AcqRel — used by `store_link` (publish `new`) and by
        // `drain_links` (take ownership of the old target for release);
        // both directions need their respective half of the barrier.
        self.ptr.swap(new, Ordering::AcqRel)
    }
}

impl<T> Default for CasPtr<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> fmt::Debug for CasPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CasPtr").field(&self.read()).finish()
    }
}

/// The paper's `Test&Set` primitive: atomically sets a flag to `TRUE` and
/// returns the *previous* value.
///
/// Used by `Release` (Fig. 16) to arbitrate which of several processes that
/// concurrently saw a reference count reach zero actually reclaims the cell
/// (the `claim` field).
///
/// # Example
///
/// ```
/// use valois_sync::primitives::TestAndSet;
///
/// let claim = TestAndSet::new();
/// assert!(!claim.test_and_set(), "first claimant wins (previous = false)");
/// assert!(claim.test_and_set(), "everyone after loses");
/// ```
#[derive(Default)]
pub struct TestAndSet {
    flag: AtomicBool,
}

impl TestAndSet {
    /// Creates a cleared flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a flag with the given initial state.
    pub fn with_state(set: bool) -> Self {
        Self {
            flag: AtomicBool::new(set),
        }
    }

    /// Atomically sets the flag, returning the previous value
    /// (`false` means the caller won the claim).
    pub fn test_and_set(&self) -> bool {
        // ORDER: AcqRel — the claim winner acquires the releases that
        // brought the count to zero before it drains the node.
        self.flag.swap(true, Ordering::AcqRel)
    }

    /// Footnote-1 demonstration: `Test&Set` built from `Compare&Swap`.
    pub fn set_via_cas(&self) -> bool {
        // A single CAS false->true suffices: if it fails the flag was
        // already true (the flag is never cleared concurrently with claims).
        self.flag
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
    }

    /// Clears the flag (used by `Alloc`, Fig. 17 line 8, when recycling a
    /// cell). Release ordering so the clear is visible before the cell is
    /// republished.
    pub fn clear(&self) {
        self.flag.store(false, Ordering::Release);
    }

    /// Reads the flag without modifying it.
    pub fn is_set(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

impl fmt::Debug for TestAndSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("TestAndSet").field(&self.is_set()).finish()
    }
}

/// The paper's `Fetch&Add` primitive over a signed-capable counter.
///
/// `Release` (Fig. 16) performs `Fetch&Add(refct, -1)`; we represent the
/// count as a `usize` and expose increment/decrement that return the
/// *previous* value, matching the paper's semantics.
///
/// # Example
///
/// ```
/// use valois_sync::primitives::Counter;
///
/// let refct = Counter::new(1);
/// assert_eq!(refct.fetch_increment(), 1);
/// assert_eq!(refct.fetch_decrement(), 2);
/// assert_eq!(refct.read(), 1);
/// ```
#[derive(Default)]
pub struct Counter {
    value: AtomicUsize,
}

impl Counter {
    /// Creates a counter holding `initial`.
    pub fn new(initial: usize) -> Self {
        Self {
            value: AtomicUsize::new(initial),
        }
    }

    /// `Fetch&Add(+1)`: increments, returning the previous value.
    pub fn fetch_increment(&self) -> usize {
        // ORDER: AcqRel — SafeRead's increment must be ordered before its
        // re-validating pointer load (Fig. 15 line 5).
        self.value.fetch_add(1, Ordering::AcqRel)
    }

    /// `Fetch&Add(-1)`: decrements, returning the previous value.
    ///
    /// # Panics
    ///
    /// In debug builds, panics on underflow (previous value zero) — an
    /// underflow always indicates a protocol violation in the reference
    /// counting scheme.
    pub fn fetch_decrement(&self) -> usize {
        // ORDER: AcqRel — Release so prior uses of the counted object
        // happen-before reclamation; Acquire so the final decrementer
        // observes them (the Arc pattern).
        let prev = self.value.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev != 0, "reference count underflow");
        prev
    }

    /// `Fetch&Add(delta)` for arbitrary deltas, returning the previous value.
    pub fn fetch_add(&self, delta: usize) -> usize {
        self.value.fetch_add(delta, Ordering::AcqRel)
    }

    /// Footnote-1 demonstration: `Fetch&Add` built from a `Compare&Swap`
    /// loop. Returns the previous value.
    pub fn add_via_cas(&self, delta: usize) -> usize {
        // WAIT-FREE: the CAS fails only when another updater's RMW landed
        // — the footnote's point is exactly this lock-free emulation.
        loop {
            let cur = self.value.load(Ordering::Acquire);
            if self
                .value
                .compare_exchange_weak(
                    cur,
                    cur.wrapping_add(delta),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                return cur;
            }
        }
    }

    /// Reads the current value.
    pub fn read(&self) -> usize {
        self.value.load(Ordering::Acquire)
    }

    /// Non-atomic-context store (initialization / recycling only).
    pub fn write(&self, value: usize) {
        self.value.store(value, Ordering::Release);
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Counter").field(&self.read()).finish()
    }
}

/// Reference count and claim bit **combined in one atomic word** — the
/// Michael & Scott correction to the paper's Figs. 15-18 memory manager.
///
/// The paper keeps `refct` and `claim` in separate words. That admits a
/// race the model checker in `valois-core/tests/loom_models.rs` finds
/// mechanically: a releaser decrements the count to zero and stalls
/// *before* its `Test&Set(claim)`; meanwhile a stale `SafeRead` briefly
/// resurrects the count (0 → 1 → 0), a second releaser wins the claim and
/// reclaims the node, and `Alloc` recycles it — clearing `claim`. When the
/// stalled releaser resumes, its `Test&Set` sees a clear claim, "wins",
/// and reclaims the now-live node a second time.
///
/// The correction makes "count is zero" and "claim acquired" a single
/// atomic step: the count lives in bits 1.. and the claim in bit 0, and
/// the claim is acquired with `Compare&Swap(word, 0, 1)` — which fails
/// unless the count is *still* zero and the claim still clear at claim
/// time. See PAPERS.md (Michael & Scott, *Correction of a Memory
/// Management Method for Lock-Free Data Structures*, 1995).
///
/// # Example
///
/// ```
/// use valois_sync::primitives::RefClaim;
///
/// let rc = RefClaim::new_detached(); // count 0, claim set
/// rc.clear_claim();
/// assert_eq!(rc.incr_ref(), 0);
/// assert_eq!(rc.decr_ref(), 1);
/// assert!(rc.try_claim(), "count zero and claim clear: we reclaim");
/// assert!(!rc.try_claim(), "claim already taken");
/// ```
pub struct RefClaim {
    /// `2 * refct + claim`.
    word: AtomicUsize,
}

/// Bit 0 of the combined word: the claim flag.
const CLAIM_BIT: usize = 1;
/// One reference in the combined word: the count occupies bits 1...
const REF_UNIT: usize = 2;

impl RefClaim {
    /// Creates the detached state: count 0, claim set (a node not yet on
    /// the free list; only `Alloc` clears the claim).
    pub fn new_detached() -> Self {
        Self {
            word: AtomicUsize::new(CLAIM_BIT),
        }
    }

    /// `Fetch&Add(refct, +1)`: returns the *previous count*.
    pub fn incr_ref(&self) -> usize {
        // ORDER: AcqRel — the increment must be ordered before SafeRead's
        // re-validating load of the source pointer (Fig. 15 line 5).
        self.word.fetch_add(REF_UNIT, Ordering::AcqRel) >> 1
    }

    /// `Fetch&Add(refct, -1)`: returns the *previous count*.
    ///
    /// # Panics
    ///
    /// In debug builds, panics on count underflow — always a protocol
    /// violation in the reference counting scheme.
    pub fn decr_ref(&self) -> usize {
        // ORDER: AcqRel — release so every prior use of the node
        // happens-before any reclaimer's drain; acquire so the final
        // decrementer observes those uses before draining.
        let prev = self.word.fetch_sub(REF_UNIT, Ordering::AcqRel);
        debug_assert!(prev >> 1 != 0, "reference count underflow");
        prev >> 1
    }

    /// The corrected claim arbitration: atomically acquires the claim
    /// *only if* the count is still zero and the claim still clear.
    /// Returns `true` if the caller is the unique reclaimer.
    pub fn try_claim(&self) -> bool {
        // ORDER: AcqRel — winning the claim acquires every release that
        // decremented the count to zero, and publishes the claim before
        // the winner starts draining links.
        self.word
            .compare_exchange(0, CLAIM_BIT, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Unconditionally sets the claim, returning the previous claim state.
    /// Quiescent contexts only (cycle collectors that claim garbage whose
    /// count never reaches zero on its own).
    pub fn set_claim(&self) -> bool {
        // ORDER: AcqRel — same publication contract as `try_claim`; callers
        // are quiescent so contention cannot occur, but the drain that
        // follows must still be ordered after the claim.
        self.word.fetch_or(CLAIM_BIT, Ordering::AcqRel) & CLAIM_BIT != 0
    }

    /// Clears the claim (Fig. 17 line 8, during `Alloc`). The count bits
    /// are preserved: a stale `SafeRead` may hold a transient increment on
    /// this node, so the clear must not overwrite the whole word.
    pub fn clear_claim(&self) {
        // ORDER: AcqRel — the clear is ordered after the allocator's node
        // reset and published before the node can be re-linked.
        self.word.fetch_and(!CLAIM_BIT, Ordering::AcqRel);
    }

    /// Reads the current count.
    pub fn refcount(&self) -> usize {
        // ORDER: Acquire — diagnostic/audit reads synchronize with the
        // AcqRel read-modify-writes above.
        self.word.load(Ordering::Acquire) >> 1
    }

    /// Reads the claim flag.
    pub fn claim_is_set(&self) -> bool {
        // ORDER: Acquire — see `refcount`.
        self.word.load(Ordering::Acquire) & CLAIM_BIT != 0
    }
}

impl Default for RefClaim {
    fn default() -> Self {
        Self::new_detached()
    }
}

impl fmt::Debug for RefClaim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RefClaim")
            .field("refct", &self.refcount())
            .field("claim", &self.claim_is_set())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn cas_cell_swings_once() {
        let c = CasCell::new(10);
        assert!(c.compare_and_swap(10, 11));
        assert!(!c.compare_and_swap(10, 12));
        assert_eq!(c.read(), 11);
    }

    #[test]
    fn cas_cell_write_read_roundtrip() {
        let c = CasCell::default();
        assert_eq!(c.read(), 0);
        c.write(99);
        assert_eq!(c.read(), 99);
    }

    #[test]
    fn cas_ptr_swings_and_swaps() {
        let mut a = 1i32;
        let mut b = 2i32;
        let p = CasPtr::new(&mut a as *mut i32);
        assert!(p.compare_and_swap(&mut a, &mut b));
        assert!(!p.compare_and_swap(&mut a, std::ptr::null_mut()));
        assert_eq!(p.swap(std::ptr::null_mut()), &mut b as *mut i32);
        assert!(p.read().is_null());
    }

    #[test]
    fn cas_ptr_null_default() {
        let p: CasPtr<u8> = CasPtr::default();
        assert!(p.read().is_null());
    }

    #[test]
    fn test_and_set_claims_exactly_once_per_clear() {
        let t = TestAndSet::new();
        assert!(!t.test_and_set(), "first claimant must win");
        assert!(t.test_and_set(), "second claimant must lose");
        t.clear();
        assert!(!t.test_and_set(), "winnable again after clear");
    }

    #[test]
    fn test_and_set_via_cas_equivalent() {
        let t = TestAndSet::new();
        assert!(!t.set_via_cas());
        assert!(t.set_via_cas());
    }

    #[test]
    fn counter_returns_previous_values() {
        let c = Counter::new(5);
        assert_eq!(c.fetch_increment(), 5);
        assert_eq!(c.fetch_decrement(), 6);
        assert_eq!(c.read(), 5);
        assert_eq!(c.fetch_add(10), 5);
        assert_eq!(c.read(), 15);
    }

    #[test]
    fn counter_cas_loop_matches_hardware_faa() {
        let c = Counter::new(0);
        for i in 0..100 {
            assert_eq!(c.add_via_cas(1), i);
        }
        assert_eq!(c.read(), 100);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    #[cfg(debug_assertions)]
    fn counter_underflow_panics_in_debug() {
        let c = Counter::new(0);
        c.fetch_decrement();
    }

    #[test]
    fn concurrent_test_and_set_has_single_winner() {
        for _ in 0..50 {
            let t = Arc::new(TestAndSet::new());
            let winners: usize = (0..8)
                .map(|_| {
                    let t = Arc::clone(&t);
                    thread::spawn(move || usize::from(!t.test_and_set()))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum();
            assert_eq!(winners, 1);
        }
    }

    #[test]
    fn ref_claim_blocks_stalled_releaser() {
        // The Michael & Scott scenario, serialized: releaser A decrements
        // to zero but stalls before claiming; a stale SafeRead resurrects
        // the count, a second releaser B legitimately wins the claim, and
        // the node is recycled (claim cleared, count 1 for the new owner).
        // A's late claim attempt must then fail — with the paper's
        // separate-word Test&Set it would succeed and free a live node.
        let rc = RefClaim::new_detached();
        rc.clear_claim();
        rc.incr_ref(); // the one live reference
        assert_eq!(rc.decr_ref(), 1); // A: count hits zero; A stalls here
        assert_eq!(rc.incr_ref(), 0); // stale SafeRead resurrects 0 -> 1
        assert_eq!(rc.decr_ref(), 1); // re-validation failed: release
        assert!(rc.try_claim(), "B: count zero again, B reclaims");
        rc.clear_claim(); // Alloc recycles the node...
        rc.incr_ref(); // ...for a new owner
        assert!(!rc.try_claim(), "A resumes: must NOT reclaim the live node");
        assert_eq!(rc.refcount(), 1);
        assert!(!rc.claim_is_set());
    }

    #[test]
    fn ref_claim_transient_increment_survives_clear() {
        // A stale SafeRead increment concurrent with Alloc's claim clear
        // must not be erased: clear_claim touches only bit 0.
        let rc = RefClaim::new_detached();
        rc.incr_ref(); // free-list count
        rc.incr_ref(); // stale SafeRead's transient protection
        rc.clear_claim();
        assert_eq!(rc.refcount(), 2, "clear_claim erased count bits");
        assert!(!rc.claim_is_set());
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let c = Arc::new(Counter::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.fetch_increment();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.read(), 80_000);
    }

    #[test]
    fn concurrent_cas_cell_single_winner_per_round() {
        let c = Arc::new(CasCell::new(0));
        for round in 0..100usize {
            let winners: usize = (0..4)
                .map(|_| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || usize::from(c.compare_and_swap(round, round + 1)))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum();
            assert_eq!(winners, 1, "exactly one CAS winner per round");
            assert_eq!(c.read(), round + 1);
        }
    }
}
