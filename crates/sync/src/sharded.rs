//! Sharded per-thread state for de-contended statistics.
//!
//! Experiment E8 showed that the unconditional relaxed `fetch_add` inside
//! `Arena::safe_read` lands on the *same* cache line for every thread, so
//! the instrumentation itself contends exactly like the protocol words it
//! is supposed to measure. [`Sharded`] spreads such state over a small,
//! fixed set of [`CachePadded`] shards indexed by a cheap per-thread id
//! ([`thread_index`]): writers touch (mostly) private lines, readers sum
//! over all shards.
//!
//! The shard count is a power of two so selection is a mask, and it is
//! fixed at 1 under `--cfg loom` — the model checker's scheduler has no
//! thread-id notion, and a single shard keeps every interleaving
//! deterministic while still exercising the summing read side.
//!
//! # Example
//!
//! ```
//! use valois_sync::sharded::Sharded;
//! use valois_sync::shim::atomic::{AtomicU64, Ordering};
//!
//! let hits: Sharded<AtomicU64> = Sharded::new();
//! hits.get().fetch_add(3, Ordering::Relaxed);
//! let total: u64 = hits.shards().map(|s| s.load(Ordering::Relaxed)).sum();
//! assert_eq!(total, 3);
//! ```

use std::fmt;

use crate::pad::CachePadded;

/// Default shard count (power of two). Sixteen covers typical core counts
/// without making the summing read side expensive.
#[cfg(not(loom))]
const DEFAULT_SHARDS: usize = 16;
/// Under the model checker a single shard keeps schedules deterministic
/// (no thread-id dependence) and the state space small.
#[cfg(loom)]
const DEFAULT_SHARDS: usize = 1;

/// A small, dense, process-wide thread index for shard selection.
///
/// Indices are handed out in thread-creation order starting at 0 and are
/// stable for the thread's lifetime. They are *not* bounded by the shard
/// count — callers mask/modulo into their shard array — so two threads can
/// collide on a shard; sharded state must therefore remain safe (atomic or
/// try-locked) under collisions, merely faster without them.
#[cfg(not(loom))]
pub fn thread_index() -> usize {
    use crate::shim::atomic::{AtomicUsize, Ordering};
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    INDEX.with(|slot| {
        let mut idx = slot.get();
        if idx == usize::MAX {
            idx = NEXT.fetch_add(1, Ordering::Relaxed);
            slot.set(idx);
        }
        idx
    })
}

/// Under `--cfg loom` every model thread maps to index 0: the scheduler
/// exposes no thread identity, and a constant keeps replay deterministic.
#[cfg(loom)]
pub fn thread_index() -> usize {
    0
}

/// `T` replicated across cache-padded shards, selected by [`thread_index`].
pub struct Sharded<T> {
    shards: Box<[CachePadded<T>]>,
}

impl<T: Default> Sharded<T> {
    /// Creates [`DEFAULT_SHARDS`] default-constructed shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Creates at least `n` shards (rounded up to a power of two, min 1).
    pub fn with_shards(n: usize) -> Self {
        let n = n.max(1).next_power_of_two();
        Self {
            shards: (0..n).map(|_| CachePadded::new(T::default())).collect(),
        }
    }
}

impl<T: Default> Default for Sharded<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Sharded<T> {
    /// The current thread's shard. Two threads may map to the same shard
    /// (the index space is unbounded, the shard set is not), so the shard
    /// type must tolerate concurrent access.
    #[inline]
    pub fn get(&self) -> &T {
        &self.shards[thread_index() & (self.shards.len() - 1)]
    }

    /// Iterates over every shard (the summing read side).
    pub fn shards(&self) -> impl Iterator<Item = &T> {
        self.shards.iter().map(|s| &**s)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

impl<T> fmt::Debug for Sharded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sharded")
            .field("shards", &self.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shim::atomic::{AtomicU64, Ordering};

    #[test]
    fn shard_count_is_power_of_two_min_one() {
        assert_eq!(Sharded::<AtomicU64>::with_shards(0).shard_count(), 1);
        assert_eq!(Sharded::<AtomicU64>::with_shards(3).shard_count(), 4);
        assert_eq!(Sharded::<AtomicU64>::with_shards(16).shard_count(), 16);
    }

    #[test]
    fn thread_index_is_stable_within_a_thread() {
        assert_eq!(thread_index(), thread_index());
    }

    #[cfg(not(loom))]
    #[test]
    fn thread_indices_differ_across_threads() {
        let mine = thread_index();
        let theirs = std::thread::spawn(thread_index).join().unwrap();
        assert_ne!(mine, theirs);
    }

    #[test]
    fn sum_over_shards_sees_every_add() {
        let counters: Sharded<AtomicU64> = Sharded::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        counters.get().fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        let total: u64 = counters.shards().map(|c| c.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 4000);
    }
}
