//! Bounded exponential backoff for CAS retry loops.
//!
//! §2.1 of the paper: "starvation at high levels of contention is more
//! efficiently handled by techniques such as exponential backoff". Every
//! retry loop in the dictionary layer takes an optional [`Backoff`]; the
//! `backoff` Criterion bench measures its effect (ablation of a design
//! choice called out in DESIGN.md).
//!
//! The wait length is **jittered**: a purely deterministic `2^k` schedule
//! puts every contending thread on the *same* wait sequence, so threads
//! that collided once re-collide in lockstep at each retry. Each `Backoff`
//! therefore owns a small deterministic PRNG ([`SmallRng`]) and draws its
//! wait uniformly from `(2^k / 2, 2^k]` — still doubling on average, but
//! decorrelated across instances. Seeding is deterministic per thread and
//! per construction order (no clocks, no OS entropy), and under
//! `--cfg loom` the seed is a constant so model schedules stay replayable.

use std::fmt;

use crate::rng::SmallRng;

/// Upper bound on the exponent so the wait stays bounded (2^10 spins).
const MAX_EXPONENT: u32 = 10;
/// Below this exponent we spin; above it we yield to the OS scheduler,
/// which matters when threads outnumber cores.
const YIELD_EXPONENT: u32 = 6;

/// Deterministic, allocation-free seed material: differs across threads
/// (via [`crate::sharded::thread_index`]) and across successive `Backoff`
/// constructions within a thread, so independent instances draw
/// independent jitter streams.
#[cfg(not(loom))]
fn auto_seed() -> u64 {
    use std::cell::Cell;
    thread_local! {
        static CONSTRUCTED: Cell<u64> = const { Cell::new(0) };
    }
    let nth = CONSTRUCTED.with(|c| {
        let v = c.get();
        c.set(v + 1);
        v
    });
    ((crate::sharded::thread_index() as u64) << 32) ^ nth
}

/// Under the model checker the seed is a constant: jitter then depends
/// only on the instance's own draw sequence, keeping every explored
/// schedule (and its replay) deterministic.
#[cfg(loom)]
fn auto_seed() -> u64 {
    0x9E37_79B9_7F4A_7C15
}

/// Bounded exponential backoff with randomized jitter.
///
/// Each call to [`Backoff::spin`] waits roughly twice as long as the
/// previous one, up to a fixed cap, then starts yielding the CPU. Reset
/// with [`Backoff::reset`] after a successful operation.
///
/// # Example
///
/// ```
/// use valois_sync::Backoff;
/// let mut b = Backoff::new();
/// for _ in 0..4 { b.spin(); }
/// b.reset();
/// assert!(b.is_fresh());
/// ```
#[derive(Clone)]
pub struct Backoff {
    exponent: u32,
    rng: SmallRng,
}

impl Backoff {
    /// Creates a fresh backoff (first wait is minimal) with an
    /// automatically chosen jitter seed (distinct per thread and per
    /// construction; see module docs).
    pub fn new() -> Self {
        Self::with_seed(auto_seed())
    }

    /// Creates a fresh backoff with an explicit jitter seed. Two backoffs
    /// with the same seed draw identical wait sequences (reproducibility
    /// hook for tests and the bench harness).
    pub fn with_seed(seed: u64) -> Self {
        Self {
            exponent: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Returns `true` if no backoff has been accumulated yet.
    pub fn is_fresh(&self) -> bool {
        self.exponent == 0
    }

    /// Current exponent (testing / statistics hook).
    pub fn exponent(&self) -> u32 {
        self.exponent
    }

    /// Draws the next wait length for the current exponent: uniform in
    /// `(2^k / 2, 2^k]`, so waits keep their exponential envelope but two
    /// contending backoffs decorrelate instead of re-colliding in
    /// lockstep. Advances the jitter stream.
    fn jittered_iters(&mut self) -> u32 {
        let ceil = 1u64 << self.exponent;
        let floor = ceil / 2;
        (floor + 1 + self.rng.gen_range(0..ceil - floor)) as u32
    }

    /// Waits for the current (jittered) backoff duration and doubles the
    /// next one.
    ///
    /// Short waits are busy spins with `spin_loop` hints; once the wait
    /// grows past a threshold the thread yields instead, so an
    /// oversubscribed host (more threads than cores) makes progress.
    pub fn spin(&mut self) {
        if self.exponent <= YIELD_EXPONENT {
            let iters = self.jittered_iters();
            for _ in 0..iters {
                crate::shim::hint::spin_loop();
            }
            valois_trace::probe!(BackoffDone, iters);
        } else {
            crate::shim::thread::yield_now();
            // A yield's wall time is the scheduler's; record the envelope.
            valois_trace::probe!(BackoffDone, 1u64 << self.exponent);
        }
        if self.exponent < MAX_EXPONENT {
            self.exponent += 1;
        }
    }

    /// Resets to the minimal wait (call after the contended operation
    /// finally succeeds). The jitter stream is *not* rewound: a reused
    /// backoff keeps drawing fresh waits.
    pub fn reset(&mut self) {
        self.exponent = 0;
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Backoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Backoff")
            .field("exponent", &self.exponent)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_grows_and_saturates() {
        let mut b = Backoff::new();
        assert!(b.is_fresh());
        for _ in 0..(MAX_EXPONENT + 5) {
            b.spin();
        }
        assert_eq!(b.exponent(), MAX_EXPONENT, "exponent must saturate");
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut b = Backoff::new();
        b.spin();
        b.spin();
        assert!(!b.is_fresh());
        b.reset();
        assert!(b.is_fresh());
        assert_eq!(b.exponent(), 0);
    }

    #[test]
    fn clone_preserves_state() {
        let mut b = Backoff::new();
        b.spin();
        b.spin();
        let c = b.clone();
        assert_eq!(c.exponent(), b.exponent());
    }

    /// The wait sequence at each exponent level, for a given seed.
    fn wait_sequence(seed: u64) -> Vec<u32> {
        let mut b = Backoff::with_seed(seed);
        (0..=YIELD_EXPONENT)
            .map(|k| {
                b.exponent = k;
                b.jittered_iters()
            })
            .collect()
    }

    #[test]
    fn jitter_stays_in_the_exponential_envelope() {
        for seed in 0..32u64 {
            let mut b = Backoff::with_seed(seed);
            for k in 0..=YIELD_EXPONENT {
                b.exponent = k;
                let w = b.jittered_iters();
                let ceil = 1u32 << k;
                assert!(
                    w > ceil / 2 && w <= ceil,
                    "seed {seed} exponent {k}: wait {w} outside ({}, {ceil}]",
                    ceil / 2
                );
            }
        }
    }

    #[test]
    fn two_backoffs_diverge() {
        // The satellite bug: before jitter, every Backoff produced the
        // identical 1, 2, 4, ... sequence, so contending threads re-collided
        // in lockstep. Differently seeded instances must now diverge.
        let a = wait_sequence(1);
        let b = wait_sequence(2);
        assert_ne!(
            a, b,
            "differently seeded backoffs must draw different waits"
        );
    }

    #[test]
    fn same_seed_reproduces_the_same_waits() {
        assert_eq!(wait_sequence(7), wait_sequence(7));
    }

    #[cfg(not(loom))]
    #[test]
    fn auto_seeds_differ_within_and_across_threads() {
        let a = auto_seed();
        let b = auto_seed();
        assert_ne!(a, b, "successive constructions must reseed");
        let c = std::thread::spawn(auto_seed).join().unwrap();
        assert_ne!(a, c, "threads must not share a seed sequence");
    }
}
