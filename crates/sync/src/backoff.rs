//! Bounded exponential backoff for CAS retry loops.
//!
//! §2.1 of the paper: "starvation at high levels of contention is more
//! efficiently handled by techniques such as exponential backoff". Every
//! retry loop in the dictionary layer takes an optional [`Backoff`]; the
//! `backoff` Criterion bench measures its effect (ablation of a design
//! choice called out in DESIGN.md).

use std::fmt;

/// Upper bound on the exponent so the wait stays bounded (2^10 spins).
const MAX_EXPONENT: u32 = 10;
/// Below this exponent we spin; above it we yield to the OS scheduler,
/// which matters when threads outnumber cores.
const YIELD_EXPONENT: u32 = 6;

/// Bounded exponential backoff.
///
/// Each call to [`Backoff::spin`] waits roughly twice as long as the
/// previous one, up to a fixed cap, then starts yielding the CPU. Reset
/// with [`Backoff::reset`] after a successful operation.
///
/// # Example
///
/// ```
/// use valois_sync::Backoff;
/// let mut b = Backoff::new();
/// for _ in 0..4 { b.spin(); }
/// b.reset();
/// assert!(b.is_fresh());
/// ```
#[derive(Clone)]
pub struct Backoff {
    exponent: u32,
}

impl Backoff {
    /// Creates a fresh backoff (first wait is minimal).
    pub fn new() -> Self {
        Self { exponent: 0 }
    }

    /// Returns `true` if no backoff has been accumulated yet.
    pub fn is_fresh(&self) -> bool {
        self.exponent == 0
    }

    /// Current exponent (testing / statistics hook).
    pub fn exponent(&self) -> u32 {
        self.exponent
    }

    /// Waits for the current backoff duration and doubles the next one.
    ///
    /// Short waits are busy spins with `spin_loop` hints; once the wait
    /// grows past a threshold the thread yields instead, so an
    /// oversubscribed host (more threads than cores) makes progress.
    pub fn spin(&mut self) {
        if self.exponent <= YIELD_EXPONENT {
            let iters = 1u32 << self.exponent;
            for _ in 0..iters {
                crate::shim::hint::spin_loop();
            }
        } else {
            crate::shim::thread::yield_now();
        }
        if self.exponent < MAX_EXPONENT {
            self.exponent += 1;
        }
    }

    /// Resets to the minimal wait (call after the contended operation
    /// finally succeeds).
    pub fn reset(&mut self) {
        self.exponent = 0;
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Backoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Backoff")
            .field("exponent", &self.exponent)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_grows_and_saturates() {
        let mut b = Backoff::new();
        assert!(b.is_fresh());
        for _ in 0..(MAX_EXPONENT + 5) {
            b.spin();
        }
        assert_eq!(b.exponent(), MAX_EXPONENT, "exponent must saturate");
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut b = Backoff::new();
        b.spin();
        b.spin();
        assert!(!b.is_fresh());
        b.reset();
        assert!(b.is_fresh());
        assert_eq!(b.exponent(), 0);
    }

    #[test]
    fn clone_preserves_state() {
        let mut b = Backoff::new();
        b.spin();
        b.spin();
        let c = b.clone();
        assert_eq!(c.exponent(), b.exponent());
    }
}
