//! Synchronization primitives for the Valois lock-free linked-list
//! reproduction (PODC 1995).
//!
//! The paper builds everything from three single-word atomic primitives:
//!
//! * **Compare&Swap** (Fig. 1 of the paper) — the universal primitive used to
//!   *swing* pointers,
//! * **Test&Set** — used by the `claim` bit of the memory manager (§5.1),
//! * **Fetch&Add** — used by the reference counts (§5.1).
//!
//! This crate provides paper-faithful wrappers over [`std::sync::atomic`]
//! ([`primitives`]), the exponential [`Backoff`] the paper recommends for
//! contention management (§2.1), the spin locks used as baselines
//! ([`spinlock`]), and a [`CachePadded`] helper to keep hot shared words on
//! separate cache lines.
//!
//! # Example
//!
//! ```
//! use valois_sync::primitives::CasCell;
//!
//! let cell = CasCell::new(7usize);
//! assert!(cell.compare_and_swap(7, 8));
//! assert!(!cell.compare_and_swap(7, 9));
//! assert_eq!(cell.read(), 8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backoff;
pub mod pad;
pub mod primitives;
pub mod rng;
pub mod sharded;
pub mod shim;
pub mod spinlock;

pub use backoff::Backoff;
pub use pad::CachePadded;
pub use primitives::{CasCell, CasPtr, Counter, RefClaim, TestAndSet};
pub use sharded::Sharded;
pub use spinlock::{
    AndersonLock, ClhLock, Lock, LockGuard, LockKind, TasLock, TicketLock, TtasLock,
};
