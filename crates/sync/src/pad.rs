//! Cache-line padding for contended shared words.
//!
//! The paper's reference counts and root pointers are single words hammered
//! by every process; placing two of them on one cache line produces false
//! sharing that would distort the E1/E8 measurements. [`CachePadded`] aligns
//! its contents to 128 bytes (two 64-byte lines, covering adjacent-line
//! prefetchers on x86 and the 128-byte lines on some ARM parts).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns `T` to 128 bytes to avoid false sharing.
///
/// # Example
///
/// ```
/// use valois_sync::CachePadded;
/// use std::sync::atomic::AtomicUsize;
///
/// let counter = CachePadded::new(AtomicUsize::new(0));
/// assert_eq!(std::mem::align_of_val(&counter), 128);
/// ```
#[derive(Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in a padded cell.
    pub fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T: Clone> Clone for CachePadded<T> {
    fn clone(&self) -> Self {
        Self::new(self.value.clone())
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_128() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }

    #[test]
    fn adjacent_elements_do_not_share_lines() {
        let v = [CachePadded::new(0u8), CachePadded::new(1u8)];
        let a = &*v[0] as *const u8 as usize;
        let b = &*v[1] as *const u8 as usize;
        assert!(b - a >= 128);
    }
}
