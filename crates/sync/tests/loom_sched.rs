//! Self-tests of the model-checking scheduler (`--cfg loom` only).
//!
//! Before trusting the scheduler to verify the Valois protocols, verify
//! the scheduler: it must (a) pass race-free models, (b) *find* seeded
//! interleaving bugs (lost update, check-then-act), and (c) handle
//! spawn/join, mutexes, and yields without wedging.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p valois-sync --test loom_sched`
#![cfg(loom)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use valois_sync::shim::atomic::{AtomicUsize, Ordering};
use valois_sync::shim::sync::Mutex;
use valois_sync::shim::{thread, Builder};

/// fetch_add is atomic: no interleaving loses an increment.
#[test]
fn atomic_counter_never_loses_updates() {
    let explored = Builder::new().check(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            c2.fetch_add(1, Ordering::AcqRel);
        });
        c.fetch_add(1, Ordering::AcqRel);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::Acquire), 2);
    });
    assert!(explored > 1, "must explore more than one schedule");
}

/// A load/store read-modify-write is NOT atomic: the scheduler must find
/// the lost-update interleaving (both threads read 0, both store 1).
#[test]
fn scheduler_finds_lost_update() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        Builder::new().check(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&c);
            let t = thread::spawn(move || {
                let v = c2.load(Ordering::Acquire);
                c2.store(v + 1, Ordering::Release);
            });
            let v = c.load(Ordering::Acquire);
            c.store(v + 1, Ordering::Release);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::Acquire), 2, "lost update");
        });
    }));
    let msg = match result {
        Ok(_) => panic!("scheduler failed to find the lost-update race"),
        Err(e) => e
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string>".into()),
    };
    assert!(msg.contains("lost update"), "unexpected failure: {msg}");
}

/// Check-then-act on a flag is racy; one preemption suffices to break it.
#[test]
fn scheduler_finds_check_then_act_race() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        Builder::new().preemption_bound(1).check(|| {
            let owner = Arc::new(AtomicUsize::new(0));
            let claims = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for id in 1..=2usize {
                let owner = Arc::clone(&owner);
                let claims = Arc::clone(&claims);
                handles.push(thread::spawn(move || {
                    // Racy: check owner == 0, then claim it with a store.
                    if owner.load(Ordering::Acquire) == 0 {
                        owner.store(id, Ordering::Release);
                        claims.fetch_add(1, Ordering::AcqRel);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert!(claims.load(Ordering::Acquire) <= 1, "double claim");
        });
    }));
    let msg = match result {
        Ok(_) => panic!("scheduler failed to find the double-claim race"),
        Err(e) => e
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string>".into()),
    };
    assert!(msg.contains("double claim"), "unexpected failure: {msg}");
}

/// compare_exchange closes the same race: no schedule double-claims.
#[test]
fn cas_claim_is_race_free() {
    Builder::new().check(|| {
        let owner = Arc::new(AtomicUsize::new(0));
        let claims = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for id in 1..=2usize {
            let owner = Arc::clone(&owner);
            let claims = Arc::clone(&claims);
            handles.push(thread::spawn(move || {
                if owner
                    .compare_exchange(0, id, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    claims.fetch_add(1, Ordering::AcqRel);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(claims.load(Ordering::Acquire), 1, "exactly one winner");
    });
}

/// The shim mutex serializes critical sections under the scheduler
/// (contended acquires park in the scheduler, no deadlock, no lost
/// updates through the guarded data).
#[test]
fn mutex_serializes_critical_sections() {
    let explored = Builder::new().check(|| {
        let m = Arc::new(Mutex::new(0usize));
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || {
            let mut g = m2.lock().unwrap();
            *g += 1;
        });
        {
            let mut g = m.lock().unwrap();
            *g += 1;
        }
        t.join().unwrap();
        assert_eq!(*m.lock().unwrap(), 2);
    });
    assert!(explored > 1, "must explore more than one schedule");
}

/// Values flow through join handles, and yields are legal scheduling
/// points inside a model.
#[test]
fn join_returns_value_and_yield_is_free() {
    Builder::new().check(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            thread::yield_now();
            x2.fetch_add(3, Ordering::AcqRel);
            41usize
        });
        thread::yield_now();
        let got = t.join().unwrap();
        assert_eq!(got, 41);
        assert_eq!(x.load(Ordering::Acquire), 3);
    });
}

/// Three threads, bounded preemptions: exploration terminates and visits
/// a superlinear number of schedules.
#[test]
fn three_thread_exploration_terminates() {
    let explored = Builder::new().preemption_bound(2).check(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                c.fetch_add(1, Ordering::AcqRel);
                c.fetch_add(1, Ordering::AcqRel);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Acquire), 6);
    });
    assert!(
        explored > 10,
        "3 threads x 2 ops must branch, got {explored}"
    );
}
