//! Findings, severities, and the three output formats (text, JSON, SARIF
//! 2.1.0). The JSON encoders are hand-rolled — the linter is
//! dependency-free by design (it sits on the tier-1 path and must build
//! offline), and the two documents it emits are small and fixed-shape.

use std::fmt;

/// Lint severity. `Error` always fails the run; `Warning` fails it only
/// under `--deny warn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported, fails only under `--deny warn`.
    Warning,
    /// Protocol violation: always fails the run.
    Error,
}

impl Severity {
    /// SARIF `level` string.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// A secondary location attached to a finding — e.g. the acquire site of
/// a leaked count, or the other half of a release/acquire pairing.
/// Rendered as SARIF `relatedLocations` and as indented notes in text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Related {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// What this location contributes to the finding.
    pub note: String,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (e.g. `unsafe-comment`).
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// Secondary locations (acquire sites, pairing partners). Empty for
    /// most rules.
    pub related: Vec<Related>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: [{}] {}",
            self.severity, self.file, self.line, self.rule, self.message
        )
    }
}

/// Static description of a rule, used for SARIF rule metadata and `--help`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable identifier.
    pub id: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Default severity.
    pub severity: Severity,
}

/// The rule registry: every pass's rules, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "shim-import",
        summary: "atomics must be imported through valois_sync::shim so --cfg loom \
                  can instrument them",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "relaxed-ptr-order",
        summary: "Ordering::Relaxed on a pointer-valued atomic requires an adjacent \
                  // ORDER: justification",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "unsafe-comment",
        summary: "every unsafe block/fn/impl needs an adjacent // SAFETY: comment \
                  (or a # Safety doc section on an unsafe fn)",
        severity: Severity::Warning,
    },
    RuleInfo {
        id: "refcount-pairing",
        summary: "a function acquiring counted references (safe_read/alloc) must \
                  release/transfer them or carry a // COUNT: justification",
        severity: Severity::Warning,
    },
    RuleInfo {
        id: "cas-progress",
        summary: "a CAS retry loop must invoke Backoff or carry a // WAIT-FREE: \
                  justification",
        severity: Severity::Warning,
    },
    RuleInfo {
        id: "spin-guard",
        summary: "a spinlock guard must not live across a call into the protocol \
                  layer",
        severity: Severity::Warning,
    },
    RuleInfo {
        id: "probe-discipline",
        summary: "flight-recorder probes must use the zero-cost valois_trace::probe! \
                  macro, never a direct valois_trace::record call",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "refcount-balance",
        summary: "dataflow proof that every count acquired by safe_read/alloc is \
                  released, transferred via raw-pointer return, or covered by a \
                  // COUNT: contract on every path",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "order-pairing",
        summary: "an atomic location written with Release must also be read with \
                  Acquire somewhere in the workspace (and vice versa), or carry an \
                  // ORDER: justification",
        severity: Severity::Warning,
    },
    RuleInfo {
        id: "seqcst-fence",
        summary: "a SeqCst fence or atomic op needs an adjacent // ORDER: comment; \
                  fences additionally need an // INVARIANT: I<n> cross-reference",
        severity: Severity::Warning,
    },
    RuleInfo {
        id: "invariant-ref",
        summary: "every // INVARIANT: I<n> reference must resolve to an invariant \
                  actually defined in docs/PROTOCOL.md",
        severity: Severity::Error,
    },
];

/// Looks up a rule's metadata by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Escapes `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Plain-text rendering, one finding per line (the CI log format).
/// Related locations follow as indented `note:` lines.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
        for r in &f.related {
            out.push_str(&format!("    note: {}:{}: {}\n", r.file, r.line, r.note));
        }
    }
    out
}

/// Compact JSON rendering: `{"findings": [...], "counts": {...}}`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let related = if f.related.is_empty() {
            String::new()
        } else {
            let items: Vec<String> = f
                .related
                .iter()
                .map(|r| {
                    format!(
                        "{{\"file\": \"{}\", \"line\": {}, \"note\": \"{}\"}}",
                        json_escape(&r.file),
                        r.line,
                        json_escape(&r.note)
                    )
                })
                .collect();
            format!(", \"related\": [{}]", items.join(", "))
        };
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"message\": \"{}\"{}}}{}\n",
            json_escape(f.rule),
            f.severity,
            json_escape(&f.file),
            f.line,
            json_escape(&f.message),
            related,
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    let warnings = findings.len() - errors;
    out.push_str(&format!(
        "  ],\n  \"counts\": {{\"errors\": {errors}, \"warnings\": {warnings}}}\n}}\n"
    ));
    out
}

/// SARIF 2.1.0 rendering, suitable for GitHub code-scanning upload: one
/// run, one driver (`valois-analyze`), rule metadata from [`RULES`], one
/// result per finding with a physical location.
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \"name\": \"valois-analyze\",\n          \"informationUri\": \"https://example.com/valois\",\n          \"rules\": [\n",
    );
    for (i, r) in RULES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
             \"defaultConfiguration\": {{\"level\": \"{}\"}}}}{}\n",
            json_escape(r.id),
            json_escape(r.summary),
            r.severity.sarif_level(),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let related = if f.related.is_empty() {
            String::new()
        } else {
            let items: Vec<String> = f
                .related
                .iter()
                .enumerate()
                .map(|(id, r)| {
                    format!(
                        "{{\"id\": {}, \"physicalLocation\": {{\"artifactLocation\": \
                         {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}, \
                         \"message\": {{\"text\": \"{}\"}}}}",
                        id,
                        json_escape(&r.file.replace('\\', "/")),
                        r.line,
                        json_escape(&r.note)
                    )
                })
                .collect();
            format!(", \"relatedLocations\": [{}]", items.join(", "))
        };
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"{}\", \"message\": {{\"text\": \"{}\"}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}]{}}}{}\n",
            json_escape(f.rule),
            f.severity.sarif_level(),
            json_escape(&f.message),
            json_escape(&f.file.replace('\\', "/")),
            f.line,
            related,
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                rule: "unsafe-comment",
                severity: Severity::Warning,
                file: "crates/core/src/list.rs".into(),
                line: 42,
                message: "unsafe block without `// SAFETY:`".into(),
                related: vec![],
            },
            Finding {
                rule: "shim-import",
                severity: Severity::Error,
                file: "src/lib.rs".into(),
                line: 7,
                message: "direct \"std::sync::atomic\" import".into(),
                related: vec![Related {
                    file: "src/lib.rs".into(),
                    line: 3,
                    note: "shim re-export is here".into(),
                }],
            },
        ]
    }

    #[test]
    fn text_lists_one_finding_per_line() {
        let t = render_text(&sample());
        assert_eq!(t.lines().count(), 3);
        assert!(t.contains("crates/core/src/list.rs:42"));
        assert!(t.contains("    note: src/lib.rs:3: shim re-export is here"));
    }

    #[test]
    fn json_escapes_quotes_and_counts() {
        let j = render_json(&sample());
        assert!(j.contains("\\\"std::sync::atomic\\\""));
        assert!(j.contains("\"errors\": 1"));
        assert!(j.contains("\"warnings\": 1"));
    }

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let s = render_sarif(&sample());
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"valois-analyze\""));
        for r in RULES {
            assert!(s.contains(&format!("\"id\": \"{}\"", r.id)), "{}", r.id);
        }
        assert!(s.contains("\"startLine\": 42"));
        assert!(s.contains("\"level\": \"error\""));
    }

    #[test]
    fn sarif_of_empty_findings_is_valid_shape() {
        let s = render_sarif(&[]);
        assert!(s.contains("\"results\": [\n      ]"));
    }

    #[test]
    fn every_rule_id_is_unique() {
        for (i, a) in RULES.iter().enumerate() {
            for b in &RULES[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
    }
}
