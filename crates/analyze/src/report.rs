//! Findings, severities, and the three output formats (text, JSON, SARIF
//! 2.1.0). The JSON encoders are hand-rolled — the linter is
//! dependency-free by design (it sits on the tier-1 path and must build
//! offline), and the two documents it emits are small and fixed-shape.

use std::fmt;

/// Lint severity. `Error` always fails the run; `Warning` fails it only
/// under `--deny warn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported, fails only under `--deny warn`.
    Warning,
    /// Protocol violation: always fails the run.
    Error,
}

impl Severity {
    /// SARIF `level` string.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// A secondary location attached to a finding — e.g. the acquire site of
/// a leaked count, or the other half of a release/acquire pairing.
/// Rendered as SARIF `relatedLocations` and as indented notes in text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Related {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// What this location contributes to the finding.
    pub note: String,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (e.g. `unsafe-comment`).
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// Secondary locations (acquire sites, pairing partners). Empty for
    /// most rules.
    pub related: Vec<Related>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: [{}] {}",
            self.severity, self.file, self.line, self.rule, self.message
        )
    }
}

/// Static description of a rule, used for SARIF rule metadata and `--help`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable identifier.
    pub id: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Default severity.
    pub severity: Severity,
}

/// The rule registry: every pass's rules, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "shim-import",
        summary: "atomics must be imported through valois_sync::shim so --cfg loom \
                  can instrument them",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "relaxed-ptr-order",
        summary: "Ordering::Relaxed on a pointer-valued atomic requires an adjacent \
                  // ORDER: justification",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "unsafe-comment",
        summary: "every unsafe block/fn/impl needs an adjacent // SAFETY: comment \
                  (or a # Safety doc section on an unsafe fn)",
        severity: Severity::Warning,
    },
    RuleInfo {
        id: "refcount-pairing",
        summary: "a function acquiring counted references (safe_read/alloc) must \
                  release/transfer them or carry a // COUNT: justification",
        severity: Severity::Warning,
    },
    RuleInfo {
        id: "cas-progress",
        summary: "a CAS retry loop must invoke Backoff or carry a // WAIT-FREE: \
                  justification",
        severity: Severity::Warning,
    },
    RuleInfo {
        id: "spin-guard",
        summary: "a spinlock guard must not live across a call into the protocol \
                  layer",
        severity: Severity::Warning,
    },
    RuleInfo {
        id: "probe-discipline",
        summary: "flight-recorder probes must use the zero-cost valois_trace::probe! \
                  macro, never a direct valois_trace::record call",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "refcount-balance",
        summary: "dataflow proof that every count acquired by safe_read/alloc is \
                  released, transferred via raw-pointer return, or covered by a \
                  // COUNT: contract on every path",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "order-pairing",
        summary: "an atomic location written with Release must also be read with \
                  Acquire somewhere in the workspace (and vice versa), or carry an \
                  // ORDER: justification",
        severity: Severity::Warning,
    },
    RuleInfo {
        id: "seqcst-fence",
        summary: "a SeqCst fence or atomic op needs an adjacent // ORDER: comment; \
                  fences additionally need an // INVARIANT: I<n> cross-reference",
        severity: Severity::Warning,
    },
    RuleInfo {
        id: "invariant-ref",
        summary: "every // INVARIANT: I<n> reference must resolve to an invariant \
                  actually defined in docs/PROTOCOL.md",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "protection-window",
        summary: "dataflow proof that no counted node pointer is dereferenced (or \
                  passed to a deref-ing callee) after its protecting count was \
                  consumed — the I11 protection window",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "guard-contract",
        summary: "an unsafe fn dereferencing a raw-pointer parameter must declare \
                  the caller's obligation with a // GUARD: contract, and contracts \
                  must name real raw-pointer parameters",
        severity: Severity::Warning,
    },
];

/// Looks up a rule's metadata by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Long-form documentation for one rule, printed by
/// `cargo xtask analyze --explain <rule-id>` so CI findings are
/// self-documenting.
#[derive(Debug, Clone, Copy)]
pub struct RuleDoc {
    /// The rule this documents (must match a [`RULES`] entry).
    pub id: &'static str,
    /// Why the rule exists, in terms of the §5 protocol.
    pub rationale: &'static str,
    /// A minimal violating snippet (mirrors a seeded fixture).
    pub bad: &'static str,
    /// The corrected form.
    pub good: &'static str,
}

/// One doc per registered rule, same order as [`RULES`].
pub const RULE_DOCS: &[RuleDoc] = &[
    RuleDoc {
        id: "shim-import",
        rationale: "All atomics must route through valois_sync::shim so that \
                    `--cfg loom` builds swap in the model-checking scheduler. A \
                    direct std::sync::atomic import compiles fine but silently \
                    escapes every loom model.",
        bad: "use std::sync::atomic::AtomicPtr;",
        good: "use valois_sync::shim::AtomicPtr;",
    },
    RuleDoc {
        id: "relaxed-ptr-order",
        rationale: "A Relaxed load/store on a pointer-valued atomic publishes no \
                    happens-before edge, so the pointee's initialization may not \
                    be visible to the reader. Pointer atomics default to \
                    Acquire/Release; a deliberate Relaxed needs an adjacent \
                    // ORDER: comment saying why it is safe.",
        bad: "let p = self.head.load(Ordering::Relaxed);",
        good: "// ORDER: Relaxed is fine: the value is re-validated under\n\
               // the subsequent Acquire CAS before any deref.\n\
               let p = self.head.load(Ordering::Relaxed);",
    },
    RuleDoc {
        id: "unsafe-comment",
        rationale: "Every unsafe block/fn/impl encodes a proof obligation the \
                    compiler cannot check. The // SAFETY: comment (or # Safety \
                    doc section) records that proof where the audit happens.",
        bad: "let k = unsafe { (*p).key };",
        good: "// SAFETY: p was acquired via safe_read and not yet released,\n\
               // so the §5 window keeps the node alive.\n\
               let k = unsafe { (*p).key };",
    },
    RuleDoc {
        id: "refcount-pairing",
        rationale: "Token-level sanity check (the dataflow refcount-balance pass \
                    is the strong version): a fn calling safe_read/alloc must \
                    also call release, return a raw pointer (transfer), or carry \
                    a // COUNT: justification, otherwise counts leak.",
        bad: "fn peek(&self) -> u64 {\n    let p = self.arena.safe_read(&self.head);\n    unsafe { (*p).key }\n}",
        good: "fn peek(&self) -> u64 {\n    let p = self.arena.safe_read(&self.head);\n    let k = unsafe { (*p).key };\n    unsafe { self.arena.release(p) };\n    k\n}",
    },
    RuleDoc {
        id: "cas-progress",
        rationale: "A bare CAS retry loop livelocks under contention. Loops must \
                    invoke valois_sync::Backoff (or justify wait-freedom with \
                    // WAIT-FREE:) so contended threads yield instead of \
                    hammering the cache line.",
        bad: "loop {\n    if head.compare_exchange(old, new, AcqRel, Acquire).is_ok() { break; }\n}",
        good: "let mut backoff = Backoff::new();\nloop {\n    if head.compare_exchange(old, new, AcqRel, Acquire).is_ok() { break; }\n    backoff.spin();\n}",
    },
    RuleDoc {
        id: "spin-guard",
        rationale: "Holding a spinlock guard across a call into the lock-free \
                    protocol layer reintroduces blocking: a preempted holder \
                    stalls every protocol participant spinning on the lock.",
        bad: "let g = self.lock.lock();\nself.list.try_insert(cursor, node);",
        good: "{\n    let g = self.lock.lock();\n    // ... touch only the locked state ...\n}\nself.list.try_insert(cursor, node);",
    },
    RuleDoc {
        id: "probe-discipline",
        rationale: "The flight recorder's zero-cost guarantee lives in the \
                    probe! macro, whose argument expressions compile away when \
                    the `recorder` feature is off. A direct valois_trace::record \
                    call evaluates its arguments unconditionally on the hot path.",
        bad: "valois_trace::record(Event::CursorHop, p as usize);",
        good: "probe!(CursorHop, p as usize);",
    },
    RuleDoc {
        id: "refcount-balance",
        rationale: "Dataflow (may-leak) proof over the per-fn CFG: every count \
                    acquired by safe_read/safe_read_tallied/alloc must on every \
                    path be released, transferred via raw-pointer return, \
                    consumed by a summarized callee, or covered by a // COUNT: \
                    contract. A leaked count pins the node forever (I1).",
        bad: "fn find(&self) -> bool {\n    let p = self.arena.safe_read(&self.head);\n    if unsafe { (*p).key } == 0 {\n        return true; // leaks p's count\n    }\n    unsafe { self.arena.release(p) };\n    false\n}",
        good: "fn find(&self) -> bool {\n    let p = self.arena.safe_read(&self.head);\n    let hit = unsafe { (*p).key } == 0;\n    unsafe { self.arena.release(p) };\n    hit\n}",
    },
    RuleDoc {
        id: "order-pairing",
        rationale: "A Release store synchronizes only with an Acquire load of \
                    the same location; an unpaired side publishes (or observes) \
                    nothing and usually marks a missing or misplaced ordering.",
        bad: "self.ready.store(1, Ordering::Release);\n// elsewhere: self.ready.load(Ordering::Relaxed)",
        good: "self.ready.store(1, Ordering::Release);\n// elsewhere: self.ready.load(Ordering::Acquire)",
    },
    RuleDoc {
        id: "seqcst-fence",
        rationale: "SeqCst is the most expensive ordering and almost always \
                    stronger than needed; each use must say what total order it \
                    buys (// ORDER:), and fences must cite the PROTOCOL.md \
                    invariant (// INVARIANT: I<n>) whose dichotomy argument \
                    they implement.",
        bad: "fence(Ordering::SeqCst);",
        good: "// ORDER: SeqCst fence pairs with the remover's fence so one of\n\
               // the two racing passes must see the other's write.\n\
               // INVARIANT: I8\n\
               fence(Ordering::SeqCst);",
    },
    RuleDoc {
        id: "invariant-ref",
        rationale: "// INVARIANT: I<n> comments are machine-checked \
                    cross-references into docs/PROTOCOL.md; a stale number \
                    points the next reader at the wrong (or a deleted) proof.",
        bad: "// INVARIANT: I99\nfence(Ordering::SeqCst);",
        good: "// INVARIANT: I8\nfence(Ordering::SeqCst);",
    },
    RuleDoc {
        id: "protection-window",
        rationale: "The §5 scheme is only sound while a deref sits inside its \
                    protection window: after release consumes the protecting \
                    count the node may be reclaimed and reused at any moment \
                    (use-after-free / ABA). The pass tracks provenance \
                    (Protected/Parked/Released/Moved) of every counted pointer \
                    through the CFG — a parked deferred release is still live; \
                    the drain is the kill — and reports any deref or \
                    deref-ing-callee pass reachable after the kill on some path \
                    (invariant I11).",
        bad: "let h = self.arena.safe_read(&self.head);\nunsafe { self.arena.release(h) };\nlet k = unsafe { (*h).key }; // window closed",
        good: "let h = self.arena.safe_read(&self.head);\nlet k = unsafe { (*h).key };\nunsafe { self.arena.release(h) }; // deref precedes the kill",
    },
    RuleDoc {
        id: "guard-contract",
        rationale: "Interprocedural protection checking needs the obligation \
                    stated at the boundary: an unsafe fn that derefs a \
                    raw-pointer parameter must declare // GUARD: <param> so \
                    every call site is checked for a live window. A contract \
                    naming a non-parameter is stale and checks nothing.",
        bad: "unsafe fn key_of(&self, p: *mut Node) -> u64 {\n    (*p).key\n}",
        good: "// GUARD: p — caller holds a count on p for the call's duration.\nunsafe fn key_of(&self, p: *mut Node) -> u64 {\n    (*p).key\n}",
    },
];

/// Looks up a rule's long-form doc by id.
pub fn rule_doc(id: &str) -> Option<&'static RuleDoc> {
    RULE_DOCS.iter().find(|d| d.id == id)
}

/// Renders one rule's doc for `--explain` (None for unknown ids).
pub fn render_explain(id: &str) -> Option<String> {
    let info = rule_info(id)?;
    let doc = rule_doc(id)?;
    let mut out = String::new();
    out.push_str(&format!("{} ({})\n", info.id, info.severity));
    out.push_str(&format!("  {}\n\n", info.summary));
    out.push_str("Rationale:\n");
    for line in doc.rationale.split('\n') {
        out.push_str(&format!("  {}\n", line.trim()));
    }
    out.push_str("\nViolation:\n");
    for line in doc.bad.split('\n') {
        out.push_str(&format!("  | {line}\n"));
    }
    out.push_str("\nFixed:\n");
    for line in doc.good.split('\n') {
        out.push_str(&format!("  | {line}\n"));
    }
    Some(out)
}

/// Escapes `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Plain-text rendering, one finding per line (the CI log format).
/// Related locations follow as indented `note:` lines.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
        for r in &f.related {
            out.push_str(&format!("    note: {}:{}: {}\n", r.file, r.line, r.note));
        }
    }
    out
}

/// Compact JSON rendering: `{"findings": [...], "counts": {...}}`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let related = if f.related.is_empty() {
            String::new()
        } else {
            let items: Vec<String> = f
                .related
                .iter()
                .map(|r| {
                    format!(
                        "{{\"file\": \"{}\", \"line\": {}, \"note\": \"{}\"}}",
                        json_escape(&r.file),
                        r.line,
                        json_escape(&r.note)
                    )
                })
                .collect();
            format!(", \"related\": [{}]", items.join(", "))
        };
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"message\": \"{}\"{}}}{}\n",
            json_escape(f.rule),
            f.severity,
            json_escape(&f.file),
            f.line,
            json_escape(&f.message),
            related,
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    let warnings = findings.len() - errors;
    out.push_str(&format!(
        "  ],\n  \"counts\": {{\"errors\": {errors}, \"warnings\": {warnings}}}\n}}\n"
    ));
    out
}

/// SARIF 2.1.0 rendering, suitable for GitHub code-scanning upload: one
/// run, one driver (`valois-analyze`), rule metadata from [`RULES`], one
/// result per finding with a physical location.
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \"name\": \"valois-analyze\",\n          \"informationUri\": \"https://example.com/valois\",\n          \"rules\": [\n",
    );
    for (i, r) in RULES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
             \"defaultConfiguration\": {{\"level\": \"{}\"}}}}{}\n",
            json_escape(r.id),
            json_escape(r.summary),
            r.severity.sarif_level(),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let related = if f.related.is_empty() {
            String::new()
        } else {
            let items: Vec<String> = f
                .related
                .iter()
                .enumerate()
                .map(|(id, r)| {
                    format!(
                        "{{\"id\": {}, \"physicalLocation\": {{\"artifactLocation\": \
                         {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}, \
                         \"message\": {{\"text\": \"{}\"}}}}",
                        id,
                        json_escape(&r.file.replace('\\', "/")),
                        r.line,
                        json_escape(&r.note)
                    )
                })
                .collect();
            format!(", \"relatedLocations\": [{}]", items.join(", "))
        };
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"{}\", \"message\": {{\"text\": \"{}\"}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}]{}}}{}\n",
            json_escape(f.rule),
            f.severity.sarif_level(),
            json_escape(&f.message),
            json_escape(&f.file.replace('\\', "/")),
            f.line,
            related,
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                rule: "unsafe-comment",
                severity: Severity::Warning,
                file: "crates/core/src/list.rs".into(),
                line: 42,
                message: "unsafe block without `// SAFETY:`".into(),
                related: vec![],
            },
            Finding {
                rule: "shim-import",
                severity: Severity::Error,
                file: "src/lib.rs".into(),
                line: 7,
                message: "direct \"std::sync::atomic\" import".into(),
                related: vec![Related {
                    file: "src/lib.rs".into(),
                    line: 3,
                    note: "shim re-export is here".into(),
                }],
            },
        ]
    }

    #[test]
    fn text_lists_one_finding_per_line() {
        let t = render_text(&sample());
        assert_eq!(t.lines().count(), 3);
        assert!(t.contains("crates/core/src/list.rs:42"));
        assert!(t.contains("    note: src/lib.rs:3: shim re-export is here"));
    }

    #[test]
    fn json_escapes_quotes_and_counts() {
        let j = render_json(&sample());
        assert!(j.contains("\\\"std::sync::atomic\\\""));
        assert!(j.contains("\"errors\": 1"));
        assert!(j.contains("\"warnings\": 1"));
    }

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let s = render_sarif(&sample());
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"valois-analyze\""));
        for r in RULES {
            assert!(s.contains(&format!("\"id\": \"{}\"", r.id)), "{}", r.id);
        }
        assert!(s.contains("\"startLine\": 42"));
        assert!(s.contains("\"level\": \"error\""));
    }

    #[test]
    fn sarif_of_empty_findings_is_valid_shape() {
        let s = render_sarif(&[]);
        assert!(s.contains("\"results\": [\n      ]"));
    }

    #[test]
    fn every_rule_id_is_unique() {
        for (i, a) in RULES.iter().enumerate() {
            for b in &RULES[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
    }

    #[test]
    fn every_rule_has_exactly_one_explain_doc() {
        for r in RULES {
            assert!(rule_doc(r.id).is_some(), "missing RuleDoc for {}", r.id);
        }
        for d in RULE_DOCS {
            assert!(
                rule_info(d.id).is_some(),
                "RuleDoc for unknown rule {}",
                d.id
            );
        }
        assert_eq!(RULES.len(), RULE_DOCS.len());
    }

    #[test]
    fn explain_renders_id_rationale_and_examples() {
        let text = render_explain("protection-window").expect("known rule");
        assert!(text.contains("protection-window (error)"));
        assert!(text.contains("Rationale:"));
        assert!(text.contains("Violation:"));
        assert!(text.contains("Fixed:"));
        assert!(render_explain("no-such-rule").is_none());
    }
}
