//! Refcount-balance dataflow over the per-function CFG.
//!
//! The §5 protocol's central obligation: every count acquired by
//! `safe_read`/`safe_read_tallied`/`alloc` is eventually released
//! (`release` and friends), transferred to the caller (the raw-pointer
//! return convention), or transferred into the structure (stored through
//! a place expression) — on *every* path. This module proves the
//! obligation per function with a forward may-leak analysis:
//!
//! * **State** maps local names to `Held` (holds a count on every path
//!   to here) or `Mixed` (holds one on at least one path), remembering
//!   the acquire line for diagnostics. Absent = no count.
//! * **Transfer** interprets each [`Stmt`](crate::cfg::Stmt) by token
//!   scan: consume calls drop state, acquires bind it to the statement's
//!   sink, single-identifier binds are *moves* (raw pointers are `Copy`,
//!   but the workspace idiom treats `t = next` as handing the count
//!   over — the old name is no longer released), place-stores transfer
//!   into the structure, null-constant binds kill (null carries no
//!   count, Fig. 17's `Release` no-ops on it).
//! * **Guards** on CFG edges kill along `is_null` branches.
//! * **Calls** consume through the workspace call graph: a function
//!   summarized as releasing its `i`-th raw-pointer parameter consumes
//!   the tracked argument at that position (see [`Summaries`]).
//! * `// COUNT:` comments are *contracts*, not mute buttons: a blessed
//!   statement exempts its acquisition, and a function-level
//!   `// COUNT: ... transfers to caller ...` is checked against the
//!   signature — declaring a transfer without a raw-pointer return is
//!   itself an error.
//!
//! Fixpoint first, findings second: the worklist runs to convergence,
//! then one reporting sweep over reachable blocks (so loop iterations do
//! not duplicate findings).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::cfg::{Cfg, Guard, Stmt, StmtKind};
use crate::lexer::{Delim, TokKind};
use crate::source::SourceFile;
use crate::syntax::{Ast, FnDef};

/// Calls that acquire a counted reference.
pub const ACQUIRES: &[&str] = &["safe_read", "safe_read_tallied", "alloc"];

/// Calls that consume (release or hand off) a counted reference passed
/// as an argument. `swing`/`store_link` are deliberately absent: they
/// *publish* a pointer but the workspace always releases the local
/// explicitly afterwards — counting them as consumers would hide leaks.
pub const CONSUMES: &[&str] = &[
    "release",
    "release_into",
    "release_deferred",
    "drain_deferred",
    "reclaim_detached",
    "push_free",
    "push_free_global",
    "splice_free_global",
    // Backend-neutral process-reference forms (refcount: decrement;
    // epoch: no-op — the count being balanced is the refcount arm's).
    "unprotect",
    "unprotect_deferred",
];

/// The synthetic variable holding a count acquired by a match scrutinee
/// while the arms decide where it binds.
const SCRUT: &str = "#scrut";

/// Workspace call-graph consumption summaries: function name → indices of
/// raw-pointer parameters (receiver excluded) that the body releases.
#[derive(Debug, Default)]
pub struct Summaries {
    consumed: BTreeMap<String, BTreeSet<usize>>,
}

impl Summaries {
    /// Builds summaries from every parsed file. A parameter is
    /// "consumed" when a [`CONSUMES`] call anywhere in the body mentions
    /// it as an argument — an any-path approximation, which is the right
    /// polarity: a summary only ever *removes* a leak report.
    pub fn build<'a>(units: impl IntoIterator<Item = (&'a SourceFile, &'a Ast)>) -> Summaries {
        let mut consumed: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
        for (file, ast) in units {
            for def in &ast.fns {
                let Some((open, close)) = def.item.body else {
                    continue;
                };
                for (idx, param) in def.params.iter().enumerate() {
                    let (Some(name), true) = (&param.name, param.raw_ptr) else {
                        continue;
                    };
                    let released = calls_in(file, open + 1, close, CONSUMES)
                        .into_iter()
                        .any(|c| (c.open + 1..c.close).any(|i| file.toks[i].is_ident(name)));
                    if released {
                        consumed
                            .entry(def.item.name.clone())
                            .or_default()
                            .insert(idx);
                    }
                }
            }
        }
        Summaries { consumed }
    }

    /// Consumed parameter indices of `name`, if summarized.
    pub fn consumed_params(&self, name: &str) -> Option<&BTreeSet<usize>> {
        self.consumed.get(name)
    }
}

/// Tracked state of one local.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Var {
    /// Held on some-but-not-all paths.
    mixed: bool,
    /// Line of the (earliest) acquisition, for diagnostics.
    line: usize,
}

type State = BTreeMap<String, Var>;

/// One dataflow finding, rule-agnostic (the pass assigns the rule id).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FlowFinding {
    /// Primary line.
    pub line: usize,
    /// Message.
    pub message: String,
    /// Related locations: `(line, note)` pairs (e.g. the acquire site).
    pub related: Vec<(usize, String)>,
}

/// A call site in a token range.
struct Call {
    name_idx: usize,
    open: usize,
    close: usize,
}

/// Calls to any of `names` inside `[lo, hi)`.
fn calls_in(file: &SourceFile, lo: usize, hi: usize, names: &[&str]) -> Vec<Call> {
    let mut out = Vec::new();
    for i in lo..hi.min(file.toks.len()) {
        let t = &file.toks[i];
        if t.kind != TokKind::Ident || !names.iter().any(|n| t.is_ident(n)) {
            continue;
        }
        let Some(n) = file.next_sig(i) else { continue };
        if file.toks[n].kind != TokKind::Open(Delim::Paren) {
            continue;
        }
        out.push(Call {
            name_idx: i,
            open: n,
            close: file.partner[n].unwrap_or(n),
        });
    }
    out
}

/// All calls (`ident (`) inside `[lo, hi)`.
fn all_calls(file: &SourceFile, lo: usize, hi: usize) -> Vec<Call> {
    let mut out = Vec::new();
    for i in lo..hi.min(file.toks.len()) {
        if file.toks[i].kind != TokKind::Ident {
            continue;
        }
        let Some(n) = file.next_sig(i) else { continue };
        if file.toks[n].kind != TokKind::Open(Delim::Paren) {
            continue;
        }
        out.push(Call {
            name_idx: i,
            open: n,
            close: file.partner[n].unwrap_or(n),
        });
    }
    out
}

/// Splits a call's argument list `[open+1, close)` at depth-0 commas.
fn split_args(file: &SourceFile, open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut args = Vec::new();
    let mut start = open + 1;
    let mut i = open + 1;
    while i < close {
        match file.toks[i].kind {
            TokKind::Open(_) => {
                i = file.partner[i].map(|p| p + 1).unwrap_or(i + 1);
                continue;
            }
            TokKind::Punct if file.toks[i].text == "," => {
                args.push((start, i));
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if start < close {
        args.push((start, close));
    }
    args
}

/// Analysis driver for one function.
pub struct FlowAnalysis<'a> {
    file: &'a SourceFile,
    def: &'a FnDef,
    summaries: &'a Summaries,
    /// Return type carries a raw pointer (the transfer convention).
    ret_raw: bool,
    /// Function-level `// COUNT:` blessing.
    fn_blessed: bool,
}

/// Whether the fn's leading comments carry a `// COUNT:` contract, and
/// its text if so. Only the contract's own comment run is returned: the
/// line containing `COUNT:` plus plain-comment continuation lines up to
/// the next marker or doc comment — a doc paragraph that merely mentions
/// "the caller" must not leak into the contract text.
pub fn fn_count_contract(file: &SourceFile, def: &FnDef) -> Option<String> {
    let start = file.item_start(def.item.fn_idx);
    let comments = file.leading_item_comments(start);
    let first = comments.iter().position(|t| t.text.contains("COUNT:"))?;
    let mut text = String::new();
    for t in &comments[first..] {
        let is_continuation = text.is_empty()
            || (!t.text.starts_with("///")
                && !["SAFETY:", "ORDER:", "WAIT-FREE:", "INVARIANT:"]
                    .iter()
                    .any(|m| t.text.contains(m)));
        if !is_continuation {
            break;
        }
        text.push_str(&t.text);
        text.push(' ');
    }
    Some(text)
}

impl<'a> FlowAnalysis<'a> {
    /// Prepares the analysis of `def`.
    pub fn new(file: &'a SourceFile, def: &'a FnDef, summaries: &'a Summaries) -> FlowAnalysis<'a> {
        let (rlo, rhi) = def.item.return_type;
        let ret_raw = file.toks[rlo..rhi.min(file.toks.len())]
            .iter()
            .any(|t| t.kind == TokKind::Punct && t.text == "*");
        FlowAnalysis {
            file,
            def,
            summaries,
            ret_raw,
            fn_blessed: fn_count_contract(file, def).is_some(),
        }
    }

    /// Runs the fixpoint + reporting sweep over `cfg`.
    pub fn run(&self, cfg: &Cfg) -> Vec<FlowFinding> {
        // Fixpoint.
        let mut ins: Vec<Option<State>> = vec![None; cfg.blocks.len()];
        ins[cfg.entry] = Some(State::new());
        let mut work: VecDeque<usize> = VecDeque::from([cfg.entry]);
        let mut iters = 0usize;
        while let Some(b) = work.pop_front() {
            // Defensive bound: the lattice is finite so this terminates,
            // but a linter must not hang on adversarial input.
            iters += 1;
            if iters > 64 * cfg.blocks.len() + 1024 {
                break;
            }
            let Some(state) = ins[b].clone() else {
                continue;
            };
            let out = self.transfer(&cfg.blocks[b].stmts, state, None);
            for edge in &cfg.blocks[b].succs {
                let mut s = out.clone();
                apply_guard(&mut s, &edge.guard);
                let merged = match &ins[edge.to] {
                    None => s,
                    Some(prev) => merge(prev, &s),
                };
                if ins[edge.to].as_ref() != Some(&merged) {
                    ins[edge.to] = Some(merged);
                    if !work.contains(&edge.to) {
                        work.push_back(edge.to);
                    }
                }
            }
        }
        // Reporting sweep.
        let mut findings: BTreeSet<FlowFinding> = BTreeSet::new();
        for (b, input) in ins.iter().enumerate() {
            let Some(state) = input else { continue };
            if b == cfg.exit {
                continue;
            }
            self.transfer(&cfg.blocks[b].stmts, state.clone(), Some(&mut findings));
        }
        // Exit leaks.
        if let Some(exit_state) = &ins[cfg.exit] {
            for (name, var) in exit_state {
                let shown = display_name(name);
                let paths = if var.mixed {
                    "at least one path through"
                } else {
                    "every path through"
                };
                findings.insert(FlowFinding {
                    line: var.line,
                    message: format!(
                        "counted reference in {shown} (acquired here) is leaked on \
                         {paths} fn `{}`: no release, no raw-pointer transfer, and no \
                         `// COUNT:` contract on the acquiring statement",
                        self.def.item.name
                    ),
                    related: vec![(var.line, format!("{shown} acquires its count here"))],
                });
            }
        }
        findings.into_iter().collect()
    }

    /// Interprets one block's statements. When `findings` is given, the
    /// sweep also reports (fixpoint passes leave it `None`).
    fn transfer(
        &self,
        stmts: &[Stmt],
        mut state: State,
        mut findings: Option<&mut BTreeSet<FlowFinding>>,
    ) -> State {
        for stmt in stmts {
            self.step(stmt, &mut state, findings.as_deref_mut());
        }
        state
    }

    fn step(
        &self,
        stmt: &Stmt,
        state: &mut State,
        mut findings: Option<&mut BTreeSet<FlowFinding>>,
    ) {
        let (lo, hi) = stmt.range;
        if matches!(stmt.kind, StmtKind::ArmOpen) {
            self.arm_open(stmt, state);
            return;
        }
        // 1. Consumption: release-family calls and summarized callees.
        self.consume_calls(lo, hi, state);
        // 2. Acquisition + value flow by sink.
        let acquires = calls_in(self.file, lo, hi, ACQUIRES);
        let acq_line = acquires.first().map(|c| self.file.toks[c.name_idx].line);
        let acq_name = acquires
            .first()
            .map(|c| self.file.toks[c.name_idx].text.clone());
        match &stmt.kind {
            StmtKind::Expr => {
                if let (Some(line), Some(name)) = (acq_line, &acq_name) {
                    if !stmt.blessed {
                        self.report(
                            &mut findings,
                            line,
                            format!(
                                "count acquired by `{name}` is discarded: the value is \
                                 neither bound, released, nor covered by a `// COUNT:` \
                                 contract"
                            ),
                            vec![],
                        );
                    }
                }
            }
            StmtKind::Bind(target) => {
                let key = target.clone().unwrap_or_else(|| "#destructured".into());
                if let Some(line) = acq_line {
                    self.rebind_check(&key, stmt, state, &mut findings);
                    if stmt.blessed {
                        state.remove(&key);
                    } else {
                        state.insert(key, Var { mixed: false, line });
                    }
                } else if let Some(moved) = self.single_tracked_ident(lo, hi, state) {
                    if moved != key {
                        self.rebind_check(&key, stmt, state, &mut findings);
                        let var = state.remove(&moved).expect("checked tracked");
                        if stmt.blessed {
                            // Contract: the comment says where it goes.
                        } else {
                            state.insert(key, var);
                        }
                    }
                } else {
                    // Overwritten with an untracked (or null) value.
                    self.rebind_check(&key, stmt, state, &mut findings);
                    state.remove(&key);
                }
            }
            StmtKind::PlaceBind => {
                // Transfer into the structure: acquires are committed,
                // tracked locals mentioned on the RHS are handed over.
                for name in self.tracked_idents(lo, hi, state) {
                    state.remove(&name);
                }
            }
            StmtKind::Scrut => {
                if let Some(line) = acq_line {
                    self.rebind_check(SCRUT, stmt, state, &mut findings);
                    if stmt.blessed {
                        state.remove(SCRUT);
                    } else {
                        state.insert(SCRUT.into(), Var { mixed: false, line });
                    }
                }
            }
            StmtKind::Return => {
                let ok = self.ret_raw || self.fn_blessed || stmt.blessed;
                for name in self.tracked_idents(lo, hi, state) {
                    let var = state.remove(&name).expect("tracked");
                    if !ok {
                        self.report(
                            &mut findings,
                            stmt.line,
                            format!(
                                "`{name}` holds a counted reference (acquired at line {}) \
                                 but escapes through a return type with no raw pointer; \
                                 the §5 transfer convention needs a raw-pointer return \
                                 or a `// COUNT:` contract",
                                var.line
                            ),
                            vec![(var.line, format!("`{name}` acquires its count here"))],
                        );
                    }
                }
                if let Some(line) = acq_line {
                    if !ok {
                        self.report(
                            &mut findings,
                            line,
                            "count acquired in return position escapes through a \
                             return type with no raw pointer; add `// COUNT:` or \
                             return the raw pointer"
                                .into(),
                            vec![],
                        );
                    }
                }
            }
            StmtKind::ArmOpen => unreachable!("handled above"),
        }
    }

    /// Match-arm entry: routes the pending scrutinee count through the
    /// pattern. `Err`/`None` arms carry no count (the acquire failed);
    /// other arms move it into the first lowercase binding identifier.
    fn arm_open(&self, stmt: &Stmt, state: &mut State) {
        let (lo, hi) = stmt.range;
        let mut sig: Vec<usize> = (lo..hi.min(self.file.toks.len()))
            .filter(|&i| !self.file.toks[i].is_comment())
            .collect();
        // Cut at an `if` guard: its condition identifiers are not bindings.
        if let Some(p) = sig.iter().position(|&i| self.file.toks[i].is_ident("if")) {
            sig.truncate(p);
        }
        let first = sig
            .iter()
            .find(|&&i| self.file.toks[i].kind == TokKind::Ident);
        let Some(&first) = first else { return };
        let head = self.file.toks[first].text.as_str();
        if head == "Err" || head == "None" {
            state.remove(SCRUT);
            return;
        }
        if !state.contains_key(SCRUT) {
            return;
        }
        let binding = sig.iter().find(|&&i| {
            let t = &self.file.toks[i];
            t.kind == TokKind::Ident
                && t.text != "_"
                && !t.is_ident("mut")
                && !t.is_ident("ref")
                && t.text.chars().next().is_some_and(|c| c.is_lowercase())
        });
        let var = state.remove(SCRUT).expect("checked present");
        if let Some(&b) = binding {
            state.insert(self.file.toks[b].text.clone(), var);
        } else {
            // No binding (`_ => ..`, unit variant): the count is dropped
            // in this arm — keep it pending so it surfaces as a leak.
            state.insert(SCRUT.into(), var);
        }
    }

    fn rebind_check(
        &self,
        key: &str,
        stmt: &Stmt,
        state: &State,
        findings: &mut Option<&mut BTreeSet<FlowFinding>>,
    ) {
        if stmt.blessed {
            return;
        }
        if let Some(var) = state.get(key) {
            if !var.mixed {
                self.report(
                    findings,
                    stmt.line,
                    format!(
                        "{} is rebound while still holding a counted reference \
                         (acquired at line {}); the old count leaks",
                        display_name(key),
                        var.line
                    ),
                    vec![(var.line, "previous count acquired here".into())],
                );
            }
        }
    }

    /// Applies consumption from [`CONSUMES`] calls and summarized callees.
    fn consume_calls(&self, lo: usize, hi: usize, state: &mut State) {
        for call in all_calls(self.file, lo, hi) {
            let name = self.file.toks[call.name_idx].text.as_str();
            if CONSUMES.contains(&name) {
                for name in self.tracked_idents(call.open + 1, call.close, state) {
                    state.remove(&name);
                }
            } else if let Some(positions) = self.summaries.consumed_params(name) {
                let args = split_args(self.file, call.open, call.close);
                for &p in positions {
                    if let Some(&(alo, ahi)) = args.get(p) {
                        for name in self.tracked_idents(alo, ahi, state) {
                            state.remove(&name);
                        }
                    }
                }
            }
        }
    }

    /// Tracked variable names mentioned as identifiers in `[lo, hi)`.
    fn tracked_idents(&self, lo: usize, hi: usize, state: &State) -> Vec<String> {
        let mut out = Vec::new();
        for i in lo..hi.min(self.file.toks.len()) {
            let t = &self.file.toks[i];
            if t.kind == TokKind::Ident && state.contains_key(&t.text) && !out.contains(&t.text) {
                out.push(t.text.clone());
            }
        }
        out
    }

    /// If the significant tokens of `[lo, hi)` are exactly one tracked
    /// identifier, returns it (a move).
    fn single_tracked_ident(&self, lo: usize, hi: usize, state: &State) -> Option<String> {
        let sig: Vec<usize> = (lo..hi.min(self.file.toks.len()))
            .filter(|&i| !self.file.toks[i].is_comment())
            .collect();
        match sig.as_slice() {
            [i] => {
                let t = &self.file.toks[*i];
                (t.kind == TokKind::Ident && state.contains_key(&t.text)).then(|| t.text.clone())
            }
            _ => None,
        }
    }

    fn report(
        &self,
        findings: &mut Option<&mut BTreeSet<FlowFinding>>,
        line: usize,
        message: String,
        related: Vec<(usize, String)>,
    ) {
        if let Some(f) = findings {
            f.insert(FlowFinding {
                line,
                message,
                related,
            });
        }
    }
}

/// Human name for a tracked key.
fn display_name(key: &str) -> String {
    match key {
        SCRUT => "the match scrutinee's value".to_string(),
        "#destructured" => "the destructured value".to_string(),
        _ => format!("`{key}`"),
    }
}

fn apply_guard(state: &mut State, guard: &Guard) {
    if let Guard::Null(name) = guard {
        // A null pointer carries no count: Release(null) is a no-op.
        state.remove(name);
    }
}

fn merge(a: &State, b: &State) -> State {
    let mut out = State::new();
    for (k, va) in a {
        match b.get(k) {
            Some(vb) => {
                out.insert(
                    k.clone(),
                    Var {
                        mixed: va.mixed || vb.mixed,
                        line: va.line.min(vb.line),
                    },
                );
            }
            None => {
                out.insert(
                    k.clone(),
                    Var {
                        mixed: true,
                        line: va.line,
                    },
                );
            }
        }
    }
    for (k, vb) in b {
        if !a.contains_key(k) {
            out.insert(
                k.clone(),
                Var {
                    mixed: true,
                    line: vb.line,
                },
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cfg, syntax};

    fn analyze(src: &str) -> Vec<FlowFinding> {
        analyze_named(src, 0)
    }

    fn analyze_named(src: &str, fn_index: usize) -> Vec<FlowFinding> {
        let file = SourceFile::parse("t.rs", src);
        let ast = syntax::parse(&file);
        let summaries = Summaries::build([(&file, &ast)]);
        let def = &ast.fns[fn_index];
        let cfg = cfg::build(&file, def).expect("body");
        FlowAnalysis::new(&file, def, &summaries).run(&cfg)
    }

    #[test]
    fn balanced_traversal_is_clean() {
        let src = "fn f(&self) {\n\
            let mut t = self.arena.safe_read(&self.head);\n\
            loop {\n\
                let next = self.arena.safe_read(&(*t).next);\n\
                if next.is_null() { break; }\n\
                self.arena.release(t);\n\
                t = next;\n\
            }\n\
            self.arena.release(t);\n\
        }";
        assert_eq!(analyze(src), vec![]);
    }

    #[test]
    fn early_return_leak_is_reported() {
        let src = "fn f(&self) -> bool {\n\
            let h = self.arena.safe_read(&self.head);\n\
            if self.stopped() { return false; }\n\
            self.arena.release(h);\n\
            true\n\
        }";
        let findings = analyze(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`h`"));
        assert!(findings[0].message.contains("at least one path"));
    }

    #[test]
    fn branch_divergence_leak_is_reported() {
        let src = "fn f(&self) {\n\
            let h = self.arena.safe_read(&self.head);\n\
            if self.fast_path() {\n\
                self.arena.release(h);\n\
            } else {\n\
                self.note_slow();\n\
            }\n\
        }";
        let findings = analyze(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("at least one path"));
    }

    #[test]
    fn raw_pointer_return_is_a_transfer() {
        let src = "fn f(&self) -> *mut Node {\n\
            let h = self.arena.safe_read(&self.head);\n\
            h\n\
        }";
        assert_eq!(analyze(src), vec![]);
    }

    #[test]
    fn non_raw_return_escape_is_reported() {
        let src = "fn f(&self) -> Handle {\n\
            let h = self.arena.safe_read(&self.head);\n\
            Handle { cell: h }\n\
        }";
        let findings = analyze(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("transfer convention"));
    }

    #[test]
    fn count_comment_blesses_the_statement() {
        let src = "fn f(&self) -> Handle {\n\
            // COUNT: transfers into the handle; release_handle drops it.\n\
            let h = self.arena.safe_read(&self.head);\n\
            Handle { cell: h }\n\
        }";
        // The acquire is blessed, so `h` is untracked from birth.
        assert_eq!(analyze(src), vec![]);
    }

    #[test]
    fn match_ok_arm_carries_the_count_err_does_not() {
        let src = "fn f(&self) -> Result<(), Error> {\n\
            let cell = match self.arena.alloc() {\n\
                Ok(cell) => cell,\n\
                Err(e) => return Err(e),\n\
            };\n\
            self.arena.release(cell);\n\
            Ok(())\n\
        }";
        assert_eq!(analyze(src), vec![]);
    }

    #[test]
    fn match_arm_leak_is_reported() {
        let src = "fn f(&self) {\n\
            let cell = match self.arena.alloc() {\n\
                Ok(cell) => cell,\n\
                Err(_) => return,\n\
            };\n\
            self.touch(cell);\n\
        }";
        let findings = analyze(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`cell`"));
    }

    #[test]
    fn null_guard_kills_along_null_edge() {
        let src = "fn f(&self) -> Option<u32> {\n\
            let h = self.arena.safe_read(&self.head);\n\
            if h.is_null() { return None; }\n\
            let v = self.read_value(h);\n\
            self.arena.release(h);\n\
            Some(v)\n\
        }";
        assert_eq!(analyze(src), vec![]);
    }

    #[test]
    fn move_transfers_tracking() {
        let src = "fn f(&self) {\n\
            let a = self.arena.safe_read(&self.head);\n\
            let b = a;\n\
            self.arena.release(b);\n\
        }";
        assert_eq!(analyze(src), vec![]);
    }

    #[test]
    fn rebind_while_held_is_reported() {
        let src = "fn f(&self) {\n\
            let mut h = self.arena.safe_read(&self.head);\n\
            h = self.arena.safe_read(&self.tail);\n\
            self.arena.release(h);\n\
        }";
        let findings = analyze(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("rebound"));
    }

    #[test]
    fn field_store_transfers_into_structure() {
        let src = "fn f(&mut self) {\n\
            let h = self.arena.safe_read(&self.head);\n\
            self.cursor = h;\n\
        }";
        assert_eq!(analyze(src), vec![]);
    }

    #[test]
    fn discarded_acquire_is_reported() {
        let src = "fn f(&self) {\n\
            self.arena.safe_read(&self.head);\n\
        }";
        let findings = analyze(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("discarded"));
    }

    #[test]
    fn summarized_callee_consumes_argument() {
        let src = "\
        fn sink(&self, p: *mut Node) { self.arena.release(p); }\n\
        fn f(&self) {\n\
            let h = self.arena.safe_read(&self.head);\n\
            self.sink(h);\n\
        }";
        assert_eq!(analyze_named(src, 1), vec![]);
    }

    #[test]
    fn release_deferred_second_arg_consumes() {
        let src = "fn f(&mut self) {\n\
            let p = self.arena.safe_read(&self.head);\n\
            release_deferred(&mut self.defer, p);\n\
        }";
        assert_eq!(analyze(src), vec![]);
    }

    #[test]
    fn while_loop_with_null_condition_is_clean() {
        let src = "fn f(&self) {\n\
            let mut v = self.arena.safe_read(&self.root);\n\
            while !v.is_null() {\n\
                let next = self.arena.safe_read(&(*v).left);\n\
                self.arena.release(v);\n\
                v = next;\n\
            }\n\
        }";
        assert_eq!(analyze(src), vec![]);
    }
}
