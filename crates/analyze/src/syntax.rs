//! A tolerant recursive-descent parser over the lexed token stream.
//!
//! The token-level passes answer "does this comment sit near that
//! keyword?"-shaped questions; the dataflow passes ([`crate::dataflow`])
//! need more: *which statements follow which*, where branches fork and
//! rejoin, and which expression initializes which binding. This module
//! parses exactly the Rust subset the workspace uses — items, fns,
//! blocks, `let`s, assignments, calls, returns, `match`/`if`,
//! `loop`/`while`/`for`, `unsafe` blocks — into a statement tree over
//! token-index ranges.
//!
//! Design rules:
//!
//! * **Never error.** Anything unrecognized becomes an opaque
//!   [`Node::Leaf`] spanning its statement; the dataflow degrades to the
//!   token-scan the old passes already do. The compiler rejects genuinely
//!   malformed code; the linter must not.
//! * **Ranges, not trees of expressions.** Statement *structure* (the
//!   part control flow depends on) is parsed; expression *interiors* stay
//!   token ranges `[lo, hi)` into [`SourceFile::toks`], scanned by the
//!   consumers. This keeps the parser small enough to audit.
//! * **Nested items are opaque.** A `fn` inside a `fn` parses as
//!   [`Node::Item`] in the outer body (so the outer function's dataflow
//!   does not absorb the inner one's calls) *and* appears as its own
//!   [`FnDef`] in [`Ast::fns`].

use crate::lexer::{Delim, TokKind};
use crate::source::{FnItem, SourceFile};

/// A parsed file: every `fn` (at any nesting depth) with its parameter
/// list and structured body.
#[derive(Debug)]
pub struct Ast {
    /// All function definitions, in source order.
    pub fns: Vec<FnDef>,
}

/// One function: the token-level [`FnItem`] plus parsed params and body.
#[derive(Debug)]
pub struct FnDef {
    /// Signature facts shared with the token-level passes.
    pub item: FnItem,
    /// Parameters in order, receiver (`self`) excluded.
    pub params: Vec<Param>,
    /// Structured body; `None` for bodiless trait-method declarations.
    pub body: Option<Block>,
}

/// One non-receiver function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name; `None` for tuple/struct patterns.
    pub name: Option<String>,
    /// Whether the parameter type mentions a raw pointer (`*`).
    pub raw_ptr: bool,
}

/// A `{ ... }` block: statements in order. When `has_tail` is set the
/// last statement is the block's value (no trailing `;`).
#[derive(Debug, Default)]
pub struct Block {
    /// Statements (and nested control nodes) in source order.
    pub stmts: Vec<Node>,
    /// Whether the final statement is a tail expression.
    pub has_tail: bool,
}

/// One match arm: pattern token range and body.
#[derive(Debug)]
pub struct Arm {
    /// Token range `[lo, hi)` of the pattern (including any `if` guard).
    pub pat: (usize, usize),
    /// Arm body.
    pub body: Box<Node>,
}

/// One statement or statement-position expression.
#[derive(Debug)]
pub enum Node {
    /// Opaque expression statement over token range `[lo, hi)`.
    Leaf {
        /// Range start (inclusive token index).
        lo: usize,
        /// Range end (exclusive token index).
        hi: usize,
    },
    /// `let NAME = init;` — `name` is `None` for destructuring patterns.
    Let {
        /// Binding name for single-identifier patterns.
        name: Option<String>,
        /// Initializer (absent for `let x;`).
        init: Option<Box<Node>>,
        /// Token index of the `let` keyword.
        kw: usize,
        /// End of the statement (exclusive, past the `;`).
        hi: usize,
    },
    /// `PLACE = rhs;` — a top-level assignment (not `==`, not compound).
    Assign {
        /// Token range of the place expression.
        lhs: (usize, usize),
        /// Right-hand side.
        rhs: Box<Node>,
    },
    /// `if cond { .. } else ..` — `alt` is another `If` or a `Blk`.
    If {
        /// Token range of the condition (including `let` patterns).
        cond: (usize, usize),
        /// Then-branch.
        then_blk: Block,
        /// `else` branch, if any.
        alt: Option<Box<Node>>,
    },
    /// A bare `{ .. }` block (also used for `else` blocks).
    Blk(Block),
    /// `match scrutinee { arms }`.
    Match {
        /// Token range of the scrutinee.
        scrutinee: (usize, usize),
        /// Arms in order.
        arms: Vec<Arm>,
        /// Token index of the `match` keyword.
        kw: usize,
    },
    /// `loop { .. }`.
    Loop {
        /// Body.
        body: Block,
        /// Token index of the keyword.
        kw: usize,
    },
    /// `while cond { .. }` (including `while let`).
    While {
        /// Token range of the condition.
        cond: (usize, usize),
        /// Body.
        body: Block,
        /// Token index of the keyword.
        kw: usize,
    },
    /// `for pat in iter { .. }` — head covers `pat in iter`.
    For {
        /// Token range of the loop head.
        head: (usize, usize),
        /// Body.
        body: Block,
        /// Token index of the keyword.
        kw: usize,
    },
    /// `unsafe { .. }` in statement/expression position.
    Unsafe {
        /// Body.
        body: Block,
        /// Token index of the keyword.
        kw: usize,
    },
    /// `return value;` / bare `return;`.
    Return {
        /// Token range of the returned value, if any.
        value: Option<(usize, usize)>,
        /// Token index of the keyword.
        kw: usize,
    },
    /// `break` (label/value tokens, if any, are in the range).
    Break {
        /// Token index of the keyword.
        kw: usize,
    },
    /// `continue`.
    Continue {
        /// Token index of the keyword.
        kw: usize,
    },
    /// A nested item (`fn`, `struct`, `impl`, `mod`, ...) — opaque to the
    /// enclosing function's dataflow.
    Item {
        /// Range start.
        lo: usize,
        /// Range end (exclusive).
        hi: usize,
    },
}

/// Keywords that begin a nested item inside a block.
const ITEM_KWS: &[&str] = &[
    "fn",
    "struct",
    "enum",
    "union",
    "impl",
    "trait",
    "mod",
    "use",
    "static",
    "const",
    "type",
    "macro_rules",
];

/// Items whose body brace terminates the item (no trailing `;` needed).
const BRACE_TERMINATED_KWS: &[&str] = &[
    "fn",
    "struct",
    "enum",
    "union",
    "impl",
    "trait",
    "mod",
    "macro_rules",
];

/// Parses every function in `file`.
pub fn parse(file: &SourceFile) -> Ast {
    let fns = file
        .fn_items()
        .into_iter()
        .map(|item| {
            let params = parse_params(file, &item);
            let body = item
                .body
                .map(|(open, close)| parse_block(file, open + 1, close));
            FnDef { item, params, body }
        })
        .collect();
    Ast { fns }
}

impl Ast {
    /// The parsed definition for the fn whose `fn` keyword is at `fn_idx`.
    pub fn fn_at(&self, fn_idx: usize) -> Option<&FnDef> {
        self.fns.iter().find(|f| f.item.fn_idx == fn_idx)
    }
}

/// Parses the parameter list of `item`: the first paren group after the
/// name at generic-angle depth 0. Tracks `<`/`>` nesting manually (they
/// are plain puncts), treating `->` (inside `Fn(..) -> R` bounds) as a
/// unit so its `>` does not close an angle level.
fn parse_params(file: &SourceFile, item: &FnItem) -> Vec<Param> {
    let Some(name_idx) = file.next_sig(item.fn_idx) else {
        return Vec::new();
    };
    let mut angle = 0i32;
    let mut j = name_idx;
    let mut group = None;
    while let Some(n) = file.next_sig(j) {
        let t = &file.toks[n];
        match t.kind {
            TokKind::Punct if t.text == "<" => angle += 1,
            TokKind::Punct if t.text == ">" => {
                let after_dash = file.prev_sig(n).is_some_and(|p| {
                    file.toks[p].kind == TokKind::Punct && file.toks[p].text == "-"
                });
                if !after_dash {
                    angle -= 1;
                }
            }
            TokKind::Open(Delim::Paren) if angle == 0 => {
                group = Some((n, file.partner[n].unwrap_or(n)));
                break;
            }
            TokKind::Open(Delim::Brace) | TokKind::Close(Delim::Brace) => break,
            TokKind::Open(_) => {
                j = file.partner[n].unwrap_or(n);
                continue;
            }
            TokKind::Punct if t.text == ";" => break,
            _ => {}
        }
        j = n;
    }
    let Some((open, close)) = group else {
        return Vec::new();
    };
    // Split at depth-0 commas; `<`/`>` depth counts too (generic argument
    // lists in parameter types contain commas).
    let mut params = Vec::new();
    let mut start = open + 1;
    let mut angle = 0i32;
    let mut i = open + 1;
    while i <= close {
        let t = &file.toks[i];
        let at_end = i == close;
        let split = at_end || (t.kind == TokKind::Punct && t.text == "," && angle == 0);
        if split {
            if let Some(p) = parse_param(file, start, i) {
                params.push(p);
            }
            start = i + 1;
            i += 1;
            continue;
        }
        match t.kind {
            TokKind::Open(_) => {
                i = file.partner[i].unwrap_or(i) + 1;
                continue;
            }
            TokKind::Punct if t.text == "<" => angle += 1,
            TokKind::Punct if t.text == ">" => {
                let after_dash = file.prev_sig(i).is_some_and(|p| {
                    file.toks[p].kind == TokKind::Punct && file.toks[p].text == "-"
                });
                if !after_dash {
                    angle -= 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    params
}

/// Parses one parameter from the token range `[lo, hi)`. Returns `None`
/// for empty ranges and for the receiver (`self` in any form).
fn parse_param(file: &SourceFile, lo: usize, hi: usize) -> Option<Param> {
    let sig: Vec<(usize, &crate::lexer::Tok)> = (lo..hi)
        .map(|i| (i, &file.toks[i]))
        .filter(|(_, t)| !t.is_comment())
        .collect();
    if sig.is_empty() {
        return None;
    }
    if sig.iter().any(|(_, t)| t.is_ident("self")) {
        return None;
    }
    // Binding name: idents before the top-level `:`, minus `mut`/`ref`.
    let colon = sig
        .iter()
        .position(|(_, t)| t.kind == TokKind::Punct && t.text == ":");
    let pat = &sig[..colon.unwrap_or(sig.len())];
    let names: Vec<&str> = pat
        .iter()
        .filter(|(_, t)| t.kind == TokKind::Ident && !t.is_ident("mut") && !t.is_ident("ref"))
        .map(|(_, t)| t.text.as_str())
        .collect();
    let name = match names.as_slice() {
        [single] => Some((*single).to_string()),
        _ => None,
    };
    let raw_ptr = sig
        .iter()
        .any(|(_, t)| t.kind == TokKind::Punct && t.text == "*");
    Some(Param { name, raw_ptr })
}

/// Parses the statements in the token range `[lo, hi)` (the interior of a
/// brace group).
pub fn parse_block(file: &SourceFile, lo: usize, hi: usize) -> Block {
    let mut stmts = Vec::new();
    let mut has_tail = false;
    let mut pos = lo;
    while pos < hi {
        let t = &file.toks[pos];
        if t.is_comment() {
            pos += 1;
            continue;
        }
        match t.kind {
            TokKind::Punct if t.text == ";" => {
                pos += 1;
                continue;
            }
            // `#[attr]` before a statement or nested item.
            TokKind::Punct if t.text == "#" => {
                if let Some(n) = file.next_sig(pos) {
                    if file.toks[n].kind == TokKind::Open(Delim::Bracket) {
                        pos = file.partner[n].unwrap_or(n) + 1;
                        continue;
                    }
                }
                pos += 1;
                continue;
            }
            // Loop label: `'name: loop/while/for`.
            TokKind::Lifetime => {
                pos = file.next_sig(pos).map(|n| n + 1).unwrap_or(pos + 1);
                continue;
            }
            TokKind::Ident if t.text == "pub" => {
                // Visibility qualifier before a nested item; `pub(crate)`
                // parens are consumed by the item scan below.
                pos += 1;
                continue;
            }
            _ => {}
        }
        let (node, next, tail) = parse_stmt(file, pos, hi);
        has_tail = tail;
        stmts.push(node);
        pos = next;
    }
    Block { stmts, has_tail }
}

/// Parses one statement starting at `pos` (a significant token). Returns
/// the node, the next scan position, and whether the statement was a tail
/// expression (reached `hi` with no `;`).
fn parse_stmt(file: &SourceFile, pos: usize, hi: usize) -> (Node, usize, bool) {
    let t = &file.toks[pos];
    if t.kind == TokKind::Ident {
        match t.text.as_str() {
            "let" => return parse_let(file, pos, hi),
            "if" => {
                let (node, next) = parse_if(file, pos, hi);
                return (node, skip_semi(file, next, hi), false);
            }
            "match" => {
                let (node, next) = parse_match(file, pos, hi);
                return (node, skip_semi(file, next, hi), false);
            }
            "loop" | "while" | "for" => {
                let (node, next) = parse_loop_like(file, pos, hi);
                return (node, skip_semi(file, next, hi), false);
            }
            "unsafe" => {
                // `unsafe { .. }` block vs `unsafe fn`/`unsafe impl` item.
                if let Some(n) = file.next_sig(pos) {
                    if file.toks[n].kind == TokKind::Open(Delim::Brace) {
                        let close = file.partner[n].unwrap_or(n);
                        let node = Node::Unsafe {
                            body: parse_block(file, n + 1, close),
                            kw: pos,
                        };
                        return (node, skip_semi(file, close + 1, hi), false);
                    }
                }
                let end = skip_item(file, pos, hi);
                return (Node::Item { lo: pos, hi: end }, end, false);
            }
            "return" => {
                let (end, semi) = scan_to_semi(file, pos + 1, hi);
                let value = first_sig_in(file, pos + 1, end).map(|_| (pos + 1, end));
                let node = Node::Return { value, kw: pos };
                return (node, if semi { end + 1 } else { end }, false);
            }
            "break" => {
                let (end, semi) = scan_to_semi(file, pos + 1, hi);
                return (
                    Node::Break { kw: pos },
                    if semi { end + 1 } else { end },
                    false,
                );
            }
            "continue" => {
                let (end, semi) = scan_to_semi(file, pos + 1, hi);
                return (
                    Node::Continue { kw: pos },
                    if semi { end + 1 } else { end },
                    false,
                );
            }
            kw if ITEM_KWS.contains(&kw) && is_item_start(file, pos) => {
                let end = skip_item(file, pos, hi);
                return (Node::Item { lo: pos, hi: end }, end, false);
            }
            _ => {}
        }
    }
    if t.kind == TokKind::Open(Delim::Brace) {
        // Bare block statement.
        let close = file.partner[pos].unwrap_or(pos);
        let node = Node::Blk(parse_block(file, pos + 1, close));
        return (node, skip_semi(file, close + 1, hi), false);
    }
    // Leaf or assignment: scan to the statement-terminating `;`.
    let (end, semi) = scan_to_semi(file, pos, hi);
    let node = match find_assign(file, pos, end) {
        Some(eq) => Node::Assign {
            lhs: (pos, eq),
            rhs: Box::new(parse_expr(file, eq + 1, end)),
        },
        None => Node::Leaf { lo: pos, hi: end },
    };
    (node, if semi { end + 1 } else { end }, !semi)
}

/// Whether the `fn`/`struct`/... keyword at `pos` really starts an item
/// (and is not, say, the `fn` of a function-pointer type in a cast).
fn is_item_start(file: &SourceFile, pos: usize) -> bool {
    let kw = file.toks[pos].text.as_str();
    match kw {
        // `fn` as an item needs a name; `fn(` is a fn-pointer type.
        "fn" => file
            .next_sig(pos)
            .is_some_and(|n| file.toks[n].kind == TokKind::Ident),
        // A `const` item is `const NAME:`; `const` in other positions
        // (e.g. `*const T` has the `*` before it) is not.
        "const" | "static" => {
            let named = file
                .next_sig(pos)
                .is_some_and(|n| file.toks[n].kind == TokKind::Ident);
            let after_star = file
                .prev_sig(pos)
                .is_some_and(|p| file.toks[p].kind == TokKind::Punct && file.toks[p].text == "*");
            named && !after_star
        }
        _ => true,
    }
}

/// Skips a nested item starting at `pos`: scans past delimiter groups to
/// either a `;` or — for brace-terminated items — past the body brace.
fn skip_item(file: &SourceFile, pos: usize, hi: usize) -> usize {
    let brace_ends = BRACE_TERMINATED_KWS.contains(&file.toks[pos].text.as_str())
        || file.toks[pos].is_ident("unsafe");
    let mut j = pos;
    while let Some(n) = file.next_sig(j) {
        if n >= hi {
            return hi;
        }
        let t = &file.toks[n];
        match t.kind {
            TokKind::Open(Delim::Brace) if brace_ends => {
                return file.partner[n].unwrap_or(n) + 1;
            }
            TokKind::Open(_) => {
                j = file.partner[n].unwrap_or(n);
                continue;
            }
            TokKind::Punct if t.text == ";" => return n + 1,
            _ => {}
        }
        j = n;
    }
    hi
}

/// Parses `let [mut] PAT [: TYPE] = init;` starting at the `let`.
fn parse_let(file: &SourceFile, pos: usize, hi: usize) -> (Node, usize, bool) {
    let (end, semi) = scan_to_semi(file, pos + 1, hi);
    let eq = find_assign(file, pos + 1, end);
    // Binding name: sig idents between `let` and `=` (or `:`), minus
    // `mut`/`ref`; a single ident is a plain binding.
    let pat_end = eq.unwrap_or(end);
    let mut names = Vec::new();
    let mut i = pos + 1;
    while i < pat_end {
        let t = &file.toks[i];
        if t.kind == TokKind::Punct && t.text == ":" {
            break;
        }
        match t.kind {
            TokKind::Open(_) => {
                // Tuple/struct pattern: no single binding.
                names.clear();
                break;
            }
            TokKind::Ident if !t.is_ident("mut") && !t.is_ident("ref") => {
                names.push(t.text.clone())
            }
            _ => {}
        }
        i += 1;
    }
    let name = match names.as_slice() {
        [single] => Some(single.clone()),
        _ => None,
    };
    let init = eq.map(|e| Box::new(parse_expr(file, e + 1, end)));
    let node = Node::Let {
        name,
        init,
        kw: pos,
        hi: end,
    };
    (node, if semi { end + 1 } else { end }, false)
}

/// Parses the expression in `[lo, hi)`: a control-flow construct when one
/// spans the whole range, otherwise an opaque leaf.
pub fn parse_expr(file: &SourceFile, lo: usize, hi: usize) -> Node {
    let Some(first) = first_sig_in(file, lo, hi) else {
        return Node::Leaf { lo, hi };
    };
    let last = last_sig_in(file, lo, hi).unwrap_or(first);
    let t = &file.toks[first];
    if t.kind == TokKind::Ident {
        // Divergence in expression position (a `return`/`break` match arm)
        // must be structured, or the dataflow would read it as a value.
        match t.text.as_str() {
            "return" => {
                let value = file.next_sig(first).filter(|&n| n <= last).map(|n| (n, hi));
                return Node::Return { value, kw: first };
            }
            "break" => return Node::Break { kw: first },
            "continue" => return Node::Continue { kw: first },
            _ => {}
        }
        let (node, next) = match t.text.as_str() {
            "match" => parse_match(file, first, hi),
            "if" => parse_if(file, first, hi),
            "loop" | "while" | "for" => parse_loop_like(file, first, hi),
            "unsafe" => {
                if let Some(n) = file.next_sig(first) {
                    if n < hi && file.toks[n].kind == TokKind::Open(Delim::Brace) {
                        let close = file.partner[n].unwrap_or(n);
                        (
                            Node::Unsafe {
                                body: parse_block(file, n + 1, close),
                                kw: first,
                            },
                            close + 1,
                        )
                    } else {
                        return Node::Leaf { lo, hi };
                    }
                } else {
                    return Node::Leaf { lo, hi };
                }
            }
            _ => return Node::Leaf { lo, hi },
        };
        // Only accept the construct if it consumed the whole range;
        // a trailing `.method()` / `?` degrades to a leaf.
        if next > last {
            return node;
        }
    }
    Node::Leaf { lo, hi }
}

/// Parses `if cond { .. } [else ..]` starting at the `if`. Returns the
/// node and the position just past it.
fn parse_if(file: &SourceFile, pos: usize, hi: usize) -> (Node, usize) {
    let Some((open, close)) = brace_after(file, pos, hi) else {
        return (Node::Leaf { lo: pos, hi }, hi);
    };
    let cond = (pos + 1, open);
    let then_blk = parse_block(file, open + 1, close);
    let mut next = close + 1;
    let mut alt = None;
    if let Some(e) = file.next_sig(close) {
        if e < hi && file.toks[e].is_ident("else") {
            if let Some(b) = file.next_sig(e) {
                if b < hi && file.toks[b].is_ident("if") {
                    let (node, after) = parse_if(file, b, hi);
                    alt = Some(Box::new(node));
                    next = after;
                } else if b < hi && file.toks[b].kind == TokKind::Open(Delim::Brace) {
                    let bc = file.partner[b].unwrap_or(b);
                    alt = Some(Box::new(Node::Blk(parse_block(file, b + 1, bc))));
                    next = bc + 1;
                }
            }
        }
    }
    (
        Node::If {
            cond,
            then_blk,
            alt,
        },
        next,
    )
}

/// Parses `match scrutinee { arms }` starting at the `match`.
fn parse_match(file: &SourceFile, pos: usize, hi: usize) -> (Node, usize) {
    let Some((open, close)) = brace_after(file, pos, hi) else {
        return (Node::Leaf { lo: pos, hi }, hi);
    };
    let scrutinee = (pos + 1, open);
    let mut arms = Vec::new();
    let mut i = open + 1;
    while i < close {
        let t = &file.toks[i];
        if t.is_comment() || (t.kind == TokKind::Punct && (t.text == "," || t.text == "|")) {
            i += 1;
            continue;
        }
        // Pattern: scan for `=>` (tokens `=`, `>`) at depth 0.
        let pat_lo = i;
        let mut fat_arrow = None;
        let mut j = i;
        while j < close {
            let t = &file.toks[j];
            match t.kind {
                TokKind::Open(_) => {
                    j = file.partner[j].unwrap_or(j) + 1;
                    continue;
                }
                TokKind::Punct
                    if t.text == "="
                        && file.next_sig(j).is_some_and(|n| {
                            file.toks[n].kind == TokKind::Punct && file.toks[n].text == ">"
                        }) =>
                {
                    fat_arrow = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(eq) = fat_arrow else {
            break;
        };
        let gt = file.next_sig(eq).unwrap_or(eq);
        let Some(body_start) = file.next_sig(gt) else {
            break;
        };
        let (body, arm_end) = if file.toks[body_start].kind == TokKind::Open(Delim::Brace) {
            let bc = file.partner[body_start].unwrap_or(body_start);
            (Node::Blk(parse_block(file, body_start + 1, bc)), bc + 1)
        } else {
            // Expression arm: to the next depth-0 `,` or the match close.
            let mut k = body_start;
            while k < close {
                let t = &file.toks[k];
                match t.kind {
                    TokKind::Open(_) => {
                        k = file.partner[k].unwrap_or(k) + 1;
                        continue;
                    }
                    TokKind::Punct if t.text == "," => break,
                    _ => {}
                }
                k += 1;
            }
            (parse_expr(file, body_start, k), k)
        };
        arms.push(Arm {
            pat: (pat_lo, eq),
            body: Box::new(body),
        });
        i = arm_end;
    }
    (
        Node::Match {
            scrutinee,
            arms,
            kw: pos,
        },
        close + 1,
    )
}

/// Parses `loop { .. }` / `while cond { .. }` / `for pat in iter { .. }`.
fn parse_loop_like(file: &SourceFile, pos: usize, hi: usize) -> (Node, usize) {
    let Some((open, close)) = brace_after(file, pos, hi) else {
        return (Node::Leaf { lo: pos, hi }, hi);
    };
    let body = parse_block(file, open + 1, close);
    let node = match file.toks[pos].text.as_str() {
        "loop" => Node::Loop { body, kw: pos },
        "while" => Node::While {
            cond: (pos + 1, open),
            body,
            kw: pos,
        },
        _ => Node::For {
            head: (pos + 1, open),
            body,
            kw: pos,
        },
    };
    (node, close + 1)
}

/// The first `{` at head level after `pos` (paren/bracket groups in the
/// condition are skipped), with its partner. Rust forbids bare struct
/// literals in `if`/`while`/`match`-head position, so the first brace is
/// the body.
fn brace_after(file: &SourceFile, pos: usize, hi: usize) -> Option<(usize, usize)> {
    let mut j = pos;
    while let Some(n) = file.next_sig(j) {
        if n >= hi {
            return None;
        }
        match file.toks[n].kind {
            TokKind::Open(Delim::Brace) => {
                return Some((n, file.partner[n].unwrap_or(n)));
            }
            TokKind::Open(_) => {
                j = file.partner[n].unwrap_or(n);
                continue;
            }
            TokKind::Punct if file.toks[n].text == ";" => return None,
            _ => {}
        }
        j = n;
    }
    None
}

/// If the token at `pos` is a `;`, returns `pos + 1`; otherwise `pos`.
/// (Block-bodied statements may or may not be followed by a semicolon.)
fn skip_semi(file: &SourceFile, pos: usize, hi: usize) -> usize {
    if pos < hi && file.toks[pos].kind == TokKind::Punct && file.toks[pos].text == ";" {
        pos + 1
    } else {
        pos
    }
}

/// Scans from `from` for a `;` at delimiter depth 0 (groups are jumped
/// via the partner map). Returns `(end, found)`: `end` is the index of
/// the `;` (exclusive end of the statement) or `hi`.
fn scan_to_semi(file: &SourceFile, from: usize, hi: usize) -> (usize, bool) {
    let mut j = from;
    while j < hi {
        let t = &file.toks[j];
        match t.kind {
            TokKind::Open(_) => {
                j = file.partner[j].map(|p| p + 1).unwrap_or(j + 1);
                continue;
            }
            TokKind::Punct if t.text == ";" => return (j, true),
            _ => {}
        }
        j += 1;
    }
    (hi, false)
}

/// Finds a top-level assignment `=` in `[lo, hi)`: a `=` at depth 0 that
/// is not part of `==`, `=>`, `<=`, `>=`, `!=`, or a compound assignment.
fn find_assign(file: &SourceFile, lo: usize, hi: usize) -> Option<usize> {
    let mut j = lo;
    while j < hi {
        let t = &file.toks[j];
        match t.kind {
            TokKind::Open(_) => {
                j = file.partner[j].map(|p| p + 1).unwrap_or(j + 1);
                continue;
            }
            TokKind::Punct if t.text == "=" => {
                let next_is_eq_or_gt = file.next_sig(j).is_some_and(|n| {
                    n < hi
                        && file.toks[n].kind == TokKind::Punct
                        && (file.toks[n].text == "=" || file.toks[n].text == ">")
                });
                let prev_is_op = file.prev_sig(j).is_some_and(|p| {
                    file.toks[p].kind == TokKind::Punct
                        && "=<>!+-*/%&|^".contains(file.toks[p].text.as_str())
                });
                if !next_is_eq_or_gt && !prev_is_op {
                    return Some(j);
                }
                // Skip the second char of `==` so `a == b == c` (illegal
                // anyway) cannot misfire.
                if next_is_eq_or_gt {
                    j += 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// First significant token index in `[lo, hi)`.
pub fn first_sig_in(file: &SourceFile, lo: usize, hi: usize) -> Option<usize> {
    (lo..hi.min(file.toks.len())).find(|&i| !file.toks[i].is_comment())
}

/// Last significant token index in `[lo, hi)`.
pub fn last_sig_in(file: &SourceFile, lo: usize, hi: usize) -> Option<usize> {
    (lo..hi.min(file.toks.len()))
        .rev()
        .find(|&i| !file.toks[i].is_comment())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_src(src: &str) -> (SourceFile, Ast) {
        let file = SourceFile::parse("t.rs", src);
        let ast = parse(&file);
        (file, ast)
    }

    fn body(ast: &Ast, name: &str) -> usize {
        ast.fns
            .iter()
            .position(|f| f.item.name == name)
            .unwrap_or_else(|| panic!("fn {name} not found"))
    }

    #[test]
    fn parses_lets_ifs_and_returns() {
        let (_, ast) = parse_src(
            "fn f(p: *mut u8) -> *mut u8 {\n\
             let q = g(p);\n\
             if q.is_null() { return core::ptr::null_mut(); }\n\
             q\n\
             }",
        );
        let f = &ast.fns[body(&ast, "f")];
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.params[0].name.as_deref(), Some("p"));
        assert!(f.params[0].raw_ptr);
        let b = f.body.as_ref().unwrap();
        assert_eq!(b.stmts.len(), 3);
        assert!(matches!(&b.stmts[0], Node::Let { name: Some(n), init: Some(_), .. } if n == "q"));
        assert!(matches!(&b.stmts[1], Node::If { alt: None, .. }));
        assert!(b.has_tail);
        assert!(matches!(&b.stmts[2], Node::Leaf { .. }));
        if let Node::If { then_blk, .. } = &b.stmts[1] {
            assert!(matches!(
                &then_blk.stmts[0],
                Node::Return { value: Some(_), .. }
            ));
        }
    }

    #[test]
    fn parses_match_arms_with_blocks_and_exprs() {
        let (file, ast) = parse_src(
            "fn f() {\n\
             let cell = match alloc() {\n\
             Ok(cell) => cell,\n\
             Err(e) => { log(e); return; }\n\
             };\n\
             }",
        );
        let f = &ast.fns[body(&ast, "f")];
        let b = f.body.as_ref().unwrap();
        let Node::Let { name, init, .. } = &b.stmts[0] else {
            panic!("expected let");
        };
        assert_eq!(name.as_deref(), Some("cell"));
        let Node::Match {
            arms, scrutinee, ..
        } = init.as_deref().unwrap()
        else {
            panic!("expected match init");
        };
        assert_eq!(arms.len(), 2);
        let scrut_text: Vec<&str> = (scrutinee.0..scrutinee.1)
            .map(|i| file.toks[i].text.as_str())
            .collect();
        assert!(scrut_text.contains(&"alloc"));
        assert!(matches!(&*arms[0].body, Node::Leaf { .. }));
        let Node::Blk(blk) = &*arms[1].body else {
            panic!("expected block arm");
        };
        assert!(matches!(&blk.stmts[1], Node::Return { value: None, .. }));
    }

    #[test]
    fn parses_loops_breaks_and_assignments() {
        let (_, ast) = parse_src(
            "fn f() {\n\
             let mut t = h();\n\
             'outer: loop {\n\
             let next = g(t);\n\
             if next.is_null() { break; }\n\
             release(t);\n\
             t = next;\n\
             }\n\
             while !t.is_null() { t = g(t); }\n\
             }",
        );
        let f = &ast.fns[body(&ast, "f")];
        let b = f.body.as_ref().unwrap();
        assert_eq!(b.stmts.len(), 3);
        let Node::Loop { body, .. } = &b.stmts[1] else {
            panic!("expected loop (label skipped)");
        };
        assert_eq!(body.stmts.len(), 4);
        assert!(matches!(&body.stmts[3], Node::Assign { .. }));
        if let Node::If { then_blk, .. } = &body.stmts[1] {
            assert!(matches!(&then_blk.stmts[0], Node::Break { .. }));
        } else {
            panic!("expected if");
        }
        assert!(matches!(&b.stmts[2], Node::While { .. }));
    }

    #[test]
    fn unsafe_blocks_and_nested_items_are_structured() {
        let (_, ast) = parse_src(
            "fn outer() {\n\
             unsafe { (*p).next = q; }\n\
             fn inner() { release(x); }\n\
             let v = unsafe { read(p) };\n\
             }",
        );
        let f = &ast.fns[body(&ast, "outer")];
        let b = f.body.as_ref().unwrap();
        assert!(matches!(&b.stmts[0], Node::Unsafe { .. }));
        assert!(matches!(&b.stmts[1], Node::Item { .. }));
        let Node::Let {
            init: Some(init), ..
        } = &b.stmts[2]
        else {
            panic!("expected let");
        };
        assert!(matches!(&**init, Node::Unsafe { .. }));
        // The nested fn also parses as its own definition.
        assert_eq!(ast.fns.len(), 2);
        assert_eq!(ast.fns[body(&ast, "inner")].item.name, "inner");
    }

    #[test]
    fn generics_do_not_confuse_params() {
        let (_, ast) = parse_src(
            "fn f<F: Fn(&u8) -> bool, T>(pred: F, map: std::collections::HashMap<u8, T>) {}",
        );
        let f = &ast.fns[body(&ast, "f")];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name.as_deref(), Some("pred"));
        assert_eq!(f.params[1].name.as_deref(), Some("map"));
        assert!(!f.params[1].raw_ptr);
    }

    #[test]
    fn if_else_chains_and_else_blocks() {
        let (_, ast) = parse_src(
            "fn f(x: u8) {\n\
             if x == 0 { a(); } else if x == 1 { b(); } else { c(); }\n\
             }",
        );
        let f = &ast.fns[body(&ast, "f")];
        let Node::If { alt: Some(alt), .. } = &f.body.as_ref().unwrap().stmts[0] else {
            panic!("expected if with else");
        };
        let Node::If {
            alt: Some(alt2), ..
        } = &**alt
        else {
            panic!("expected else-if");
        };
        assert!(matches!(&**alt2, Node::Blk(_)));
    }

    #[test]
    fn while_let_and_for_heads() {
        let (_, ast) = parse_src(
            "fn f() {\n\
             while let Some(v) = it.next() { use_it(v); }\n\
             for i in 0..10 { g(i); }\n\
             }",
        );
        let b = ast.fns[0].body.as_ref().unwrap();
        assert!(matches!(&b.stmts[0], Node::While { .. }));
        assert!(matches!(&b.stmts[1], Node::For { .. }));
    }

    #[test]
    fn tolerates_unparsable_soup_as_leaves() {
        let (_, ast) = parse_src("fn f() { @@ %% || ; let x = 1; }");
        let b = ast.fns[0].body.as_ref().unwrap();
        assert!(b
            .stmts
            .iter()
            .any(|n| matches!(n, Node::Let { name: Some(x), .. } if x == "x")));
    }
}
