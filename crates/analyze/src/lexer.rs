//! A small Rust lexer that keeps comments.
//!
//! The passes in this crate are *syntax*-aware, not line-aware: a `use`
//! declaration split over five lines, a `/* block */` comment in the middle
//! of an expression, or `unsafe` inside a string literal must all be seen
//! for what they are. A full parser is not needed — every pass works on a
//! token stream with comment trivia preserved (comments carry the
//! `SAFETY:` / `ORDER:` / `COUNT:` / `WAIT-FREE:` contracts the passes
//! check), plus matched-delimiter structure computed in [`crate::source`].
//!
//! The lexer understands exactly the token shapes that occur in Rust
//! source: identifiers (including `r#raw`), lifetimes vs. char literals,
//! string / raw-string / byte-string literals, numbers, nested block
//! comments, and single-character punctuation. Multi-character operators
//! are delivered as individual punctuation tokens (`::` is `:`, `:`);
//! passes that care match the sequence.

use std::fmt;

/// Delimiter class for `Open`/`Close` tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `(` / `)`
    Paren,
    /// `[` / `]`
    Bracket,
    /// `{` / `}`
    Brace,
}

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `loop`, names, ...).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// String / char / byte / numeric literal. Text is the raw source.
    Literal,
    /// Single punctuation character (`:`, `.`, `=`, `#`, ...).
    Punct,
    /// Opening delimiter.
    Open(Delim),
    /// Closing delimiter.
    Close(Delim),
    /// `// ...` comment, including `//!` and `///` doc forms.
    Comment,
    /// `/* ... */` comment (possibly nested), including doc forms.
    BlockComment,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// Raw source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Tok {
    /// Whether this token is comment trivia.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::Comment | TokKind::BlockComment)
    }

    /// Whether this token is a doc comment (`///`, `//!`, `/**`, `/*!`).
    pub fn is_doc_comment(&self) -> bool {
        (self.kind == TokKind::Comment
            && (self.text.starts_with("///") || self.text.starts_with("//!")))
            || (self.kind == TokKind::BlockComment
                && (self.text.starts_with("/**") || self.text.starts_with("/*!")))
    }

    /// Whether this is the identifier/keyword `kw`.
    pub fn is_ident(&self, kw: &str) -> bool {
        self.kind == TokKind::Ident && self.text == kw
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:?}:{}", self.line, self.kind, self.text)
    }
}

/// Tokenizes `src`. Unterminated constructs (string, block comment) consume
/// to end of input rather than erroring: the linter must degrade gracefully
/// on code the compiler will reject anyway.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: usize) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string_lit(line),
                'r' | 'b' if self.raw_or_byte_start() => self.raw_or_byte(line),
                '\'' => self.lifetime_or_char(line),
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                '(' => self.delim(TokKind::Open(Delim::Paren), line),
                ')' => self.delim(TokKind::Close(Delim::Paren), line),
                '[' => self.delim(TokKind::Open(Delim::Bracket), line),
                ']' => self.delim(TokKind::Close(Delim::Bracket), line),
                '{' => self.delim(TokKind::Open(Delim::Brace), line),
                '}' => self.delim(TokKind::Close(Delim::Brace), line),
                _ => {
                    let c = self.bump().unwrap();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn delim(&mut self, kind: TokKind, line: usize) {
        let c = self.bump().unwrap();
        self.push(kind, c.to_string(), line);
    }

    fn line_comment(&mut self, line: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(self.bump().unwrap());
        }
        self.push(TokKind::Comment, text, line);
    }

    fn block_comment(&mut self, line: usize) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push(self.bump().unwrap());
                text.push(self.bump().unwrap());
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push(self.bump().unwrap());
                text.push(self.bump().unwrap());
                if depth == 0 {
                    break;
                }
            } else {
                text.push(self.bump().unwrap());
            }
        }
        self.push(TokKind::BlockComment, text, line);
    }

    fn string_lit(&mut self, line: usize) {
        let mut text = String::new();
        text.push(self.bump().unwrap()); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '"' {
                break;
            }
        }
        self.push(TokKind::Literal, text, line);
    }

    /// True when the current `r`/`b` begins a raw / byte string rather than
    /// an identifier: `r"`, `r#"`, `br"`, `b"`, `b'`, `br#"`, `r#raw_ident`
    /// is *not* (that is a raw identifier, handled in `ident`).
    fn raw_or_byte_start(&self) -> bool {
        let c0 = self.peek(0).unwrap();
        match c0 {
            'b' => {
                matches!(self.peek(1), Some('"') | Some('\''))
                    || (self.peek(1) == Some('r') && matches!(self.peek(2), Some('"') | Some('#')))
            }
            'r' => {
                match self.peek(1) {
                    Some('"') => true,
                    Some('#') => {
                        // distinguish r#"raw"# from r#ident
                        let mut i = 1;
                        while self.peek(i) == Some('#') {
                            i += 1;
                        }
                        self.peek(i) == Some('"')
                    }
                    _ => false,
                }
            }
            _ => false,
        }
    }

    fn raw_or_byte(&mut self, line: usize) {
        let mut text = String::new();
        // prefix letters
        while matches!(self.peek(0), Some('r') | Some('b')) {
            text.push(self.bump().unwrap());
        }
        if self.peek(0) == Some('\'') {
            // byte char literal b'x'
            text.push(self.bump().unwrap());
            while let Some(c) = self.bump() {
                text.push(c);
                if c == '\\' {
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                } else if c == '\'' {
                    break;
                }
            }
            self.push(TokKind::Literal, text, line);
            return;
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push(self.bump().unwrap());
        }
        if self.peek(0) == Some('"') {
            text.push(self.bump().unwrap());
            if hashes == 0 && text.starts_with('b') && !text.contains('r') {
                // plain byte string b"...": escapes apply
                while let Some(c) = self.bump() {
                    text.push(c);
                    if c == '\\' {
                        if let Some(e) = self.bump() {
                            text.push(e);
                        }
                    } else if c == '"' {
                        break;
                    }
                }
            } else {
                // raw string: ends at `"` followed by `hashes` hashes
                while let Some(c) = self.bump() {
                    text.push(c);
                    if c == '"' {
                        let mut seen = 0;
                        while seen < hashes && self.peek(0) == Some('#') {
                            text.push(self.bump().unwrap());
                            seen += 1;
                        }
                        if seen == hashes {
                            break;
                        }
                    }
                }
            }
        }
        self.push(TokKind::Literal, text, line);
    }

    fn lifetime_or_char(&mut self, line: usize) {
        // 'a  / 'static  -> lifetime;  'x' / '\n' -> char literal.
        let is_lifetime = match (self.peek(1), self.peek(2)) {
            (Some(c1), next) if c1.is_alphabetic() || c1 == '_' => next != Some('\''),
            _ => false,
        };
        let mut text = String::new();
        text.push(self.bump().unwrap()); // '
        if is_lifetime {
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(self.bump().unwrap());
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, text, line);
        } else {
            while let Some(c) = self.bump() {
                text.push(c);
                if c == '\\' {
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                } else if c == '\'' {
                    break;
                }
            }
            self.push(TokKind::Literal, text, line);
        }
    }

    fn ident(&mut self, line: usize) {
        let mut text = String::new();
        // raw identifier prefix r#
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            text.push(self.bump().unwrap());
            text.push(self.bump().unwrap());
        }
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(self.bump().unwrap());
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    /// Whether the previous significant token was a `.` punct — i.e. the
    /// digits about to be lexed are a tuple-field index (`pair.0`), not a
    /// numeric literal. Without this check `x.0.1` lexes as `x` `.` `0.1`
    /// (a float), which breaks place-expression recognition in the parser.
    fn after_field_dot(&self) -> bool {
        self.out
            .iter()
            .rev()
            .find(|t| !t.is_comment())
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == ".")
    }

    fn number(&mut self, line: usize) {
        let field_index = self.after_field_dot();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(self.bump().unwrap());
            } else if c == '.' && !field_index && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // 1.5 — but not 1..2 (range), 1.method(), or the second
                // index of a tuple-field chain (`x.0.1`).
                text.push(self.bump().unwrap());
            } else {
                break;
            }
        }
        self.push(TokKind::Literal, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("use a::b;");
        assert_eq!(toks[0], (TokKind::Ident, "use".into()));
        assert_eq!(toks[1], (TokKind::Ident, "a".into()));
        assert_eq!(toks[2], (TokKind::Punct, ":".into()));
        assert_eq!(toks[3], (TokKind::Punct, ":".into()));
        assert_eq!(toks[4], (TokKind::Ident, "b".into()));
        assert_eq!(toks[5], (TokKind::Punct, ";".into()));
    }

    #[test]
    fn comments_are_kept_with_lines() {
        let toks = lex("// SAFETY: fine\nunsafe { }\n");
        assert_eq!(toks[0].kind, TokKind::Comment);
        assert_eq!(toks[0].line, 1);
        assert!(toks[1].is_ident("unsafe"));
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "unsafe { std::sync::atomic }";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || !t.contains("atomic")));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let toks = kinds("let s = r#\"has \"quotes\" inside\"#; let t = \"a\\\"b\";");
        let lits: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Literal)
            .collect();
        assert_eq!(lits.len(), 2);
        assert!(lits[0].1.contains("quotes"));
        assert!(lits[1].1.contains("a\\\"b"));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        assert_eq!(lifetimes, 2);
        let chars = toks
            .iter()
            .filter(|(k, t)| *k == TokKind::Literal && t.starts_with('\''))
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn nested_block_comment() {
        let toks = lex("/* outer /* inner */ still */ fn");
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert!(toks[0].text.contains("inner"));
        assert!(toks[1].is_ident("fn"));
    }

    #[test]
    fn raw_identifier_is_ident_not_string() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r#type"));
    }

    #[test]
    fn raw_string_edge_cases() {
        // Empty raw string.
        let toks = kinds(r####"let s = r#""#;"####);
        assert_eq!(toks[3], (TokKind::Literal, r####"r#""#"####.into()));
        assert_eq!(toks[4], (TokKind::Punct, ";".into()));
        // Guard-count mismatch inside the literal: `"#` does not terminate
        // an `r##`-guarded string.
        let toks = kinds(r####"let s = r##"has "# inside"##;"####);
        assert_eq!(
            toks[3],
            (TokKind::Literal, r####"r##"has "# inside"##"####.into())
        );
        // Byte-raw prefix.
        let toks = kinds(r####"br#"x"#"####);
        assert_eq!(toks[0], (TokKind::Literal, r####"br#"x"#"####.into()));
        // Multi-line raw string: following tokens get the right line.
        let toks = lex("let s = r#\"a\nb\"#; fn g(){}");
        assert_eq!(toks[3].kind, TokKind::Literal);
        assert_eq!(toks[3].line, 1);
        assert!(toks.iter().any(|t| t.is_ident("fn") && t.line == 2));
        // `r` / `b` as plain identifiers are not literal prefixes.
        let toks = kinds("let r = 1; let b = 2;");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "r"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "b"));
    }

    #[test]
    fn nested_block_comment_edge_cases() {
        // Quotes inside a comment are trivia; nesting still balances.
        let toks = lex("/* a /* \"inner\" */ b */ fn f(){}");
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert!(toks[1].is_ident("fn"));
        // Immediately adjacent open/close pairs.
        let toks = lex("/*/* */*/ fn");
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert!(toks[1].is_ident("fn"));
        // Comments are NOT string-aware (same as rustc): a `/*` inside a
        // quoted string inside a comment still opens a nesting level, so
        // this input is unterminated and must degrade by consuming to EOF
        // instead of panicking or emitting phantom tokens.
        let toks = lex("/* a /* \"inner /*\" */ b */ fn f(){}");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokKind::BlockComment);
    }

    #[test]
    fn lifetime_vs_char_edge_cases() {
        // Loop labels are lifetimes on both definition and break.
        let toks = kinds("'outer: loop { break 'outer; }");
        let lifetimes = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        assert_eq!(lifetimes, 2);
        // Escaped-quote char literals.
        let toks = kinds(r"let a = '\''; let b = '\\'; let c = b'\'';");
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Literal)
            .collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0].1, r"'\''");
        assert_eq!(chars[1].1, r"'\\'");
        assert_eq!(chars[2].1, r"b'\''");
        // `'_'` is the underscore char, `'_` is the anonymous lifetime.
        let toks = kinds("let c = '_'; fn f(x: &'_ u8) {}");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Literal && t == "'_'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'_"));
        // Unicode escape.
        let toks = kinds(r"let c = '\u{1F}';");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Literal && t == r"'\u{1F}'"));
    }

    #[test]
    fn tuple_field_chain_is_not_a_float() {
        // `x.0.1` is two field accesses; `0.1` alone is a float.
        let toks = kinds("let v = x.0.1;");
        assert_eq!(toks[4], (TokKind::Punct, ".".into()));
        assert_eq!(toks[5], (TokKind::Literal, "0".into()));
        assert_eq!(toks[6], (TokKind::Punct, ".".into()));
        assert_eq!(toks[7], (TokKind::Literal, "1".into()));
        let toks = kinds("let f = 0.1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Literal && t == "0.1"));
        // Ranges and method calls on integers still split at the dot.
        let toks = kinds("for i in 0..10 {}");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Literal && t == "0"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Literal && t == "10"));
    }

    #[test]
    fn multiline_use_spans_lines() {
        let toks = lex("use std::sync::atomic::{\n    AtomicUsize,\n    Ordering,\n};\n");
        assert!(toks.iter().any(|t| t.is_ident("atomic") && t.line == 1));
        assert!(toks.iter().any(|t| t.is_ident("Ordering") && t.line == 3));
    }
}
