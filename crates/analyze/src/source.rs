//! Token-level structure over a lexed file: matched delimiters, statement
//! boundaries, comment adjacency, `use`-tree flattening, item discovery
//! (`fn` bodies, `#[cfg(test)]` modules, retry loops).
//!
//! This is the shared substrate of every pass. Nothing here decides
//! policy; it answers syntactic questions ("which comments lead this
//! statement?", "what paths does this `use` item import?", "where does
//! this function's body end?") that the passes combine into lints.

use crate::lexer::{lex, Delim, Tok, TokKind};

/// A lexed file plus derived structure.
#[derive(Debug)]
pub struct SourceFile {
    /// Path label used in findings (workspace-relative).
    pub label: String,
    /// The token stream, comments included.
    pub toks: Vec<Tok>,
    /// For each `Open`/`Close` token, the index of its partner.
    pub partner: Vec<Option<usize>>,
    /// Token index ranges (inclusive braces) of `#[cfg(test)] mod` bodies.
    pub test_mod_ranges: Vec<(usize, usize)>,
}

/// One flattened path imported by a `use` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsePath {
    /// Path segments, e.g. `["std", "sync", "atomic", "AtomicUsize"]`.
    /// A glob import ends with `"*"`.
    pub segments: Vec<String>,
    /// `as` rename, if any.
    pub rename: Option<String>,
    /// Source line of the final segment.
    pub line: usize,
}

/// A `fn` item: signature and body token ranges.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token indices of the body braces `(open, close)`; `None` for a
    /// bodiless trait-method declaration.
    pub body: Option<(usize, usize)>,
    /// Token range of the return type (between `->` and the body/`;`),
    /// empty when the function returns `()`.
    pub return_type: (usize, usize),
    /// Whether the `fn` keyword is preceded by `unsafe`.
    pub is_unsafe: bool,
}

/// A `loop`/`while` with its body token range.
#[derive(Debug, Clone)]
pub struct LoopItem {
    /// Token index of the `loop`/`while` keyword.
    pub kw_idx: usize,
    /// Line of the keyword.
    pub line: usize,
    /// Body brace token indices `(open, close)`.
    pub body: (usize, usize),
}

impl SourceFile {
    /// Lexes `src` and computes structure. `label` names the file in
    /// findings.
    pub fn parse(label: &str, src: &str) -> SourceFile {
        let toks = lex(src);
        let partner = match_delims(&toks);
        let mut file = SourceFile {
            label: label.to_string(),
            toks,
            partner,
            test_mod_ranges: Vec::new(),
        };
        file.test_mod_ranges = file.find_test_mod_ranges();
        file
    }

    /// Index of the previous non-comment token strictly before `i`.
    pub fn prev_sig(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| !self.toks[j].is_comment())
    }

    /// Index of the next non-comment token strictly after `i`.
    pub fn next_sig(&self, i: usize) -> Option<usize> {
        (i + 1..self.toks.len()).find(|&j| !self.toks[j].is_comment())
    }

    /// Whether token index `i` falls inside a `#[cfg(test)] mod` body.
    pub fn in_test_mod(&self, i: usize) -> bool {
        self.test_mod_ranges
            .iter()
            .any(|&(open, close)| i > open && i < close)
    }

    /// Walks backward from `i` to the start of the enclosing statement:
    /// returns the index of the statement's first significant token. The
    /// boundary tokens are `;`, `,`, and braces (either side).
    pub fn stmt_start(&self, i: usize) -> usize {
        let mut first = i;
        let mut j = i;
        while let Some(p) = self.prev_sig(j) {
            let t = &self.toks[p];
            let boundary = matches!(
                t.kind,
                TokKind::Open(Delim::Brace) | TokKind::Close(Delim::Brace)
            ) || (t.kind == TokKind::Punct && (t.text == ";" || t.text == ","));
            if boundary {
                break;
            }
            first = p;
            j = p;
        }
        first
    }

    /// Comments "attached" to the token at `i`: every comment token from
    /// the start of `i`'s statement (including comments immediately above
    /// the statement, back to the previous significant token) up to `i`,
    /// plus any comment on the same source line as `i` or on `extra_line`.
    ///
    /// This is the adjacency rule for justification comments (`SAFETY:`,
    /// `WAIT-FREE:`, ...): a comment block above the statement, a comment
    /// mid-statement before the keyword, or a trailing comment on the
    /// keyword's (or its opening brace's) line.
    pub fn attached_comments(&self, i: usize, extra_line: Option<usize>) -> Vec<&Tok> {
        let mut out: Vec<&Tok> = Vec::new();
        let first = self.stmt_start(i);
        // Comments above the statement: between the previous significant
        // token (exclusive) and the statement's first token.
        let lo = self.prev_sig(first).map(|p| p + 1).unwrap_or(0);
        for t in &self.toks[lo..i] {
            if t.is_comment() {
                out.push(t);
            }
        }
        let line = self.toks[i].line;
        for t in &self.toks {
            if t.is_comment() && (t.line == line || Some(t.line) == extra_line) {
                out.push(t);
            }
        }
        out
    }

    /// Whether any comment attached to token `i` (see
    /// [`SourceFile::attached_comments`]) contains `marker`.
    pub fn has_adjacent_marker(&self, i: usize, extra_line: Option<usize>, marker: &str) -> bool {
        self.attached_comments(i, extra_line)
            .iter()
            .any(|t| t.text.contains(marker))
    }

    /// Doc comments and plain comments immediately preceding the *item*
    /// whose first qualifier/attribute token is at index `start`: the
    /// contiguous comment run above it (attributes between comments and
    /// the item are skipped over).
    pub fn leading_item_comments(&self, start: usize) -> Vec<&Tok> {
        let lo = self.prev_sig(start).map(|p| p + 1).unwrap_or(0);
        self.toks[lo..start]
            .iter()
            .filter(|t| t.is_comment())
            .collect()
    }

    /// Walks backward from the `fn`/`impl`/`trait` keyword at `kw_idx`
    /// over item qualifiers (`pub`, `pub(crate)`, `const`, `async`,
    /// `unsafe`, `extern "C"`, `default`) and attributes to the item's
    /// first token.
    pub fn item_start(&self, kw_idx: usize) -> usize {
        let mut start = kw_idx;
        let mut j = kw_idx;
        while let Some(p) = self.prev_sig(j) {
            let t = &self.toks[p];
            let qualifier = t.is_ident("pub")
                || t.is_ident("const")
                || t.is_ident("async")
                || t.is_ident("unsafe")
                || t.is_ident("extern")
                || t.is_ident("default")
                || (t.kind == TokKind::Literal && t.text.starts_with('"')); // extern "C"
            if qualifier {
                start = p;
                j = p;
                continue;
            }
            // pub(crate) / pub(super): a paren group whose open's prev is `pub`.
            if t.kind == TokKind::Close(Delim::Paren) {
                if let Some(open) = self.partner[p] {
                    if self
                        .prev_sig(open)
                        .is_some_and(|q| self.toks[q].is_ident("pub"))
                    {
                        j = open;
                        continue;
                    }
                }
            }
            // Attribute: `]` closing a bracket whose open is preceded by `#`.
            if t.kind == TokKind::Close(Delim::Bracket) {
                if let Some(open) = self.partner[p] {
                    if self.prev_sig(open).is_some_and(|q| {
                        self.toks[q].kind == TokKind::Punct && self.toks[q].text == "#"
                    }) {
                        start = self.prev_sig(open).unwrap();
                        j = start;
                        continue;
                    }
                }
            }
            break;
        }
        start
    }

    /// All `use` items, flattened: groups expanded, renames recorded,
    /// multi-line declarations handled (the lexer already erased lines).
    pub fn use_paths(&self) -> Vec<UsePath> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.toks.len() {
            if self.toks[i].is_ident("use") && self.is_item_position(i) {
                // Collect until the terminating `;` at group depth 0.
                let mut j = i + 1;
                let mut depth = 0usize;
                let start = j;
                while j < self.toks.len() {
                    let t = &self.toks[j];
                    match t.kind {
                        TokKind::Open(Delim::Brace) => depth += 1,
                        TokKind::Close(Delim::Brace) => depth = depth.saturating_sub(1),
                        TokKind::Punct if t.text == ";" && depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let mut prefix = Vec::new();
                self.flatten_use(start, j, &mut prefix, &mut out);
                i = j;
            }
            i += 1;
        }
        out
    }

    /// `use` at item position: preceded by nothing, `;`, `}`, `{`, or an
    /// attribute/visibility — not `.` (method named use is impossible
    /// anyway, this is belt and braces).
    fn is_item_position(&self, i: usize) -> bool {
        match self.prev_sig(i) {
            None => true,
            Some(p) => {
                let t = &self.toks[p];
                !(t.kind == TokKind::Punct && t.text == ".")
            }
        }
    }

    /// Recursively flattens the use-tree tokens in `[lo, hi)` under
    /// `prefix` into `out`.
    fn flatten_use(&self, lo: usize, hi: usize, prefix: &mut Vec<String>, out: &mut Vec<UsePath>) {
        let mut segs: Vec<(String, usize)> = Vec::new(); // pending segments + line
        let mut rename: Option<String> = None;
        let mut i = lo;
        let flush = |segs: &mut Vec<(String, usize)>,
                     rename: &mut Option<String>,
                     prefix: &[String],
                     out: &mut Vec<UsePath>| {
            if segs.is_empty() {
                return;
            }
            let line = segs.last().unwrap().1;
            let mut segments: Vec<String> = prefix.to_vec();
            segments.extend(segs.drain(..).map(|(s, _)| s));
            out.push(UsePath {
                segments,
                rename: rename.take(),
                line,
            });
        };
        while i < hi {
            let t = &self.toks[i];
            match t.kind {
                TokKind::Ident if t.text == "as" => {
                    // rename follows
                    if let Some(n) = self.next_sig(i) {
                        if n < hi {
                            rename = Some(self.toks[n].text.clone());
                            i = n;
                        }
                    }
                }
                TokKind::Ident => segs.push((t.text.clone(), t.line)),
                TokKind::Punct if t.text == "*" => segs.push(("*".to_string(), t.line)),
                TokKind::Punct if t.text == "," => {
                    flush(&mut segs, &mut rename, prefix, out);
                }
                TokKind::Open(Delim::Brace) => {
                    let close = self.partner[i].unwrap_or(hi);
                    let depth_before = prefix.len();
                    prefix.extend(segs.drain(..).map(|(s, _)| s));
                    self.flatten_use(i + 1, close.min(hi), prefix, out);
                    prefix.truncate(depth_before);
                    rename = None;
                    i = close;
                }
                _ => {}
            }
            i += 1;
        }
        flush(&mut segs, &mut rename, prefix, out);
    }

    /// All `fn` items with their body ranges.
    pub fn fn_items(&self) -> Vec<FnItem> {
        let mut out = Vec::new();
        for i in 0..self.toks.len() {
            if !self.toks[i].is_ident("fn") {
                continue;
            }
            // Name is the next significant token (skip for `fn` in fn-ptr
            // types like `fn(u8) -> u8`, where the next token is `(`).
            let Some(name_idx) = self.next_sig(i) else {
                continue;
            };
            if self.toks[name_idx].kind != TokKind::Ident {
                continue;
            }
            let name = self.toks[name_idx].text.clone();
            let is_unsafe = self
                .prev_sig(i)
                .is_some_and(|p| self.toks[p].is_ident("unsafe"));
            // Scan forward for the body `{` or terminating `;`, skipping
            // paren/bracket groups (argument lists, where-clause bounds
            // never contain stray braces).
            let mut j = name_idx;
            let mut body = None;
            let mut arrow: Option<usize> = None;
            let mut ret_end = name_idx;
            while let Some(n) = self.next_sig(j) {
                let t = &self.toks[n];
                match t.kind {
                    TokKind::Open(Delim::Paren) | TokKind::Open(Delim::Bracket) => {
                        j = self.partner[n].unwrap_or(n);
                        continue;
                    }
                    TokKind::Open(Delim::Brace) => {
                        body = Some((n, self.partner[n].unwrap_or(n)));
                        ret_end = n;
                        break;
                    }
                    TokKind::Punct if t.text == ";" => {
                        ret_end = n;
                        break;
                    }
                    // `->` begins the return type
                    TokKind::Punct
                        if t.text == "-"
                            && arrow.is_none()
                            && self.next_sig(n).is_some_and(|m| {
                                self.toks[m].kind == TokKind::Punct && self.toks[m].text == ">"
                            }) =>
                    {
                        arrow = Some(n);
                    }
                    _ => {}
                }
                j = n;
            }
            let return_type = match arrow {
                Some(a) => (a, ret_end),
                None => (name_idx, name_idx),
            };
            out.push(FnItem {
                name,
                line: self.toks[i].line,
                fn_idx: i,
                body,
                return_type,
                is_unsafe,
            });
        }
        out
    }

    /// All `loop { ... }` and `while ... { ... }` items.
    pub fn loops(&self) -> Vec<LoopItem> {
        let mut out = Vec::new();
        for i in 0..self.toks.len() {
            let t = &self.toks[i];
            let is_loop = t.is_ident("loop");
            let is_while = t.is_ident("while");
            if !is_loop && !is_while {
                continue;
            }
            // `loop`: body is the next significant `{`. `while`: scan the
            // condition (skipping paren groups) for the first brace at
            // condition level.
            let mut j = i;
            let mut body = None;
            while let Some(n) = self.next_sig(j) {
                match self.toks[n].kind {
                    TokKind::Open(Delim::Paren) | TokKind::Open(Delim::Bracket) => {
                        j = self.partner[n].unwrap_or(n);
                        continue;
                    }
                    TokKind::Open(Delim::Brace) => {
                        body = Some((n, self.partner[n].unwrap_or(n)));
                        break;
                    }
                    TokKind::Punct if self.toks[n].text == ";" => break,
                    _ => {}
                }
                j = n;
            }
            if let Some(body) = body {
                out.push(LoopItem {
                    kw_idx: i,
                    line: t.line,
                    body,
                });
            }
        }
        out
    }

    /// Token ranges of `#[cfg(test)] mod` bodies (and `#[cfg(all(test,..))]`
    /// etc. — any `cfg` attribute naming `test`).
    fn find_test_mod_ranges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.toks.len() {
            if !self.toks[i].is_ident("mod") {
                continue;
            }
            // Find the mod body brace.
            let Some(name_idx) = self.next_sig(i) else {
                continue;
            };
            let Some(brace) = self.next_sig(name_idx) else {
                continue;
            };
            if self.toks[brace].kind != TokKind::Open(Delim::Brace) {
                continue;
            }
            // Walk attributes above the mod item looking for cfg(test).
            let start = self.item_start(i);
            let mut j = start;
            let mut is_test = false;
            while j < i {
                if self.toks[j].kind == TokKind::Punct && self.toks[j].text == "#" {
                    if let Some(open) = self.next_sig(j) {
                        if self.toks[open].kind == TokKind::Open(Delim::Bracket) {
                            let close = self.partner[open].unwrap_or(open);
                            let attr: Vec<&str> = self.toks[open + 1..close]
                                .iter()
                                .filter(|t| t.kind == TokKind::Ident)
                                .map(|t| t.text.as_str())
                                .collect();
                            if attr.first() == Some(&"cfg") && attr.contains(&"test") {
                                is_test = true;
                            }
                            j = close;
                        }
                    }
                }
                j += 1;
            }
            if is_test {
                out.push((brace, self.partner[brace].unwrap_or(brace)));
            }
        }
        out
    }
}

/// Matches delimiters: for each `Open`/`Close` token, the partner index.
fn match_delims(toks: &[Tok]) -> Vec<Option<usize>> {
    let mut partner = vec![None; toks.len()];
    let mut stack: Vec<(Delim, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Open(d) => stack.push((d, i)),
            TokKind::Close(d) => {
                // Pop to the matching delimiter class, tolerating
                // imbalance (the compiler will reject such code anyway).
                if let Some(pos) = stack.iter().rposition(|&(sd, _)| sd == d) {
                    let (_, open) = stack.remove(pos);
                    partner[open] = Some(i);
                    partner[i] = Some(open);
                }
            }
            _ => {}
        }
    }
    partner
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn use_tree_flattening_handles_groups_and_renames() {
        let f = SourceFile::parse(
            "t.rs",
            "use std::sync::{atomic::{AtomicUsize, Ordering as O}, Arc};\n\
             use core::sync::atomic as a;\n",
        );
        let paths = f.use_paths();
        let segs: Vec<Vec<&str>> = paths
            .iter()
            .map(|p| p.segments.iter().map(|s| s.as_str()).collect())
            .collect();
        assert!(segs.contains(&vec!["std", "sync", "atomic", "AtomicUsize"]));
        assert!(segs.contains(&vec!["std", "sync", "atomic", "Ordering"]));
        assert!(segs.contains(&vec!["std", "sync", "Arc"]));
        assert!(segs.contains(&vec!["core", "sync", "atomic"]));
        let renamed: Vec<_> = paths.iter().filter(|p| p.rename.is_some()).collect();
        assert_eq!(renamed.len(), 2);
        assert_eq!(renamed[0].rename.as_deref(), Some("O"));
        assert_eq!(renamed[1].rename.as_deref(), Some("a"));
    }

    #[test]
    fn multiline_use_is_one_item() {
        let f = SourceFile::parse(
            "t.rs",
            "use std::sync::atomic::{\n    AtomicUsize,\n    Ordering,\n};\n",
        );
        let paths = f.use_paths();
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().all(|p| p.segments.starts_with(&[
            "std".into(),
            "sync".into(),
            "atomic".into()
        ])));
    }

    #[test]
    fn fn_items_have_bodies_and_return_types() {
        let f = SourceFile::parse(
            "t.rs",
            "pub unsafe fn get(&self) -> *mut u8 { self.p }\nfn plain() { }\n",
        );
        let fns = f.fn_items();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "get");
        assert!(fns[0].is_unsafe);
        let (a, b) = fns[0].return_type;
        assert!(f.toks[a..b].iter().any(|t| t.text == "*"));
        assert!(!fns[1].is_unsafe);
    }

    #[test]
    fn loops_and_while_bodies() {
        let f = SourceFile::parse(
            "t.rs",
            "fn f() { loop { x(); } while a < b { y(); } while let Some(v) = it.next() { z(); } }",
        );
        let loops = f.loops();
        assert_eq!(loops.len(), 3);
    }

    #[test]
    fn cfg_test_mod_ranges_cover_test_code() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { unsafe { } }\n}\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.test_mod_ranges.len(), 1);
        let unsafe_idx = f.toks.iter().position(|t| t.is_ident("unsafe")).unwrap();
        assert!(f.in_test_mod(unsafe_idx));
    }

    #[test]
    fn attached_comments_see_statement_leaders_and_trailers() {
        let src = "fn f() {\n    // SAFETY: above the statement\n    let x = unsafe { g() };\n}\n";
        let f = SourceFile::parse("t.rs", src);
        let u = f.toks.iter().position(|t| t.is_ident("unsafe")).unwrap();
        assert!(f.has_adjacent_marker(u, None, "SAFETY:"));

        let src2 = "fn f() {\n    let y = 1;\n    let x = unsafe { g() }; // SAFETY: trailing\n}\n";
        let f2 = SourceFile::parse("t.rs", src2);
        let u2 = f2.toks.iter().position(|t| t.is_ident("unsafe")).unwrap();
        assert!(f2.has_adjacent_marker(u2, None, "SAFETY:"));

        let src3 = "fn f() {\n    // unrelated\n    let y = 1;\n    let x = unsafe { g() };\n}\n";
        let f3 = SourceFile::parse("t.rs", src3);
        let u3 = f3.toks.iter().position(|t| t.is_ident("unsafe")).unwrap();
        assert!(!f3.has_adjacent_marker(u3, None, "SAFETY:"));
    }
}
