//! Shim discipline: atomics must be imported through `valois_sync::shim`,
//! never straight from `std::sync::atomic` / `core::sync::atomic`. The
//! shim is what lets `--cfg loom` swap every atomic for its model-checked
//! equivalent; one stray direct import silently removes that code from
//! the model checker's view.
//!
//! This is the AST port of PR 1's line-based scan, closing its three known
//! false negatives:
//!
//! * **multi-line `use` items** — `use std::sync::\n    atomic::AtomicUsize;`
//!   never put the full path on one line;
//! * **`as` renames** — `use std::sync::atomic as a;` followed by
//!   `a::AtomicUsize` mentioned the path only once, on a line the scanner
//!   might have exempted;
//! * **grouped imports** — `use std::sync::{atomic::AtomicUsize, Arc};`
//!   hid the forbidden path inside a brace group.
//!
//! The lexer erases line structure and [`SourceFile::use_paths`] flattens
//! groups and renames, so all three now resolve to the same flattened
//! path prefix `std::sync::atomic` / `core::sync::atomic`.

use crate::passes::finding;
use crate::report::Finding;
use crate::source::SourceFile;

const RULE: &str = "shim-import";

/// Runs the pass over one file.
pub fn run(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();

    // 1. Flattened `use` paths: any import whose path starts with
    //    {std,core}::sync::atomic.
    for p in file.use_paths() {
        let segs: Vec<&str> = p.segments.iter().map(|s| s.as_str()).collect();
        if segs.len() >= 3
            && (segs[0] == "std" || segs[0] == "core")
            && segs[1] == "sync"
            && segs[2] == "atomic"
        {
            let shown = p.segments.join("::");
            let rename = p
                .rename
                .as_deref()
                .map(|r| format!(" (as `{r}`)"))
                .unwrap_or_default();
            out.push(finding(
                RULE,
                file,
                p.line,
                format!(
                    "direct import of `{shown}`{rename}; import through \
                     valois_sync::shim so `--cfg loom` can instrument it"
                ),
            ));
        }
    }

    // 2. Inline qualified paths (`std::sync::atomic::AtomicUsize::new(..)`)
    //    outside `use` items.
    let use_ranges = use_item_ranges(file);
    let toks = &file.toks;
    for i in 0..toks.len() {
        if !(toks[i].is_ident("std") || toks[i].is_ident("core")) {
            continue;
        }
        if use_ranges.iter().any(|&(lo, hi)| i >= lo && i <= hi) {
            continue;
        }
        // Match the significant-token sequence `:: sync :: atomic`.
        let mut j = i;
        let mut matched = true;
        for expect in ["::", "sync", "::", "atomic"] {
            if expect == "::" {
                for _ in 0..2 {
                    match file.next_sig(j) {
                        Some(n) if toks[n].text == ":" => j = n,
                        _ => {
                            matched = false;
                            break;
                        }
                    }
                }
            } else {
                match file.next_sig(j) {
                    Some(n) if toks[n].is_ident(expect) => j = n,
                    _ => matched = false,
                }
            }
            if !matched {
                break;
            }
        }
        if matched {
            out.push(finding(
                RULE,
                file,
                toks[i].line,
                format!(
                    "inline qualified `{}::sync::atomic` path; import through \
                     valois_sync::shim so `--cfg loom` can instrument it",
                    toks[i].text
                ),
            ));
        }
    }
    out
}

/// Token index ranges `[use_kw, semicolon]` of every `use` item (shared
/// with the `probe-discipline` pass, which needs the same "already
/// reported as an import" suppression).
pub(crate) fn use_item_ranges(file: &SourceFile) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let toks = &file.toks;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("use") {
            let mut depth = 0usize;
            let mut j = i + 1;
            while j < toks.len() {
                use crate::lexer::{Delim, TokKind};
                match toks[j].kind {
                    TokKind::Open(Delim::Brace) => depth += 1,
                    TokKind::Close(Delim::Brace) => depth = depth.saturating_sub(1),
                    TokKind::Punct if toks[j].text == ";" && depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            out.push((i, j));
            i = j;
        }
        i += 1;
    }
    out
}
