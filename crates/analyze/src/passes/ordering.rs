//! Ordering discipline: `Ordering::Relaxed` on a pointer-valued atomic is
//! almost always a protocol bug — the §5 counted-link protocol hangs
//! correctness on acquire/release pairs around pointer publication. A
//! relaxed pointer operation must carry an adjacent `// ORDER:` comment
//! justifying it.
//!
//! The AST port improves on PR 1's line scan in two ways: a statement
//! split over several lines (builder chains, wrapped arguments) is seen
//! as one unit, and an `Ordering` renamed by `use ... as O` is still
//! recognized via the file's use-tree.

use crate::lexer::TokKind;
use crate::passes::finding;
use crate::report::Finding;
use crate::source::SourceFile;

const RULE: &str = "relaxed-ptr-order";

/// Runs the pass over one file.
pub fn run(file: &SourceFile) -> Vec<Finding> {
    let toks = &file.toks;
    let ptr_fields = pointer_atomic_fields(file);
    let ordering_names = ordering_aliases(file);
    let mut out = Vec::new();

    for i in 0..toks.len() {
        // Match `<OrderingAlias> :: Relaxed`.
        if !(toks[i].kind == TokKind::Ident && ordering_names.iter().any(|n| n == &toks[i].text)) {
            continue;
        }
        let Some(c1) = file.next_sig(i) else { continue };
        let Some(c2) = file.next_sig(c1) else {
            continue;
        };
        let Some(r) = file.next_sig(c2) else { continue };
        if !(toks[c1].text == ":" && toks[c2].text == ":" && toks[r].is_ident("Relaxed")) {
            continue;
        }
        if !statement_touches_pointer_atomic(file, i, &ptr_fields) {
            continue;
        }
        if file.has_adjacent_marker(r, Some(toks[r].line.saturating_sub(1)), "ORDER:")
            || file.has_adjacent_marker(r, Some(toks[r].line.saturating_sub(2)), "ORDER:")
        {
            continue;
        }
        out.push(finding(
            RULE,
            file,
            toks[r].line,
            "Ordering::Relaxed on a pointer-valued atomic without an adjacent \
             `// ORDER:` justification"
                .to_string(),
        ));
    }
    out
}

/// Names that refer to the `Ordering` enum in this file: `Ordering`
/// itself plus any `use ...::Ordering as X` rename.
fn ordering_aliases(file: &SourceFile) -> Vec<String> {
    let mut names = vec!["Ordering".to_string()];
    for p in file.use_paths() {
        if p.segments.last().is_some_and(|s| s == "Ordering") {
            if let Some(r) = &p.rename {
                if !names.contains(r) {
                    names.push(r.clone());
                }
            }
        }
    }
    names
}

/// Field/binding identifiers declared with an `AtomicPtr` type: the token
/// pattern `ident : AtomicPtr <`.
fn pointer_atomic_fields(file: &SourceFile) -> Vec<String> {
    let toks = &file.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("AtomicPtr") {
            continue;
        }
        let Some(colon2) = file.prev_sig(i) else {
            continue;
        };
        if toks[colon2].text != ":" {
            continue;
        }
        // Skip a `::`-qualified path (`atomic::AtomicPtr`): the char
        // before must be a single colon, i.e. its predecessor is not ':'.
        let Some(before) = file.prev_sig(colon2) else {
            continue;
        };
        let name_idx = if toks[before].text == ":" {
            // `path :: AtomicPtr` — keep walking: `ident : path :: AtomicPtr`
            let Some(path_start) = file.prev_sig(before) else {
                continue;
            };
            let Some(colon) = file.prev_sig(path_start) else {
                continue;
            };
            if toks[colon].text != ":" {
                continue;
            }
            let Some(pc) = file.prev_sig(colon) else {
                continue;
            };
            if toks[pc].text == ":" {
                continue; // deeper path; give up on this shape
            }
            pc
        } else {
            before
        };
        if toks[name_idx].kind == TokKind::Ident {
            let name = toks[name_idx].text.clone();
            if !out.contains(&name) {
                out.push(name);
            }
        }
    }
    out
}

/// Whether the statement containing token `i` names `AtomicPtr` directly
/// or accesses (`.field`) a tracked pointer-atomic field.
fn statement_touches_pointer_atomic(file: &SourceFile, i: usize, fields: &[String]) -> bool {
    let toks = &file.toks;
    let start = file.stmt_start(i);
    // Statement end: next `;` or brace at this nesting.
    let mut end = i;
    for (j, t) in toks.iter().enumerate().skip(i) {
        match t.kind {
            TokKind::Punct if t.text == ";" => {
                end = j;
                break;
            }
            TokKind::Open(crate::lexer::Delim::Brace)
            | TokKind::Close(crate::lexer::Delim::Brace) => {
                end = j;
                break;
            }
            _ => end = j,
        }
    }
    for j in start..=end.min(toks.len() - 1) {
        if toks[j].is_ident("AtomicPtr") {
            return true;
        }
        if toks[j].kind == TokKind::Ident
            && fields.iter().any(|f| f == &toks[j].text)
            && file
                .prev_sig(j)
                .is_some_and(|p| toks[p].kind == TokKind::Punct && toks[p].text == ".")
        {
            return true;
        }
    }
    false
}
