//! The acquire/release ordering graph (`order-pairing`, `seqcst-fence`,
//! `invariant-ref`, `relaxed-ptr-order`).
//!
//! The §5 protocol publishes counted links with Release writes and
//! re-reads them with Acquire loads; the safety argument is precisely
//! that those two sides *pair* on each atomic location. This pass makes
//! the graph explicit: it collects every atomic operation and fence with
//! its `Ordering` literal, groups operations workspace-wide by the
//! location they touch (the field name receiving the `.store`/`.load`
//! call), and reports:
//!
//! * `order-pairing` — a location written with Release (or stronger) but
//!   never read with Acquire anywhere in the workspace, or read with
//!   Acquire but never written with Release, while the other side *does*
//!   access it with a weaker ordering. Grouping by field name is
//!   deliberately coarse — distinct fields sharing a name are merged,
//!   which only ever *suppresses* findings, never invents them.
//! * `seqcst-fence` — a SeqCst fence or atomic op with no adjacent
//!   `// ORDER:` justification; a fence must *additionally* cite the
//!   PROTOCOL.md invariant it enforces via `// INVARIANT: I<n>` (PR 5's
//!   I8 fence-pairing argument becomes a machine-checked cross-reference).
//! * `invariant-ref` — any `// INVARIANT: I<n>` comment whose number does
//!   not resolve to an invariant actually defined in docs/PROTOCOL.md.
//! * `relaxed-ptr-order` — `Ordering::Relaxed` on a pointer-valued atomic
//!   with no adjacent `// ORDER:` justification. Folded here from the
//!   legacy token pass (`passes/ordering.rs`, deleted) so every ordering
//!   rule reads from the one collected site list; the rule id is
//!   unchanged for SARIF consumers (see docs/ANALYSIS.md, "Migration").
//!
//! An adjacent `// ORDER:` comment exempts a site from the pairing and
//! SeqCst rules (the author has made the argument in prose); the
//! invariant cross-reference is never exempt — a stale reference is
//! always an error.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Delim, TokKind};
use crate::report::{rule_info, Finding, Related};
use crate::source::SourceFile;

/// Methods that publish (write) a value into an atomic location.
const WRITE_METHODS: &[&str] = &[
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
];

/// Methods that observe (read) an atomic location. RMWs appear in both
/// lists: they carry both sides of a pairing.
const READ_METHODS: &[&str] = &[
    "load",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
];

/// One atomic operation or fence site, as collected per file.
#[derive(Debug, Clone)]
pub struct OpSite {
    /// Workspace-relative file label.
    pub file: String,
    /// 1-based line of the `Ordering::X` literal.
    pub line: usize,
    /// Location name: the field/binding receiving the call, or
    /// `"<fence>"` for fences, `"<free>"` when no receiver is visible.
    pub location: String,
    /// Method name (`store`, `load`, `fence`, ...).
    pub method: String,
    /// Ordering literal (`Relaxed`, `Acquire`, `Release`, `AcqRel`,
    /// `SeqCst`).
    pub ordering: String,
    /// An adjacent `// ORDER:` justification exists.
    pub has_order: bool,
    /// `I<n>` numbers cited by adjacent `// INVARIANT:` comments.
    pub invariants: Vec<u32>,
    /// The enclosing statement names `AtomicPtr` or accesses a field
    /// declared with an `AtomicPtr` type (drives `relaxed-ptr-order`).
    pub ptr_stmt: bool,
}

impl OpSite {
    fn is_fence(&self) -> bool {
        self.method == "fence"
    }
    fn writes_release(&self) -> bool {
        WRITE_METHODS.contains(&self.method.as_str())
            && matches!(self.ordering.as_str(), "Release" | "AcqRel" | "SeqCst")
    }
    fn reads_acquire(&self) -> bool {
        READ_METHODS.contains(&self.method.as_str())
            && matches!(self.ordering.as_str(), "Acquire" | "AcqRel" | "SeqCst")
    }
    fn writes(&self) -> bool {
        WRITE_METHODS.contains(&self.method.as_str())
    }
    fn reads(&self) -> bool {
        READ_METHODS.contains(&self.method.as_str())
    }
}

/// Names aliasing the `Ordering` enum in this file.
fn ordering_aliases(file: &SourceFile) -> Vec<String> {
    let mut names = vec!["Ordering".to_string()];
    for p in file.use_paths() {
        if p.segments.last().is_some_and(|s| s == "Ordering") {
            if let Some(r) = &p.rename {
                if !names.contains(r) {
                    names.push(r.clone());
                }
            }
        }
    }
    names
}

/// Collects every atomic-op/fence site in `file` (test modules skipped).
pub fn collect(file: &SourceFile) -> Vec<OpSite> {
    let toks = &file.toks;
    let aliases = ordering_aliases(file);
    let ptr_fields = pointer_atomic_fields(file);
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident && aliases.iter().any(|n| n == &toks[i].text)) {
            continue;
        }
        if file.in_test_mod(i) {
            continue;
        }
        let Some(c1) = file.next_sig(i) else { continue };
        let Some(c2) = file.next_sig(c1) else {
            continue;
        };
        let Some(o) = file.next_sig(c2) else { continue };
        if !(toks[c1].text == ":" && toks[c2].text == ":" && toks[o].kind == TokKind::Ident) {
            continue;
        }
        let ordering = toks[o].text.clone();
        if !matches!(
            ordering.as_str(),
            "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"
        ) {
            continue;
        }
        let Some((method_idx, _open)) = enclosing_call(file, i) else {
            continue;
        };
        let method = toks[method_idx].text.clone();
        let location = if method == "fence" {
            "<fence>".to_string()
        } else {
            receiver_of(file, method_idx).unwrap_or_else(|| "<free>".to_string())
        };
        // Adjacency: comments attached to the call statement, plus the
        // one or two lines above the ordering literal (multi-line calls).
        let line = toks[o].line;
        let attached = file.attached_comments(method_idx, Some(line));
        let mut text: String = attached
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        for extra in [line.saturating_sub(1), line.saturating_sub(2)] {
            for t in toks.iter().filter(|t| t.is_comment() && t.line == extra) {
                text.push(' ');
                text.push_str(&t.text);
            }
        }
        let has_order = text.contains("ORDER:");
        let invariants = invariant_numbers(&text);
        out.push(OpSite {
            file: file.label.clone(),
            line,
            location,
            method,
            ordering,
            has_order,
            invariants,
            ptr_stmt: statement_touches_pointer_atomic(file, i, &ptr_fields),
        });
    }
    out
}

/// Field/binding identifiers declared with an `AtomicPtr` type: the token
/// pattern `ident : [path ::] AtomicPtr <`.
fn pointer_atomic_fields(file: &SourceFile) -> Vec<String> {
    let toks = &file.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("AtomicPtr") {
            continue;
        }
        let Some(colon2) = file.prev_sig(i) else {
            continue;
        };
        if toks[colon2].text != ":" {
            continue;
        }
        let Some(before) = file.prev_sig(colon2) else {
            continue;
        };
        let name_idx = if toks[before].text == ":" {
            // `path :: AtomicPtr` — keep walking: `ident : path :: AtomicPtr`
            let Some(path_start) = file.prev_sig(before) else {
                continue;
            };
            let Some(colon) = file.prev_sig(path_start) else {
                continue;
            };
            if toks[colon].text != ":" {
                continue;
            }
            let Some(pc) = file.prev_sig(colon) else {
                continue;
            };
            if toks[pc].text == ":" {
                continue; // deeper path; give up on this shape
            }
            pc
        } else {
            before
        };
        if toks[name_idx].kind == TokKind::Ident {
            let name = toks[name_idx].text.clone();
            if !out.contains(&name) {
                out.push(name);
            }
        }
    }
    out
}

/// Whether the statement containing token `i` names `AtomicPtr` directly
/// or accesses (`.field`) a tracked pointer-atomic field.
fn statement_touches_pointer_atomic(file: &SourceFile, i: usize, fields: &[String]) -> bool {
    let toks = &file.toks;
    let start = file.stmt_start(i);
    // Statement end: next `;` or brace at this nesting.
    let mut end = i;
    for (j, t) in toks.iter().enumerate().skip(i) {
        match t.kind {
            TokKind::Punct if t.text == ";" => {
                end = j;
                break;
            }
            TokKind::Open(Delim::Brace) | TokKind::Close(Delim::Brace) => {
                end = j;
                break;
            }
            _ => end = j,
        }
    }
    for j in start..=end.min(toks.len() - 1) {
        if toks[j].is_ident("AtomicPtr") {
            return true;
        }
        if toks[j].kind == TokKind::Ident
            && fields.iter().any(|f| f == &toks[j].text)
            && file
                .prev_sig(j)
                .is_some_and(|p| toks[p].kind == TokKind::Punct && toks[p].text == ".")
        {
            return true;
        }
    }
    false
}

/// `relaxed-ptr-order`: a Relaxed op whose statement touches a
/// pointer-valued atomic and carries no `// ORDER:` justification. The §5
/// counted-link protocol hangs correctness on acquire/release pairs
/// around pointer publication.
pub fn relaxed_findings(sites: &[OpSite]) -> Vec<Finding> {
    sites
        .iter()
        .filter(|s| s.ordering == "Relaxed" && s.ptr_stmt && !s.has_order)
        .map(|s| {
            mk_finding(
                "relaxed-ptr-order",
                &s.file,
                s.line,
                "Ordering::Relaxed on a pointer-valued atomic without an adjacent \
                 `// ORDER:` justification"
                    .to_string(),
            )
        })
        .collect()
}

/// The innermost call enclosing token `i`: returns the callee-name token
/// and the opening paren.
fn enclosing_call(file: &SourceFile, i: usize) -> Option<(usize, usize)> {
    let toks = &file.toks;
    let mut depth = 0usize;
    let mut j = i;
    while j > 0 {
        j -= 1;
        match toks[j].kind {
            TokKind::Close(Delim::Paren) => depth += 1,
            TokKind::Open(Delim::Paren) => {
                if depth == 0 {
                    let name = file.prev_sig(j)?;
                    if toks[name].kind == TokKind::Ident {
                        return Some((name, j));
                    }
                    return None;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    None
}

/// The receiver of a `.method(...)` call: the identifier just before the
/// dot (e.g. `head` in `self.head.store(..)`, `next` in
/// `(*p).next.load(..)`). An index expression names its base (`slots` in
/// `self.slots[me].load(..)` — the slot *array* is the location, the
/// index picks an element of it); a call result names the callee.
fn receiver_of(file: &SourceFile, method_idx: usize) -> Option<String> {
    let toks = &file.toks;
    let dot = file.prev_sig(method_idx)?;
    if !(toks[dot].kind == TokKind::Punct && toks[dot].text == ".") {
        return None;
    }
    let mut r = file.prev_sig(dot)?;
    // Jump over trailing `[index]` / `(args)` groups to the base.
    while let TokKind::Close(_) = toks[r].kind {
        let open = (0..r).rev().find(|&j| file.partner[j] == Some(r))?;
        r = file.prev_sig(open)?;
    }
    (toks[r].kind == TokKind::Ident).then(|| toks[r].text.clone())
}

/// `I<n>` numbers cited after `INVARIANT:` markers in `text`. Byte-wise
/// scan (comments may contain any UTF-8): every `I<digits>` occurrence
/// after the first marker counts — citations routinely name the partner
/// invariant too (`I9 ... preserves I8`).
fn invariant_numbers(text: &str) -> Vec<u32> {
    let Some(pos) = text.find("INVARIANT:") else {
        return Vec::new();
    };
    let bytes = &text.as_bytes()[pos + "INVARIANT:".len()..];
    let mut out = Vec::new();
    let mut k = 0;
    while k < bytes.len() {
        if bytes[k] == b'I' && k + 1 < bytes.len() && bytes[k + 1].is_ascii_digit() {
            let mut n = 0u32;
            k += 1;
            while k < bytes.len() && bytes[k].is_ascii_digit() {
                n = n
                    .saturating_mul(10)
                    .saturating_add((bytes[k] - b'0') as u32);
                k += 1;
            }
            if !out.contains(&n) {
                out.push(n);
            }
        } else {
            k += 1;
        }
    }
    out
}

fn mk_finding(rule: &'static str, file: &str, line: usize, message: String) -> Finding {
    let info = rule_info(rule).expect("registered rule");
    Finding {
        rule,
        severity: info.severity,
        file: file.to_string(),
        line,
        message,
        related: Vec::new(),
    }
}

/// Per-site SeqCst checks (run per file; no workspace context needed).
pub fn seqcst_findings(sites: &[OpSite]) -> Vec<Finding> {
    let mut out = Vec::new();
    for s in sites {
        if s.ordering != "SeqCst" {
            continue;
        }
        if s.is_fence() {
            if !s.has_order {
                out.push(mk_finding(
                    "seqcst-fence",
                    &s.file,
                    s.line,
                    "undocumented SeqCst fence: add an adjacent `// ORDER:` comment \
                     stating which two accesses it globally orders"
                        .into(),
                ));
            } else if s.invariants.is_empty() {
                out.push(mk_finding(
                    "seqcst-fence",
                    &s.file,
                    s.line,
                    "SeqCst fence cites no protocol invariant: add \
                     `// INVARIANT: I<n>` referencing the docs/PROTOCOL.md invariant \
                     this fence enforces"
                        .into(),
                ));
            }
        } else if !s.has_order {
            out.push(mk_finding(
                "seqcst-fence",
                &s.file,
                s.line,
                format!(
                    "`{}` uses Ordering::SeqCst without an adjacent `// ORDER:` \
                     justification; prefer Acquire/Release with an argument, or \
                     document why sequential consistency is required",
                    s.method
                ),
            ));
        }
    }
    out
}

/// Checks every `// INVARIANT: I<n>` comment in `file` against the set of
/// invariants defined in docs/PROTOCOL.md. `None` (no PROTOCOL.md found)
/// skips the check — unit tests and fixtures run without a docs tree.
pub fn invariant_findings(file: &SourceFile, defined: Option<&BTreeSet<u32>>) -> Vec<Finding> {
    let Some(defined) = defined else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for t in file.toks.iter().filter(|t| t.is_comment()) {
        if !t.text.contains("INVARIANT:") {
            continue;
        }
        let cited = invariant_numbers(&t.text);
        if cited.is_empty() {
            out.push(mk_finding(
                "invariant-ref",
                &file.label,
                t.line,
                "`// INVARIANT:` comment cites no `I<n>` number; reference the \
                 docs/PROTOCOL.md invariant it relies on"
                    .into(),
            ));
        }
        for n in cited {
            if !defined.contains(&n) {
                out.push(mk_finding(
                    "invariant-ref",
                    &file.label,
                    t.line,
                    format!(
                        "stale invariant reference: `I{n}` is not defined in \
                         docs/PROTOCOL.md (defined: {})",
                        defined
                            .iter()
                            .map(|i| format!("I{i}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                ));
            }
        }
    }
    out
}

/// Workspace-wide pairing check over every collected site.
pub fn pairing_findings(sites: &[OpSite]) -> Vec<Finding> {
    let mut by_loc: BTreeMap<&str, Vec<&OpSite>> = BTreeMap::new();
    for s in sites {
        if s.is_fence() || s.location == "<free>" {
            continue;
        }
        by_loc.entry(&s.location).or_default().push(s);
    }
    let mut out = Vec::new();
    for (loc, group) in by_loc {
        let has_acquire_read = group.iter().any(|s| s.reads_acquire());
        let has_release_write = group.iter().any(|s| s.writes_release());
        let reads: Vec<&&OpSite> = group.iter().filter(|s| s.reads()).collect();
        let writes: Vec<&&OpSite> = group.iter().filter(|s| s.writes()).collect();
        if !has_acquire_read && !reads.is_empty() {
            // Release writes exist, readers exist, none acquires.
            if let Some(w) = group.iter().find(|s| s.writes_release() && !s.has_order) {
                let mut f = mk_finding(
                    "order-pairing",
                    &w.file,
                    w.line,
                    format!(
                        "atomic location `{loc}` is written with {} here but no read \
                         of `{loc}` anywhere in the workspace uses Acquire; the \
                         release publication is never synchronized with",
                        w.ordering
                    ),
                );
                f.related = reads
                    .iter()
                    .take(3)
                    .map(|r| Related {
                        file: r.file.clone(),
                        line: r.line,
                        note: format!("`{loc}` read with {} here", r.ordering),
                    })
                    .collect();
                out.push(f);
            }
        }
        if !has_release_write && !writes.is_empty() {
            // Acquire reads exist, writers exist, none releases.
            if let Some(r) = group.iter().find(|s| s.reads_acquire() && !s.has_order) {
                let mut f = mk_finding(
                    "order-pairing",
                    &r.file,
                    r.line,
                    format!(
                        "atomic location `{loc}` is read with {} here but no write \
                         of `{loc}` anywhere in the workspace uses Release; there is \
                         no publication for this acquire to pair with",
                        r.ordering
                    ),
                );
                f.related = writes
                    .iter()
                    .take(3)
                    .map(|w| Related {
                        file: w.file.clone(),
                        line: w.line,
                        note: format!("`{loc}` written with {} here", w.ordering),
                    })
                    .collect();
                out.push(f);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(src: &str) -> Vec<OpSite> {
        collect(&SourceFile::parse("t.rs", src))
    }

    #[test]
    fn collects_receiver_method_and_ordering() {
        let s = sites(
            "fn f(&self) {\n\
                self.head.store(p, Ordering::Release);\n\
                let v = self.head.load(Ordering::Acquire);\n\
            }",
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].location, "head");
        assert_eq!(s[0].method, "store");
        assert_eq!(s[0].ordering, "Release");
        assert_eq!(s[1].method, "load");
        assert_eq!(s[1].ordering, "Acquire");
    }

    #[test]
    fn fence_and_order_comment_are_recognized() {
        let s = sites(
            "fn f() {\n\
                // ORDER: pairs the retire-side list walk. INVARIANT: I8.\n\
                fence(Ordering::SeqCst);\n\
            }",
        );
        assert_eq!(s.len(), 1);
        assert!(s[0].is_fence());
        assert!(s[0].has_order);
        assert_eq!(s[0].invariants, vec![8]);
        assert_eq!(seqcst_findings(&s), vec![]);
    }

    #[test]
    fn undocumented_seqcst_fence_is_reported() {
        let s = sites("fn f() { fence(Ordering::SeqCst); }");
        let f = seqcst_findings(&s);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("undocumented SeqCst fence"));
    }

    #[test]
    fn documented_fence_without_invariant_is_reported() {
        let s = sites(
            "fn f() {\n\
                // ORDER: global order with the other fence.\n\
                fence(Ordering::SeqCst);\n\
            }",
        );
        let f = seqcst_findings(&s);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("INVARIANT"));
    }

    #[test]
    fn unpaired_release_is_reported_with_related_reads() {
        let s = sites(
            "fn f(&self) {\n\
                self.flag.store(true, Ordering::Release);\n\
                let v = self.flag.load(Ordering::Relaxed);\n\
            }",
        );
        let f = pairing_findings(&s);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "order-pairing");
        assert!(f[0].message.contains("never synchronized"));
        assert_eq!(f[0].related.len(), 1);
        assert_eq!(f[0].related[0].line, 3);
    }

    #[test]
    fn paired_release_acquire_is_clean() {
        let s = sites(
            "fn f(&self) {\n\
                self.flag.store(true, Ordering::Release);\n\
                let v = self.flag.load(Ordering::Acquire);\n\
            }",
        );
        assert_eq!(pairing_findings(&s), vec![]);
    }

    #[test]
    fn unpaired_acquire_is_reported() {
        let s = sites(
            "fn f(&self) {\n\
                self.flag.store(true, Ordering::Relaxed);\n\
                let v = self.flag.load(Ordering::Acquire);\n\
            }",
        );
        let f = pairing_findings(&s);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("no publication"));
    }

    #[test]
    fn order_comment_exempts_pairing() {
        let s = sites(
            "fn f(&self) {\n\
                // ORDER: counter, not a publication; readers are statistical.\n\
                self.flag.store(true, Ordering::Release);\n\
                let v = self.flag.load(Ordering::Relaxed);\n\
            }",
        );
        assert_eq!(pairing_findings(&s), vec![]);
    }

    #[test]
    fn stale_invariant_reference_is_reported() {
        let file = SourceFile::parse(
            "t.rs",
            "fn f() {\n\
                // INVARIANT: I99 keeps this sound.\n\
                let x = 1;\n\
            }",
        );
        let defined: BTreeSet<u32> = (1..=8).collect();
        let f = invariant_findings(&file, Some(&defined));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "invariant-ref");
        assert!(f[0].message.contains("I99"));
    }

    #[test]
    fn valid_invariant_reference_is_clean() {
        let file = SourceFile::parse("t.rs", "// INVARIANT: I8.\nfn f() {}\n");
        let defined: BTreeSet<u32> = (1..=8).collect();
        assert_eq!(invariant_findings(&file, Some(&defined)), vec![]);
    }

    #[test]
    fn rmw_counts_as_both_sides() {
        let s = sites(
            "fn f(&self) {\n\
                let old = self.count.fetch_add(1, Ordering::AcqRel);\n\
            }",
        );
        assert_eq!(pairing_findings(&s), vec![]);
    }

    #[test]
    fn relaxed_on_pointer_atomic_is_reported() {
        let s = sites(
            "struct L { head: AtomicPtr<Node> }\n\
             fn f(l: &L) {\n\
                let p = l.head.load(Ordering::Relaxed);\n\
             }",
        );
        let f = relaxed_findings(&s);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "relaxed-ptr-order");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn order_comment_exempts_relaxed_pointer_op() {
        let s = sites(
            "struct L { head: AtomicPtr<Node> }\n\
             fn f(l: &L) {\n\
                // ORDER: revalidated under the CAS before any deref.\n\
                let p = l.head.load(Ordering::Relaxed);\n\
             }",
        );
        assert_eq!(relaxed_findings(&s), vec![]);
    }

    #[test]
    fn relaxed_on_plain_counter_is_clean() {
        let s = sites(
            "struct L { count: AtomicUsize }\n\
             fn f(l: &L) {\n\
                let c = l.count.load(Ordering::Relaxed);\n\
             }",
        );
        assert_eq!(relaxed_findings(&s), vec![]);
    }

    #[test]
    fn test_mod_sites_are_skipped() {
        let s = sites(
            "#[cfg(test)]\n\
            mod tests {\n\
                fn f(&self) { self.flag.store(true, Ordering::Release); }\n\
            }",
        );
        assert_eq!(s.len(), 0);
    }
}
