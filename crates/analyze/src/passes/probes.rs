//! Probe discipline: flight-recorder probes must go through the
//! `valois_trace::probe!` macro, never a direct `valois_trace::record`
//! call. The macro expands to `if valois_trace::ENABLED { record(..) }`
//! with `ENABLED` a `const` of the *defining* crate, so with the
//! `recorder` feature off the branch — and every argument expression —
//! folds away to nothing. A bare `record(...)` call defeats exactly that:
//! its arguments (pointer casts, counter reads) are evaluated on the hot
//! path even when the recorder is compiled out, which is how a
//! "zero-cost when off" observability layer quietly stops being one.
//!
//! Flagged forms:
//!
//! * `use valois_trace::record;` (any import of the function, renames
//!   included) — an imported `record` is about to be called bare;
//! * the inline qualified call path `valois_trace::record(...)`.
//!
//! The macro definition itself lives in `crates/trace`, which the driver
//! exempts by path.

use crate::passes::finding;
use crate::report::Finding;
use crate::source::SourceFile;

const RULE: &str = "probe-discipline";

/// Runs the pass over one file.
pub fn run(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();

    // 1. Flattened `use` paths: any import of `valois_trace::record`.
    for p in file.use_paths() {
        let segs: Vec<&str> = p.segments.iter().map(|s| s.as_str()).collect();
        if segs == ["valois_trace", "record"] {
            let rename = p
                .rename
                .as_deref()
                .map(|r| format!(" (as `{r}`)"))
                .unwrap_or_default();
            out.push(finding(
                RULE,
                file,
                p.line,
                format!(
                    "import of `valois_trace::record`{rename}; hot-path probes \
                     must use the `valois_trace::probe!` macro so probe \
                     arguments are not evaluated when the recorder is off"
                ),
            ));
        }
    }

    // 2. Inline qualified calls: the significant-token sequence
    //    `valois_trace :: record` outside `use` items (imports were
    //    already reported above).
    let use_ranges = crate::passes::shim::use_item_ranges(file);
    let toks = &file.toks;
    for i in 0..toks.len() {
        if !toks[i].is_ident("valois_trace") {
            continue;
        }
        if use_ranges.iter().any(|&(lo, hi)| i >= lo && i <= hi) {
            continue;
        }
        let mut j = i;
        let mut matched = true;
        for expect in [":", ":", "record"] {
            match file.next_sig(j) {
                Some(n) if expect == ":" && toks[n].text == ":" => j = n,
                Some(n) if expect != ":" && toks[n].is_ident(expect) => j = n,
                _ => {
                    matched = false;
                    break;
                }
            }
        }
        if matched {
            out.push(finding(
                RULE,
                file,
                toks[i].line,
                "direct call to `valois_trace::record`; hot-path probes must \
                 use the `valois_trace::probe!` macro so probe arguments are \
                 not evaluated when the recorder is off"
                    .to_string(),
            ));
        }
    }
    out
}
