//! Refcount pairing: a function that *acquires* counted references
//! (`safe_read`, `safe_read_tallied`, `alloc`) must also *release or
//! transfer* them (`release`, `release_into`, `release_deferred`,
//! `drain_deferred`, `reclaim_detached`, `push_free`, `push_free_global`,
//! `splice_free_global`, `swing`, `store_link`), hand them to the caller
//! (a raw-pointer-returning signature — the §5 convention for "returns a
//! counted reference"), or carry an explicit `// COUNT:` comment naming
//! where the count goes.
//!
//! This is a conservative intraprocedural check: it does not prove
//! path-sensitive balance (that is the loom models' and the refcount
//! exactness tests' job), it catches the *shape* of the bug Träff & Pöter
//! observed in reproductions of this protocol — a counted read whose
//! release was simply forgotten — and it forces the deferred-release and
//! magazine transfer paths to be documented where they happen.
//!
//! `#[cfg(test)]` modules are exempt by scope.

use crate::lexer::TokKind;
use crate::passes::finding;
use crate::report::Finding;
use crate::source::SourceFile;

const RULE: &str = "refcount-pairing";

/// Calls that acquire a counted reference.
const ACQUIRES: &[&str] = &["safe_read", "safe_read_tallied", "alloc"];

/// Calls that release or transfer counted references.
const RELEASES: &[&str] = &[
    "release",
    "release_into",
    "release_deferred",
    "drain_deferred",
    "reclaim_detached",
    "push_free",
    "push_free_global",
    "splice_free_global",
    "swing",
    "store_link",
    // Backend-neutral process-reference releases (refcount: decrement;
    // epoch: no-op — the balance being checked is the refcount arm's).
    "unprotect",
    "unprotect_deferred",
];

/// Runs the pass over one file.
pub fn run(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in file.fn_items() {
        let Some((open, close)) = f.body else {
            continue;
        };
        if file.in_test_mod(f.fn_idx) {
            continue;
        }
        let acquired: Vec<&str> = calls_in(file, open, close, ACQUIRES);
        if acquired.is_empty() {
            continue;
        }
        if !calls_in(file, open, close, RELEASES).is_empty() {
            continue;
        }
        // Transfer to caller: raw-pointer-bearing return type.
        let (rlo, rhi) = f.return_type;
        if file.toks[rlo..rhi]
            .iter()
            .any(|t| t.kind == TokKind::Punct && t.text == "*")
        {
            continue;
        }
        // Explicit justification: `// COUNT:` anywhere in the body or in
        // the item's leading comments.
        let item_start = file.item_start(f.fn_idx);
        let has_count = file.toks[open..=close]
            .iter()
            .any(|t| t.is_comment() && t.text.contains("COUNT:"))
            || file
                .leading_item_comments(item_start)
                .iter()
                .any(|t| t.text.contains("COUNT:"));
        if has_count {
            continue;
        }
        out.push(finding(
            RULE,
            file,
            f.line,
            format!(
                "fn `{}` acquires counted references ({}) but never releases or \
                 transfers them; release them, return the raw pointer, or add a \
                 `// COUNT:` comment naming where the count goes",
                f.name,
                acquired.join(", ")
            ),
        ));
    }
    out
}

/// Distinct names from `names` that are called (`name(`) inside the token
/// range `(open, close)`.
fn calls_in<'a>(file: &SourceFile, open: usize, close: usize, names: &[&'a str]) -> Vec<&'a str> {
    let toks = &file.toks;
    let mut seen = Vec::new();
    for i in open + 1..close {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let Some(&name) = names.iter().find(|n| toks[i].is_ident(n)) else {
            continue;
        };
        let is_call = file
            .next_sig(i)
            .is_some_and(|n| toks[n].kind == TokKind::Open(crate::lexer::Delim::Paren));
        if is_call && !seen.contains(&name) {
            seen.push(name);
        }
    }
    seen
}
