//! The lint passes. Each pass is a pure function from a parsed
//! [`SourceFile`](crate::source::SourceFile) to findings; path-based
//! exemptions (the shim directory, the baseline crate) are applied by the
//! driver in [`crate::analyze_source`], so the passes themselves stay
//! testable on bare snippets.

pub mod probes;
pub mod progress;
pub mod refcount;
pub mod shim;
pub mod unsafe_audit;

pub mod balance;
pub mod order_graph;
pub mod protection;

use crate::report::{rule_info, Finding, Related};
use crate::source::SourceFile;

/// Builds a finding for `rule` with its registered severity.
pub(crate) fn finding(
    rule: &'static str,
    file: &SourceFile,
    line: usize,
    message: String,
) -> Finding {
    let info = rule_info(rule).expect("rule must be registered in report::RULES");
    Finding {
        rule,
        severity: info.severity,
        file: file.label.clone(),
        line,
        message,
        related: Vec::new(),
    }
}

/// Builds a finding with secondary locations attached.
pub(crate) fn finding_with_related(
    rule: &'static str,
    file: &SourceFile,
    line: usize,
    message: String,
    related: Vec<Related>,
) -> Finding {
    let mut f = finding(rule, file, line, message);
    f.related = related;
    f
}
