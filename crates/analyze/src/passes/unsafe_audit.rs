//! Unsafe audit: every `unsafe` block, `unsafe fn`, `unsafe impl`, and
//! `unsafe trait` in library code must carry an adjacent justification —
//! a `// SAFETY:` comment (block/impl/trait/fn) or, for an `unsafe fn`,
//! a `# Safety` section in its doc comment. The §5 protocol's entire
//! safety argument is the reference-counting invariant; the audit makes
//! each site state *which* part of the invariant it leans on.
//!
//! `#[cfg(test)]` modules are exempt by scope (consistent with the other
//! passes: tests exercise the protocol but are not part of its surface).

use crate::lexer::{Delim, TokKind};
use crate::passes::finding;
use crate::report::Finding;
use crate::source::SourceFile;

const RULE: &str = "unsafe-comment";

/// Runs the pass over one file.
pub fn run(file: &SourceFile) -> Vec<Finding> {
    let toks = &file.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("unsafe") || file.in_test_mod(i) {
            continue;
        }
        let Some(mut n) = file.next_sig(i) else {
            continue;
        };
        // `unsafe extern "C" fn item` — skip forward to the `fn`.
        if toks[n].is_ident("extern") {
            let Some(m) = file.next_sig(n) else { continue };
            let m = if toks[m].kind == TokKind::Literal {
                match file.next_sig(m) {
                    Some(x) => x,
                    None => continue,
                }
            } else {
                m
            };
            n = m;
        }
        match &toks[n] {
            t if t.kind == TokKind::Open(Delim::Brace) && !block_is_justified(file, i, n) => {
                out.push(finding(
                    RULE,
                    file,
                    toks[i].line,
                    "unsafe block without an adjacent `// SAFETY:` comment \
                     stating which invariant makes it sound"
                        .to_string(),
                ));
            }
            t if t.is_ident("fn") => {
                // Skip fn-pointer types (`unsafe fn(u8)`): no name follows.
                let named = file
                    .next_sig(n)
                    .is_some_and(|m| toks[m].kind == TokKind::Ident);
                if !named {
                    continue;
                }
                if !item_is_justified(file, i, &["SAFETY:", "# Safety"]) {
                    let name = file
                        .next_sig(n)
                        .map(|m| toks[m].text.clone())
                        .unwrap_or_default();
                    out.push(finding(
                        RULE,
                        file,
                        toks[i].line,
                        format!(
                            "unsafe fn `{name}` without a `# Safety` doc section or \
                             `// SAFETY:` comment stating the caller's obligations"
                        ),
                    ));
                }
            }
            t if t.is_ident("impl") || t.is_ident("trait") => {
                let kind = toks[n].text.clone();
                if !item_is_justified(file, i, &["SAFETY:", "# Safety"]) {
                    out.push(finding(
                        RULE,
                        file,
                        toks[i].line,
                        format!(
                            "unsafe {kind} without an adjacent `// SAFETY:` comment \
                             stating why the contract holds"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

/// An `unsafe { ... }` block is justified by a `SAFETY:` comment attached
/// to its statement, trailing on the `unsafe`/`{` line, or leading the
/// block body (first tokens inside the braces).
fn block_is_justified(file: &SourceFile, unsafe_idx: usize, open_idx: usize) -> bool {
    let open_line = file.toks[open_idx].line;
    if file.has_adjacent_marker(unsafe_idx, Some(open_line), "SAFETY:") {
        return true;
    }
    // First comment(s) just inside the block, before any significant token.
    for t in &file.toks[open_idx + 1..] {
        if t.is_comment() {
            if t.text.contains("SAFETY:") {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// An `unsafe fn`/`impl`/`trait` item is justified by any leading comment
/// (doc run above the item, attributes skipped) containing one of
/// `markers`, or a trailing comment on the `unsafe` keyword's line.
fn item_is_justified(file: &SourceFile, unsafe_idx: usize, markers: &[&str]) -> bool {
    let start = file.item_start(unsafe_idx);
    let leading = file.leading_item_comments(start);
    if leading
        .iter()
        .any(|t| markers.iter().any(|m| t.text.contains(m)))
    {
        return true;
    }
    let line = file.toks[unsafe_idx].line;
    file.toks
        .iter()
        .any(|t| t.is_comment() && t.line == line && markers.iter().any(|m| t.text.contains(m)))
}
