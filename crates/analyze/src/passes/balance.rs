//! `refcount-balance`: the dataflow-backed successor to the heuristic
//! `refcount-pairing` pass. Where the old pass asks "does this function
//! *mention* a release or carry a comment?", this one lowers the body to
//! a CFG and proves per path that every count acquired by
//! `safe_read`/`safe_read_tallied`/`alloc` is released, transferred to
//! the caller through a raw-pointer return, stored into the structure,
//! or covered by a `// COUNT:` contract. It also checks the contract
//! text itself: a function-level `// COUNT: ... transfers to caller ...`
//! whose signature has no raw-pointer return cannot be honored and is
//! reported (`declared-transfer-not-returned`).
//!
//! Both passes run; this one is the stricter superset and reports at
//! `Error` severity because a leaked count permanently wedges Fig. 17's
//! reclamation (the cell never reaches refcount 1 again).

use crate::cfg;
use crate::dataflow::{fn_count_contract, FlowAnalysis, Summaries};
use crate::report::{Finding, Related};
use crate::source::SourceFile;
use crate::syntax::Ast;

/// Runs the balance analysis over every non-test function in `file`.
/// `summaries` must come from [`Summaries::build`] over the whole
/// workspace so cross-crate consumers (e.g. `release_deferred`) are seen.
pub fn run(file: &SourceFile, ast: &Ast, summaries: &Summaries) -> Vec<Finding> {
    let mut out = Vec::new();
    for def in &ast.fns {
        if file.in_test_mod(def.item.fn_idx) {
            continue;
        }
        // A function-level COUNT contract replaces path analysis with a
        // contract check: a declared transfer-to-caller must be
        // realizable, i.e. the return type carries a raw pointer.
        if let Some(text) = fn_count_contract(file, def) {
            let lower = text.to_lowercase();
            let (rlo, rhi) = def.item.return_type;
            let ret_raw = file.toks[rlo..rhi.min(file.toks.len())]
                .iter()
                .any(|t| t.text == "*");
            if lower.contains("transfer") && lower.contains("caller") && !ret_raw {
                out.push(super::finding(
                    "refcount-balance",
                    file,
                    def.item.line,
                    format!(
                        "fn `{}` declares `// COUNT: ... transfers to caller ...` but \
                         its return type carries no raw pointer; the §5 transfer \
                         convention cannot hold",
                        def.item.name
                    ),
                ));
            }
            continue;
        }
        if def.item.body.is_none() {
            continue;
        }
        let Some(graph) = cfg::build(file, def) else {
            continue;
        };
        let analysis = FlowAnalysis::new(file, def, summaries);
        for f in analysis.run(&graph) {
            let related = f
                .related
                .into_iter()
                .map(|(line, note)| Related {
                    file: file.label.clone(),
                    line,
                    note,
                })
                .collect();
            out.push(super::finding_with_related(
                "refcount-balance",
                file,
                f.line,
                f.message,
                related,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax;

    fn run_on(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("t.rs", src);
        let ast = syntax::parse(&file);
        let summaries = Summaries::build([(&file, &ast)]);
        run(&file, &ast, &summaries)
    }

    #[test]
    fn declared_transfer_without_raw_return_is_reported() {
        let src = "\
        // COUNT: transfers to caller.\n\
        fn f(&self) -> u32 {\n\
            self.arena.safe_read(&self.head) as u32\n\
        }";
        let findings = run_on(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("cannot hold"));
    }

    #[test]
    fn declared_transfer_with_raw_return_is_fine() {
        let src = "\
        // COUNT: transfers to caller.\n\
        fn f(&self) -> *mut Node {\n\
            self.arena.safe_read(&self.head)\n\
        }";
        assert_eq!(run_on(src), vec![]);
    }

    #[test]
    fn leak_findings_carry_acquire_site_relation() {
        let src = "fn f(&self) {\n\
            let h = self.arena.safe_read(&self.head);\n\
            if self.flip() { self.arena.release(h); }\n\
        }";
        let findings = run_on(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "refcount-balance");
        assert_eq!(findings[0].related.len(), 1);
        assert_eq!(findings[0].related[0].line, 2);
    }

    #[test]
    fn test_mod_functions_are_skipped() {
        let src = "\
        #[cfg(test)]\n\
        mod tests {\n\
            fn f(&self) { let h = self.arena.safe_read(&self.head); let _ = h; }\n\
        }";
        assert_eq!(run_on(src), vec![]);
    }
}
