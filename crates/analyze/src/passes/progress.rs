//! Progress discipline, two lints:
//!
//! 1. **`cas-progress`** — a `loop`/`while` whose body performs a CAS or
//!    RMW retry (`compare_exchange[_weak]`, `compare_and_swap`, `swing`,
//!    `try_claim`, `fetch_*`) must either invoke [`Backoff`]
//!    (`valois_sync::backoff`) or carry a `// WAIT-FREE:` comment arguing
//!    why unthrottled retry is acceptable (typically: the loop only
//!    retries when *another* thread made progress, so system-wide
//!    progress is already guaranteed and the retry window is one
//!    instruction wide). §2.1 of the paper: "starvation at high levels of
//!    contention is more efficiently handled by techniques such as
//!    exponential backoff."
//!
//! 2. **`spin-guard`** — a spinlock guard must not live across a call
//!    into the protocol layer (`safe_read`/`release`/`alloc`/`swing`/...):
//!    holding a spinlock while running lock-free protocol code reintroduces
//!    the blocking the protocol exists to avoid, and inverts the repo's
//!    lock hierarchy (spinlocks are leaves). The baseline crate is exempt
//!    by path — its whole point is coarse locking around list operations.
//!
//! Only the innermost loop containing a CAS is flagged (an outer driver
//! loop is not itself a retry loop). `#[cfg(test)]` modules are exempt.
//!
//! [`Backoff`]: https://example.com/valois

use crate::lexer::{Delim, TokKind};
use crate::passes::finding;
use crate::report::Finding;
use crate::source::SourceFile;

/// CAS/RMW calls that make a `loop`/`while` a retry loop.
const CAS_CALLS: &[&str] = &[
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
    "swing",
    "try_claim",
];

/// Protocol entry points a spinlock guard must not be held across.
const PROTOCOL_CALLS: &[&str] = &[
    "safe_read",
    "safe_read_tallied",
    "release",
    "release_deferred",
    "drain_deferred",
    "alloc",
    "swing",
    "store_link",
    "try_insert",
    "try_delete",
];

/// Runs both lints over one file.
pub fn run(file: &SourceFile) -> Vec<Finding> {
    let mut out = cas_progress(file);
    out.extend(spin_guard(file));
    out
}

fn is_cas_call(file: &SourceFile, i: usize) -> bool {
    let toks = &file.toks;
    if toks[i].kind != TokKind::Ident {
        return false;
    }
    let named = CAS_CALLS.iter().any(|n| toks[i].is_ident(n))
        || (toks[i].text.starts_with("fetch_") && toks[i].text.len() > "fetch_".len());
    named
        && file
            .next_sig(i)
            .is_some_and(|n| toks[n].kind == TokKind::Open(Delim::Paren))
}

fn cas_progress(file: &SourceFile) -> Vec<Finding> {
    let loops = file.loops();
    let mut flagged: Vec<usize> = Vec::new(); // indices into `loops`
    for i in 0..file.toks.len() {
        if !is_cas_call(file, i) || file.in_test_mod(i) {
            continue;
        }
        // Innermost enclosing loop body.
        let inner = loops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.body.0 < i && i < l.body.1)
            .min_by_key(|(_, l)| l.body.1 - l.body.0);
        if let Some((idx, _)) = inner {
            if !flagged.contains(&idx) {
                flagged.push(idx);
            }
        }
    }
    let mut out = Vec::new();
    for idx in flagged {
        let l = &loops[idx];
        let (open, close) = l.body;
        // Backoff evidence inside the body: the type/binding name, or a
        // `.spin()` / `.snooze()` method call.
        let body = &file.toks[open..=close];
        let has_backoff = body.iter().enumerate().any(|(k, t)| {
            t.is_ident("Backoff")
                || t.is_ident("backoff")
                || ((t.is_ident("spin") || t.is_ident("snooze"))
                    && k > 0
                    && body[k - 1].text == ".")
        });
        if has_backoff {
            continue;
        }
        let justified = body
            .iter()
            .any(|t| t.is_comment() && t.text.contains("WAIT-FREE:"))
            || file.has_adjacent_marker(l.kw_idx, Some(file.toks[open].line), "WAIT-FREE:");
        if justified {
            continue;
        }
        out.push(finding(
            "cas-progress",
            file,
            l.line,
            format!(
                "`{}` retries a CAS/RMW without Backoff; add backoff or a \
                 `// WAIT-FREE:` comment arguing why unthrottled retry is sound",
                file.toks[l.kw_idx].text
            ),
        ));
    }
    out
}

fn spin_guard(file: &SourceFile) -> Vec<Finding> {
    let toks = &file.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        // `lock(` / `try_lock(` whose receiver chain mentions a spinlock.
        if !(toks[i].is_ident("lock") || toks[i].is_ident("try_lock")) || file.in_test_mod(i) {
            continue;
        }
        let is_call = file
            .next_sig(i)
            .is_some_and(|n| toks[n].kind == TokKind::Open(Delim::Paren));
        if !is_call {
            continue;
        }
        let start = file.stmt_start(i);
        let receiver_is_spin = file.toks[start..i]
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text.to_ascii_lowercase().contains("spin"));
        if !receiver_is_spin {
            continue;
        }
        // Guard binding name: `let [mut] name = ...`.
        let guard = if toks[start].is_ident("let") {
            let mut n = file.next_sig(start);
            if n.is_some_and(|x| toks[x].is_ident("mut")) {
                n = file.next_sig(n.unwrap());
            }
            n.map(|x| toks[x].text.clone())
        } else {
            None
        };
        // Statement end, then scan to the end of the enclosing block (or
        // an explicit `drop(guard)`), flagging protocol calls.
        let Some(stmt_end) = (i..toks.len()).find(|&j| toks[j].text == ";") else {
            continue;
        };
        let Some((_, block_close)) = enclosing_brace(file, i) else {
            continue;
        };
        let mut j = stmt_end;
        while j < block_close {
            j += 1;
            let t = &toks[j];
            // Early release: drop(guard)
            if t.is_ident("drop") {
                if let (Some(p), Some(g)) = (file.next_sig(j), guard.as_deref()) {
                    if toks[p].kind == TokKind::Open(Delim::Paren)
                        && file.next_sig(p).is_some_and(|a| toks[a].is_ident(g))
                    {
                        break;
                    }
                }
            }
            if t.kind == TokKind::Ident
                && PROTOCOL_CALLS.iter().any(|n| t.is_ident(n))
                && file
                    .next_sig(j)
                    .is_some_and(|n| toks[n].kind == TokKind::Open(Delim::Paren))
            {
                out.push(finding(
                    "spin-guard",
                    file,
                    t.line,
                    format!(
                        "protocol call `{}` while a spinlock guard (acquired line {}) \
                         is live; drop the guard first — spinlocks are leaves of the \
                         lock hierarchy",
                        t.text, toks[i].line
                    ),
                ));
                break; // one finding per guard
            }
        }
    }
    out
}

/// The innermost `{ ... }` token range strictly containing `i`.
fn enclosing_brace(file: &SourceFile, i: usize) -> Option<(usize, usize)> {
    let mut best: Option<(usize, usize)> = None;
    for (open, t) in file.toks.iter().enumerate() {
        if t.kind != TokKind::Open(Delim::Brace) {
            continue;
        }
        let Some(close) = file.partner[open] else {
            continue;
        };
        if open < i && i < close && best.is_none_or(|(bo, bc)| close - open < bc - bo) {
            best = Some((open, close));
        }
    }
    best
}
