//! `protection-window` + `guard-contract`: every dereference of a
//! counted node pointer must stay inside its §5 protection window
//! (invariant I11, docs/PROTOCOL.md), and `unsafe fn`s that deref
//! raw-pointer parameters must declare the caller's obligation with a
//! `// GUARD:` contract. The dataflow itself lives in
//! [`crate::protect`]; this wrapper maps its findings to rules and adds
//! the contract-hygiene checks.

use crate::cfg;
use crate::passes::{finding, finding_with_related};
use crate::protect::{deref_sites, fn_guard_contract, GuardSummaries, ProtectAnalysis};
use crate::report::{Finding, Related};
use crate::source::SourceFile;
use crate::syntax::Ast;

/// Runs both checks over one file. `workspace` carries cross-file
/// `// GUARD:`/deref summaries; the file's own fns are folded in so
/// single-file (fixture) runs still check local helper calls.
pub fn run(file: &SourceFile, ast: &Ast, workspace: &GuardSummaries) -> Vec<Finding> {
    let mut guards = workspace.clone();
    guards.absorb(file, ast);
    let mut out = Vec::new();
    for def in &ast.fns {
        if file.in_test_mod(def.item.fn_idx) {
            continue;
        }
        let declared = fn_guard_contract(file, def);
        let raw_params: Vec<&str> = def
            .params
            .iter()
            .filter_map(|p| match (&p.name, p.raw_ptr) {
                (Some(n), true) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        // An unsafe fn that derefs a raw-pointer param must state the
        // caller's obligation; safe fns get summarized automatically.
        if def.item.is_unsafe {
            if let Some((open, close)) = def.item.body {
                for name in &raw_params {
                    let derefed = !deref_sites(file, open + 1, close, name).is_empty();
                    let covered = declared
                        .as_ref()
                        .is_some_and(|d| d.iter().any(|g| g == name));
                    if derefed && !covered {
                        out.push(finding(
                            "guard-contract",
                            file,
                            def.item.line,
                            format!(
                                "unsafe fn `{}` dereferences raw-pointer parameter \
                                 `{name}` without declaring it in a `// GUARD:` \
                                 contract; state the caller's obligation, e.g. \
                                 `// GUARD: {name} — caller holds a count`",
                                def.item.name
                            ),
                        ));
                    }
                }
            }
        }
        // A contract naming something that is not a raw-pointer param is
        // stale and would silently check nothing.
        if let Some(names) = &declared {
            if names.is_empty() {
                out.push(finding(
                    "guard-contract",
                    file,
                    def.item.line,
                    format!(
                        "`// GUARD:` contract on `{}` names no parameters; \
                         the grammar is `// GUARD: <param>[, <param>] — prose`",
                        def.item.name
                    ),
                ));
            }
            for n in names {
                if !raw_params.contains(&n.as_str()) {
                    out.push(finding(
                        "guard-contract",
                        file,
                        def.item.line,
                        format!(
                            "`// GUARD:` contract on `{}` names `{n}`, which is \
                             not a raw-pointer parameter of this fn; the \
                             contract is stale",
                            def.item.name
                        ),
                    ));
                }
            }
        }
        let Some(graph) = cfg::build(file, def) else {
            continue;
        };
        for flow in ProtectAnalysis::new(file, def, &guards).run(&graph) {
            let related = flow
                .related
                .into_iter()
                .map(|(line, note)| Related {
                    file: file.label.clone(),
                    line,
                    note,
                })
                .collect();
            out.push(finding_with_related(
                "protection-window",
                file,
                flow.line,
                flow.message,
                related,
            ));
        }
    }
    out
}
