//! Per-function control-flow graphs lowered from the syntax tree.
//!
//! Each [`Cfg`] is a vector of basic blocks holding [`Stmt`]s (token
//! ranges tagged with what the dataflow should do with their value) and
//! guarded edges. The lowering is where control *shape* is decided —
//! branch forks and joins, loop back edges, early exits — so the dataflow
//! in [`crate::dataflow`] is a plain worklist over a graph.
//!
//! Two lowering decisions matter for precision:
//!
//! * **Null guards.** An `if x.is_null()` / `while !x.is_null()`
//!   condition in the simple single-test form annotates the outgoing
//!   edges with [`Guard::Null`]/[`Guard::NonNull`]. A null pointer
//!   carries no count (the §5 `Release` is a no-op on null), so the
//!   dataflow kills tracked state along the null edge — this is what
//!   keeps the queue/list traversal idiom (`let next = safe_read(..);
//!   if next.is_null() { break; }`) from reporting a phantom leak.
//! * **Value sinks.** A branch or match arm in initializer position
//!   lowers its tail expression as a [`StmtKind::Bind`] into the `let`
//!   target, so a count acquired in one arm of
//!   `let cell = match alloc() { .. }` flows into `cell` exactly on the
//!   paths where it was acquired.

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::syntax::{first_sig_in, last_sig_in, Arm, Block, FnDef, Node};

/// What a statement's value means to the dataflow.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Value discarded (expression statement).
    Expr,
    /// Value flows into a local binding (`let`, simple assignment, or a
    /// branch tail feeding one). `None` for destructuring patterns.
    Bind(Option<String>),
    /// Value flows into a place expression (`self.field = ..`,
    /// `(*p).next = ..`): a transfer into the structure.
    PlaceBind,
    /// Match scrutinee: an acquire here binds to the pending arm temp.
    Scrut,
    /// Arm entry: the pattern in `range` binds (or drops) the arm temp.
    ArmOpen,
    /// Function return; `range` covers the returned value (empty range
    /// for bare `return;`).
    Return,
}

/// One dataflow-visible statement: a token range plus interpretation.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// Interpretation of the range's value.
    pub kind: StmtKind,
    /// Token range `[lo, hi)` scanned for calls/idents.
    pub range: (usize, usize),
    /// Source line (first token of the range, or the statement keyword).
    pub line: usize,
    /// Whether a `// COUNT:` contract is attached to this statement.
    pub blessed: bool,
}

/// Edge condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Guard {
    /// Unconditional.
    Always,
    /// Taken only when the named local is null (kills its count).
    Null(String),
    /// Taken only when the named local is non-null.
    NonNull(String),
}

/// One directed edge.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Target block index.
    pub to: usize,
    /// Condition under which the edge is taken.
    pub guard: Guard,
}

/// A basic block: straight-line statements plus outgoing edges.
#[derive(Debug, Default)]
pub struct BasicBlock {
    /// Statements in execution order.
    pub stmts: Vec<Stmt>,
    /// Successors.
    pub succs: Vec<Edge>,
}

/// A function's control-flow graph.
#[derive(Debug)]
pub struct Cfg {
    /// Blocks; indices are stable.
    pub blocks: Vec<BasicBlock>,
    /// Entry block index.
    pub entry: usize,
    /// Exit block index (empty; every `return` and the body fall-through
    /// edge here).
    pub exit: usize,
}

/// Lowers `def`'s body to a CFG. `None` for bodiless declarations.
pub fn build(file: &SourceFile, def: &FnDef) -> Option<Cfg> {
    let body = def.body.as_ref()?;
    let mut l = Lower {
        file,
        blocks: vec![BasicBlock::default(), BasicBlock::default()],
        exit: 1,
        loops: Vec::new(),
        bless_depth: 0,
    };
    let entry = 0;
    if let Some(end) = l.lower_block(body, entry, Sink::Ret) {
        l.edge(end, l.exit, Guard::Always);
    }
    Some(Cfg {
        blocks: l.blocks,
        entry,
        exit: 1,
    })
}

/// Destination of a value in tail position.
#[derive(Clone)]
enum Sink {
    /// Discard.
    None,
    /// Bind into a local (or destructure: `Var(None)`).
    Var(Option<String>),
    /// Store into a place expression.
    Place,
    /// Function return value.
    Ret,
}

struct Lower<'a> {
    file: &'a SourceFile,
    blocks: Vec<BasicBlock>,
    exit: usize,
    /// Stack of `(continue_target, break_target)`.
    loops: Vec<(usize, usize)>,
    /// While > 0, statements inherit a `// COUNT:` blessing from an
    /// enclosing `let` (the comment sits on the `let`, the lowered
    /// `Bind`s sit on arm/branch tails elsewhere).
    bless_depth: u32,
}

impl<'a> Lower<'a> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize, guard: Guard) {
        self.blocks[from].succs.push(Edge { to, guard });
    }

    fn push(&mut self, cur: usize, kind: StmtKind, range: (usize, usize), anchor: usize) {
        let line = first_sig_in(self.file, range.0, range.1)
            .map(|i| self.file.toks[i].line)
            .unwrap_or_else(|| self.file.toks.get(anchor).map(|t| t.line).unwrap_or(1));
        let blessed = self.bless_depth > 0 || self.range_blessed(range, anchor);
        self.blocks[cur].stmts.push(Stmt {
            kind,
            range,
            line,
            blessed,
        });
    }

    /// Whether a `// COUNT:` comment is attached to the statement
    /// containing `range` (leading comment block, mid-statement comment,
    /// or trailing comment on the first/last line).
    fn range_blessed(&self, range: (usize, usize), anchor: usize) -> bool {
        let first = first_sig_in(self.file, range.0, range.1).unwrap_or(anchor);
        if first >= self.file.toks.len() {
            return false;
        }
        let extra = last_sig_in(self.file, range.0, range.1).map(|i| self.file.toks[i].line);
        self.file.has_adjacent_marker(first, extra, "COUNT:")
    }

    fn lower_block(&mut self, blk: &Block, mut cur: usize, sink: Sink) -> Option<usize> {
        let n = blk.stmts.len();
        for (i, stmt) in blk.stmts.iter().enumerate() {
            let is_tail = blk.has_tail && i + 1 == n;
            let s = if is_tail { sink.clone() } else { Sink::None };
            match self.lower_node(stmt, cur, s) {
                Some(next) => cur = next,
                // Diverged (return/break on every path): the rest of the
                // block is unreachable; stop lowering it.
                None => return None,
            }
        }
        Some(cur)
    }

    fn lower_node(&mut self, node: &Node, cur: usize, sink: Sink) -> Option<usize> {
        match node {
            Node::Item { .. } => Some(cur),
            Node::Leaf { lo, hi } => {
                let kind = match sink {
                    Sink::None => StmtKind::Expr,
                    Sink::Var(name) => StmtKind::Bind(name),
                    Sink::Place => StmtKind::PlaceBind,
                    Sink::Ret => StmtKind::Return,
                };
                self.push(cur, kind, (*lo, *hi), *lo);
                Some(cur)
            }
            Node::Let { name, init, kw, hi } => {
                let Some(init) = init else {
                    return Some(cur);
                };
                let blessed = self.range_blessed((*kw, *hi), *kw);
                if blessed {
                    self.bless_depth += 1;
                }
                let out = self.lower_node(init, cur, Sink::Var(name.clone()));
                if blessed {
                    self.bless_depth -= 1;
                }
                out
            }
            Node::Assign { lhs, rhs } => {
                let lhs_sig: Vec<usize> = (lhs.0..lhs.1)
                    .filter(|&i| !self.file.toks[i].is_comment())
                    .collect();
                let single = match lhs_sig.as_slice() {
                    [i] if self.file.toks[*i].kind == TokKind::Ident => {
                        Some(self.file.toks[*i].text.clone())
                    }
                    _ => None,
                };
                let sink = match single {
                    Some(name) => Sink::Var(Some(name)),
                    None => Sink::Place,
                };
                let blessed = self.range_blessed(*lhs, lhs.0);
                if blessed {
                    self.bless_depth += 1;
                }
                let out = self.lower_node(rhs, cur, sink);
                if blessed {
                    self.bless_depth -= 1;
                }
                out
            }
            Node::Blk(b) => self.lower_block(b, cur, sink),
            Node::Unsafe { body, .. } => self.lower_block(body, cur, sink),
            Node::If {
                cond,
                then_blk,
                alt,
            } => {
                self.push(cur, StmtKind::Expr, *cond, cond.0);
                let guard = null_guard(self.file, *cond);
                let (g_then, g_else) = match guard {
                    Some((name, true)) => (Guard::Null(name.clone()), Guard::NonNull(name)),
                    Some((name, false)) => (Guard::NonNull(name.clone()), Guard::Null(name)),
                    None => (Guard::Always, Guard::Always),
                };
                let join = self.new_block();
                let then_b = self.new_block();
                self.edge(cur, then_b, g_then);
                let mut live = false;
                if let Some(end) = self.lower_block(then_blk, then_b, sink.clone()) {
                    self.edge(end, join, Guard::Always);
                    live = true;
                }
                match alt {
                    Some(alt) => {
                        let alt_b = self.new_block();
                        self.edge(cur, alt_b, g_else);
                        if let Some(end) = self.lower_node(alt, alt_b, sink) {
                            self.edge(end, join, Guard::Always);
                            live = true;
                        }
                    }
                    None => {
                        self.edge(cur, join, g_else);
                        live = true;
                    }
                }
                if live {
                    Some(join)
                } else {
                    None
                }
            }
            Node::Match {
                scrutinee, arms, ..
            } => {
                self.push(cur, StmtKind::Scrut, *scrutinee, scrutinee.0);
                let join = self.new_block();
                let mut live = arms.is_empty();
                if arms.is_empty() {
                    self.edge(cur, join, Guard::Always);
                }
                for Arm { pat, body } in arms {
                    let ab = self.new_block();
                    self.edge(cur, ab, Guard::Always);
                    self.push(ab, StmtKind::ArmOpen, *pat, pat.0);
                    if let Some(end) = self.lower_node(body, ab, sink.clone()) {
                        self.edge(end, join, Guard::Always);
                        live = true;
                    }
                }
                if live {
                    Some(join)
                } else {
                    None
                }
            }
            Node::Loop { body, .. } => {
                let head = self.new_block();
                self.edge(cur, head, Guard::Always);
                let after = self.new_block();
                self.loops.push((head, after));
                let end = self.lower_block(body, head, Sink::None);
                self.loops.pop();
                if let Some(end) = end {
                    self.edge(end, head, Guard::Always);
                }
                Some(after)
            }
            Node::While { cond, body, .. } => {
                let head = self.new_block();
                self.edge(cur, head, Guard::Always);
                self.push(head, StmtKind::Expr, *cond, cond.0);
                let after = self.new_block();
                let body_b = self.new_block();
                let (g_body, g_exit) = match null_guard(self.file, *cond) {
                    Some((name, true)) => (Guard::Null(name.clone()), Guard::NonNull(name)),
                    Some((name, false)) => (Guard::NonNull(name.clone()), Guard::Null(name)),
                    None => (Guard::Always, Guard::Always),
                };
                self.edge(head, body_b, g_body);
                self.edge(head, after, g_exit);
                self.loops.push((head, after));
                let end = self.lower_block(body, body_b, Sink::None);
                self.loops.pop();
                if let Some(end) = end {
                    self.edge(end, head, Guard::Always);
                }
                Some(after)
            }
            Node::For { head, body, .. } => {
                let hb = self.new_block();
                self.edge(cur, hb, Guard::Always);
                self.push(hb, StmtKind::Expr, *head, head.0);
                let after = self.new_block();
                let body_b = self.new_block();
                self.edge(hb, body_b, Guard::Always);
                self.edge(hb, after, Guard::Always);
                self.loops.push((hb, after));
                let end = self.lower_block(body, body_b, Sink::None);
                self.loops.pop();
                if let Some(end) = end {
                    self.edge(end, hb, Guard::Always);
                }
                Some(after)
            }
            Node::Return { value, kw } => {
                let range = value.unwrap_or((*kw + 1, *kw + 1));
                self.push(cur, StmtKind::Return, range, *kw);
                self.edge(cur, self.exit, Guard::Always);
                None
            }
            Node::Break { kw } => {
                let target = self.loops.last().map(|&(_, b)| b).unwrap_or(self.exit);
                let _ = kw;
                self.edge(cur, target, Guard::Always);
                None
            }
            Node::Continue { kw } => {
                let target = self.loops.last().map(|&(h, _)| h).unwrap_or(self.exit);
                let _ = kw;
                self.edge(cur, target, Guard::Always);
                None
            }
        }
    }
}

/// Recognizes the simple null-test condition forms:
/// `x.is_null()` → `Some((x, true))` (then-branch = null) and
/// `!x.is_null()` → `Some((x, false))`. Compound conditions return
/// `None` (no kill — conservative).
fn null_guard(file: &SourceFile, range: (usize, usize)) -> Option<(String, bool)> {
    let sig: Vec<usize> = (range.0..range.1.min(file.toks.len()))
        .filter(|&i| !file.toks[i].is_comment())
        .collect();
    let texts: Vec<&str> = sig.iter().map(|&i| file.toks[i].text.as_str()).collect();
    match texts.as_slice() {
        [v, ".", "is_null", "(", ")"] if file.toks[sig[0]].kind == TokKind::Ident => {
            Some(((*v).to_string(), true))
        }
        ["!", v, ".", "is_null", "(", ")"] if file.toks[sig[1]].kind == TokKind::Ident => {
            Some(((*v).to_string(), false))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax;

    fn cfg_of(src: &str) -> (SourceFile, Cfg) {
        let file = SourceFile::parse("t.rs", src);
        let ast = syntax::parse(&file);
        let cfg = build(&file, &ast.fns[0]).expect("fn has a body");
        (file, cfg)
    }

    fn reachable(cfg: &Cfg) -> Vec<usize> {
        let mut seen = vec![false; cfg.blocks.len()];
        let mut work = vec![cfg.entry];
        while let Some(b) = work.pop() {
            if std::mem::replace(&mut seen[b], true) {
                continue;
            }
            for e in &cfg.blocks[b].succs {
                work.push(e.to);
            }
        }
        (0..cfg.blocks.len()).filter(|&i| seen[i]).collect()
    }

    #[test]
    fn straight_line_flows_to_exit() {
        let (_, cfg) = cfg_of("fn f() { a(); b(); }");
        assert_eq!(cfg.blocks[cfg.entry].stmts.len(), 2);
        assert!(cfg.blocks[cfg.entry].succs.iter().any(|e| e.to == cfg.exit));
    }

    #[test]
    fn if_null_guard_annotates_edges() {
        let (_, cfg) = cfg_of("fn f() { let q = g(); if q.is_null() { a(); } b(); }");
        let guards: Vec<&Guard> = cfg
            .blocks
            .iter()
            .flat_map(|b| b.succs.iter().map(|e| &e.guard))
            .collect();
        assert!(guards
            .iter()
            .any(|g| matches!(g, Guard::Null(v) if v == "q")));
        assert!(guards
            .iter()
            .any(|g| matches!(g, Guard::NonNull(v) if v == "q")));
    }

    #[test]
    fn early_return_diverges_to_exit() {
        let (_, cfg) = cfg_of("fn f() { if c() { return; } tail(); }");
        // The then-branch must have an edge to exit and no fall-through.
        let exit_preds = cfg
            .blocks
            .iter()
            .filter(|b| b.succs.iter().any(|e| e.to == cfg.exit))
            .count();
        assert!(exit_preds >= 2, "return edge and normal fall-through");
    }

    #[test]
    fn loops_have_back_edges_and_break_targets() {
        let (_, cfg) = cfg_of(
            "fn f() { loop { let n = g(); if n.is_null() { break; } use_it(n); } after(); }",
        );
        // A back edge: some block's successor has a lower index that is
        // not the exit.
        let has_back = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.succs.iter().any(|e| e.to < i && e.to != cfg.exit));
        assert!(has_back, "loop must produce a back edge");
        assert!(reachable(&cfg).contains(&cfg.exit));
    }

    #[test]
    fn match_arms_fork_and_join() {
        let (file, cfg) = cfg_of(
            "fn f() { let c = match alloc() { Ok(c) => c, Err(_) => return, }; use_it(c); }",
        );
        let arm_opens: Vec<&Stmt> = cfg
            .blocks
            .iter()
            .flat_map(|b| b.stmts.iter())
            .filter(|s| s.kind == StmtKind::ArmOpen)
            .collect();
        assert_eq!(arm_opens.len(), 2);
        let scruts: Vec<&Stmt> = cfg
            .blocks
            .iter()
            .flat_map(|b| b.stmts.iter())
            .filter(|s| s.kind == StmtKind::Scrut)
            .collect();
        assert_eq!(scruts.len(), 1);
        let (lo, hi) = scruts[0].range;
        assert!((lo..hi).any(|i| file.toks[i].is_ident("alloc")));
        // The Ok arm binds into `c`.
        let binds: Vec<&Stmt> = cfg
            .blocks
            .iter()
            .flat_map(|b| b.stmts.iter())
            .filter(|s| matches!(&s.kind, StmtKind::Bind(Some(n)) if n == "c"))
            .collect();
        assert_eq!(binds.len(), 1);
    }

    #[test]
    fn place_assignment_lowers_as_placebind() {
        let (_, cfg) = cfg_of("fn f(&mut self) { self.head = g(); }");
        assert!(cfg
            .blocks
            .iter()
            .flat_map(|b| b.stmts.iter())
            .any(|s| s.kind == StmtKind::PlaceBind));
    }

    #[test]
    fn count_comment_blesses_statement() {
        let (_, cfg) = cfg_of(
            "fn f() {\n    // COUNT: transfers into the registry.\n    let q = safe_read(p);\n    q2();\n}",
        );
        let stmts: Vec<&Stmt> = cfg.blocks.iter().flat_map(|b| b.stmts.iter()).collect();
        assert!(stmts
            .iter()
            .any(|s| matches!(&s.kind, StmtKind::Bind(Some(n)) if n == "q") && s.blessed));
    }
}
