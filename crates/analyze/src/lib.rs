//! `valois-analyze`: syntax-aware static analysis for the Valois
//! workspace, driven by `cargo xtask analyze`.
//!
//! The §5 SafeRead/Release protocol hangs its safety argument on
//! conventions no type checker sees: every counted reference is released
//! or transferred exactly once, every `unsafe` dereference is justified by
//! the counting invariant, every CAS retry loop makes a progress argument,
//! and every atomic flows through the loom-instrumentable shim. This crate
//! machine-checks those conventions at the token/syntax level — not line
//! by line — so multi-line declarations, renames, grouped imports, and
//! comments inside expressions are all seen for what they are.
//!
//! Passes (rule ids):
//!
//! | Rule | Checks | Escape hatch |
//! |---|---|---|
//! | `shim-import` | atomics only via `valois_sync::shim` | shim dir itself |
//! | `relaxed-ptr-order` | no unjustified relaxed pointer orderings | `// ORDER:` |
//! | `unsafe-comment` | every unsafe site carries a justification | `// SAFETY:` / `# Safety` |
//! | `refcount-pairing` | acquires are released or transferred | `// COUNT:` |
//! | `cas-progress` | CAS retry loops back off | `// WAIT-FREE:` |
//! | `spin-guard` | no spinlock guard across protocol calls | (baselines by path) |
//! | `probe-discipline` | probes via `valois_trace::probe!`, never bare `record` calls | trace crate itself |
//!
//! See `docs/ANALYSIS.md` for the comment contracts and
//! `docs/VERIFICATION.md` for where this layer sits among the others.
//!
//! The crate is dependency-free (the lexer in [`lexer`] is hand-rolled):
//! it sits on the tier-1 CI path and must build offline with nothing but
//! the toolchain.

#![warn(missing_docs)]

pub mod lexer;
pub mod passes;
pub mod report;
pub mod source;

use std::path::{Path, PathBuf};

pub use report::{render_json, render_sarif, render_text, Finding, RuleInfo, Severity, RULES};
use source::SourceFile;

/// Analyzes one file's source text with every pass, applying path-based
/// exemptions keyed on `label` (use workspace-relative paths):
///
/// * `crates/sync/src/shim/**` — exempt from `shim-import` (it *is* the
///   shim);
/// * `crates/trace/**` — exempt from `shim-import` (the flight recorder
///   sits *below* `valois-sync` in the dependency DAG, so it cannot
///   import the shim; its rings are deliberately un-modeled — recording
///   must never perturb the schedule being modeled) and from
///   `probe-discipline` (it defines `record` and the `probe!` macro);
/// * `crates/baseline/**` — exempt from `cas-progress` and `spin-guard`
///   (coarse locking around whole operations is the baseline's design);
/// * `crates/bench/**`, `crates/harness/**` — exempt from `cas-progress`
///   and `spin-guard` (their `while !stop { ...fetch_add... }` loops are
///   workload drivers bumping result counters, not CAS retry loops; the
///   protocol code they exercise is linted where it lives).
pub fn analyze_source(label: &str, content: &str) -> Vec<Finding> {
    let file = SourceFile::parse(label, content);
    let norm = label.replace('\\', "/");
    let is_trace = norm.contains("crates/trace/");
    let is_shim = norm.contains("crates/sync/src/shim");
    let progress_exempt = ["crates/baseline/", "crates/bench/", "crates/harness/"]
        .iter()
        .any(|p| norm.contains(p));
    let mut out = Vec::new();
    if !is_shim && !is_trace {
        out.extend(passes::shim::run(&file));
    }
    out.extend(passes::ordering::run(&file));
    out.extend(passes::unsafe_audit::run(&file));
    out.extend(passes::refcount::run(&file));
    if !progress_exempt {
        out.extend(passes::progress::run(&file));
    }
    if !is_trace {
        out.extend(passes::probes::run(&file));
    }
    out
}

/// Library source roots to lint, relative to the workspace root:
/// `src/` plus every `crates/*/src`, except `xtask` and `analyze` — the
/// linter necessarily names the patterns it rejects and cannot lint
/// itself. Tests and benches are exempt by scope: their `std` atomics and
/// raw-pointer plumbing are harness bookkeeping, not protocol surface.
pub fn source_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut roots: Vec<PathBuf> = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            if e.file_name() == "xtask" || e.file_name() == "analyze" {
                continue;
            }
            roots.push(e.path().join("src"));
        }
    }
    while let Some(dir) = roots.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                roots.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                files.push(p);
            }
        }
    }
    files.sort();
    files
}

/// Analyzes the whole workspace rooted at `root`. Findings are sorted by
/// file, line, then rule.
pub fn analyze_workspace(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in source_files(root) {
        let Ok(content) = std::fs::read_to_string(&file) else {
            continue;
        };
        let label = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .display()
            .to_string();
        out.extend(analyze_source(&label, &content));
    }
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    out
}

/// Whether `findings` should fail the run: any `Error`, or — when
/// `deny_warnings` — any finding at all.
pub fn should_fail(findings: &[Finding], deny_warnings: bool) -> bool {
    findings
        .iter()
        .any(|f| f.severity == Severity::Error || deny_warnings)
}
