//! `valois-analyze`: syntax-aware static analysis for the Valois
//! workspace, driven by `cargo xtask analyze`.
//!
//! The §5 SafeRead/Release protocol hangs its safety argument on
//! conventions no type checker sees: every counted reference is released
//! or transferred exactly once, every `unsafe` dereference is justified by
//! the counting invariant, every CAS retry loop makes a progress argument,
//! and every atomic flows through the loom-instrumentable shim. This crate
//! machine-checks those conventions at the token/syntax level — not line
//! by line — so multi-line declarations, renames, grouped imports, and
//! comments inside expressions are all seen for what they are.
//!
//! Passes (rule ids):
//!
//! | Rule | Checks | Escape hatch |
//! |---|---|---|
//! | `shim-import` | atomics only via `valois_sync::shim` | shim dir itself |
//! | `relaxed-ptr-order` | no unjustified relaxed pointer orderings | `// ORDER:` |
//! | `unsafe-comment` | every unsafe site carries a justification | `// SAFETY:` / `# Safety` |
//! | `refcount-pairing` | acquires are released or transferred | `// COUNT:` |
//! | `cas-progress` | CAS retry loops back off | `// WAIT-FREE:` |
//! | `spin-guard` | no spinlock guard across protocol calls | (baselines by path) |
//! | `probe-discipline` | probes via `valois_trace::probe!`, never bare `record` calls | trace crate itself |
//! | `refcount-balance` | per-path dataflow proof of acquire/release balance | `// COUNT:` (checked) |
//! | `order-pairing` | Release writes pair with Acquire reads per location | `// ORDER:` |
//! | `seqcst-fence` | SeqCst ops documented; fences cite an invariant | `// ORDER:` + `// INVARIANT:` |
//! | `invariant-ref` | `// INVARIANT: I<n>` resolves in docs/PROTOCOL.md | (none) |
//! | `protection-window` | per-path proof that derefs stay inside the §5 window (I11) | `// GUARD:` (checked) |
//! | `guard-contract` | unsafe fns deref-ing raw-ptr params declare `// GUARD:` | (none) |
//!
//! All four ordering rules (`relaxed-ptr-order`, `order-pairing`,
//! `seqcst-fence`, `invariant-ref`) are owned by
//! [`passes::order_graph`]; the legacy token-level pass was folded into
//! it in PR 8 with rule ids unchanged.
//!
//! See `docs/ANALYSIS.md` for the comment contracts and
//! `docs/VERIFICATION.md` for where this layer sits among the others.
//!
//! The crate is dependency-free (the lexer in [`lexer`] is hand-rolled):
//! it sits on the tier-1 CI path and must build offline with nothing but
//! the toolchain.

#![warn(missing_docs)]

pub mod cfg;
pub mod dataflow;
pub mod lexer;
pub mod passes;
pub mod protect;
pub mod report;
pub mod source;
pub mod syntax;

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

pub use report::{
    render_explain, render_json, render_sarif, render_text, Finding, Related, RuleInfo, Severity,
    RULES,
};
use source::SourceFile;

/// Workspace-level analysis context: what the dataflow passes need beyond
/// one file's tokens.
pub struct Context {
    /// Invariant numbers defined in `docs/PROTOCOL.md` (the `**I<n>`
    /// headers). `None` when no PROTOCOL.md is available — the
    /// `invariant-ref` check is skipped, not vacuously failed.
    pub invariants: Option<BTreeSet<u32>>,
    /// Call-graph consumption summaries for the balance pass.
    pub summaries: dataflow::Summaries,
    /// `// GUARD:` contracts + deref summaries for the protection pass.
    pub guards: protect::GuardSummaries,
}

impl Context {
    /// A context with no workspace knowledge: invariant cross-references
    /// unchecked, no cross-function consumption. Used by fixtures and the
    /// single-file [`analyze_source`] entry point.
    pub fn empty() -> Context {
        Context {
            invariants: None,
            summaries: dataflow::Summaries::default(),
            guards: protect::GuardSummaries::default(),
        }
    }

    /// Builds the full context for the workspace at `root`: parses
    /// `docs/PROTOCOL.md` for defined invariants and summarizes every
    /// source file's consumption behavior.
    pub fn for_workspace(root: &Path) -> Context {
        let invariants = std::fs::read_to_string(root.join("docs/PROTOCOL.md"))
            .ok()
            .map(|text| protocol_invariants(&text));
        let mut parsed = Vec::new();
        for path in source_files(root) {
            let Ok(content) = std::fs::read_to_string(&path) else {
                continue;
            };
            let label = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .display()
                .to_string();
            let file = SourceFile::parse(&label, &content);
            let ast = syntax::parse(&file);
            parsed.push((file, ast));
        }
        let summaries = dataflow::Summaries::build(parsed.iter().map(|(f, a)| (f, a)));
        let guards = protect::GuardSummaries::build(parsed.iter().map(|(f, a)| (f, a)));
        Context {
            invariants,
            summaries,
            guards,
        }
    }
}

/// Invariant numbers defined in PROTOCOL.md text: every `**I<digits>`
/// occurrence (the doc's header convention, e.g. `> **I8 (fence
/// pairing).**`).
pub fn protocol_invariants(text: &str) -> BTreeSet<u32> {
    let mut out = BTreeSet::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i + 3 < bytes.len() {
        if &bytes[i..i + 2] == b"**" && bytes[i + 2] == b'I' && bytes[i + 3].is_ascii_digit() {
            let mut end = i + 3;
            while end < bytes.len() && bytes[end].is_ascii_digit() {
                end += 1;
            }
            if let Ok(n) = text[i + 3..end].parse() {
                out.insert(n);
            }
            i = end;
        } else {
            i += 1;
        }
    }
    out
}

/// Analyzes one file's source text with every pass, applying path-based
/// exemptions keyed on `label` (use workspace-relative paths):
///
/// * `crates/sync/src/shim/**` — exempt from `shim-import` (it *is* the
///   shim);
/// * `crates/trace/**` — exempt from `shim-import` (the flight recorder
///   sits *below* `valois-sync` in the dependency DAG, so it cannot
///   import the shim; its rings are deliberately un-modeled — recording
///   must never perturb the schedule being modeled) and from
///   `probe-discipline` (it defines `record` and the `probe!` macro);
/// * `crates/baseline/**` — exempt from `cas-progress` and `spin-guard`
///   (coarse locking around whole operations is the baseline's design);
/// * `crates/bench/**`, `crates/harness/**` — exempt from `cas-progress`
///   and `spin-guard` (their `while !stop { ...fetch_add... }` loops are
///   workload drivers bumping result counters, not CAS retry loops; the
///   protocol code they exercise is linted where it lives).
pub fn analyze_source(label: &str, content: &str) -> Vec<Finding> {
    analyze_source_with(label, content, &Context::empty())
}

/// [`analyze_source`] with a workspace [`Context`]: enables the
/// cross-function consumption summaries of `refcount-balance`, the
/// `invariant-ref` cross-check, and collects sites for the workspace
/// `order-pairing` graph (returned separately by [`analyze_workspace`]).
pub fn analyze_source_with(label: &str, content: &str, ctx: &Context) -> Vec<Finding> {
    let mut timings = BTreeMap::new();
    let (findings, _) = analyze_file(label, content, ctx, &mut timings);
    findings
}

/// Path-keyed exemptions for one file. The shim directory is additionally
/// exempt from the ordering-graph rules: its wrappers forward caller
/// orderings verbatim, so its `Ordering` mentions are parameters, not
/// protocol decisions. Same for the trace crate's internal rings, which
/// are deliberately un-modeled (recording must not perturb the schedule).
struct Exemptions {
    is_shim: bool,
    is_trace: bool,
    progress_exempt: bool,
}

impl Exemptions {
    fn for_label(label: &str) -> Exemptions {
        let norm = label.replace('\\', "/");
        Exemptions {
            is_shim: norm.contains("crates/sync/src/shim"),
            is_trace: norm.contains("crates/trace/"),
            progress_exempt: ["crates/baseline/", "crates/bench/", "crates/harness/"]
                .iter()
                .any(|p| norm.contains(p)),
        }
    }
    fn order_graph_exempt(&self) -> bool {
        self.is_shim || self.is_trace
    }
}

/// Runs every per-file pass, timing each, and returns the findings plus
/// this file's ordering-graph sites (for the workspace pairing check).
fn analyze_file(
    label: &str,
    content: &str,
    ctx: &Context,
    timings: &mut BTreeMap<&'static str, Duration>,
) -> (Vec<Finding>, Vec<passes::order_graph::OpSite>) {
    fn timed(
        timings: &mut BTreeMap<&'static str, Duration>,
        name: &'static str,
        out: &mut Vec<Finding>,
        f: impl FnOnce() -> Vec<Finding>,
    ) {
        let t0 = Instant::now();
        out.extend(f());
        *timings.entry(name).or_default() += t0.elapsed();
    }
    let t0 = Instant::now();
    let file = SourceFile::parse(label, content);
    let ast = syntax::parse(&file);
    *timings.entry("parse").or_default() += t0.elapsed();
    let ex = Exemptions::for_label(label);
    let mut out = Vec::new();
    if !ex.is_shim && !ex.is_trace {
        timed(timings, "shim-import", &mut out, || {
            passes::shim::run(&file)
        });
    }
    timed(timings, "unsafe-comment", &mut out, || {
        passes::unsafe_audit::run(&file)
    });
    timed(timings, "refcount-pairing", &mut out, || {
        passes::refcount::run(&file)
    });
    if !ex.progress_exempt {
        timed(timings, "cas-progress/spin-guard", &mut out, || {
            passes::progress::run(&file)
        });
    }
    if !ex.is_trace {
        timed(timings, "probe-discipline", &mut out, || {
            passes::probes::run(&file)
        });
    }
    timed(timings, "refcount-balance", &mut out, || {
        passes::balance::run(&file, &ast, &ctx.summaries)
    });
    timed(timings, "protection-window", &mut out, || {
        passes::protection::run(&file, &ast, &ctx.guards)
    });
    // Sites are collected for every file so the token-level
    // `relaxed-ptr-order` rule (folded into the ordering graph) keeps its
    // original scope; the shim/trace exemption applies only to the
    // protocol-decision rules (SeqCst, invariants, workspace pairing) —
    // those wrappers forward caller orderings verbatim.
    let t0 = Instant::now();
    let mut sites = passes::order_graph::collect(&file);
    out.extend(passes::order_graph::relaxed_findings(&sites));
    if ex.order_graph_exempt() {
        sites = Vec::new();
    } else {
        out.extend(passes::order_graph::seqcst_findings(&sites));
        out.extend(passes::order_graph::invariant_findings(
            &file,
            ctx.invariants.as_ref(),
        ));
    }
    *timings.entry("order-graph").or_default() += t0.elapsed();
    (out, sites)
}

/// Library source roots to lint, relative to the workspace root:
/// `src/` plus every `crates/*/src`, except `xtask` and `analyze` — the
/// linter necessarily names the patterns it rejects and cannot lint
/// itself. Tests and benches are exempt by scope: their `std` atomics and
/// raw-pointer plumbing are harness bookkeeping, not protocol surface.
pub fn source_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut roots: Vec<PathBuf> = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            if e.file_name() == "xtask" || e.file_name() == "analyze" {
                continue;
            }
            roots.push(e.path().join("src"));
        }
    }
    while let Some(dir) = roots.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                roots.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                files.push(p);
            }
        }
    }
    files.sort();
    files
}

/// Aggregate per-pass wall-clock timings from one workspace run, for
/// `cargo xtask analyze --stats`.
#[derive(Debug, Default)]
pub struct PassStats {
    /// `(pass name, total duration across all files)`, sorted by name.
    pub timings: Vec<(&'static str, Duration)>,
    /// Files analyzed.
    pub files: usize,
    /// Total wall-clock for the whole run (context build included).
    pub total: Duration,
}

/// Analyzes the whole workspace rooted at `root`. Findings are sorted by
/// file, line, then rule.
pub fn analyze_workspace(root: &Path) -> Vec<Finding> {
    analyze_workspace_timed(root).0
}

/// [`analyze_workspace`] plus per-pass timing statistics.
pub fn analyze_workspace_timed(root: &Path) -> (Vec<Finding>, PassStats) {
    let run0 = Instant::now();
    let t0 = Instant::now();
    let ctx = Context::for_workspace(root);
    let mut timings: BTreeMap<&'static str, Duration> = BTreeMap::new();
    timings.insert("context-build", t0.elapsed());
    let mut out = Vec::new();
    let mut all_sites = Vec::new();
    let mut files = 0usize;
    for file in source_files(root) {
        let Ok(content) = std::fs::read_to_string(&file) else {
            continue;
        };
        let label = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .display()
            .to_string();
        let (findings, sites) = analyze_file(&label, &content, &ctx, &mut timings);
        out.extend(findings);
        all_sites.extend(sites);
        files += 1;
    }
    let t0 = Instant::now();
    out.extend(passes::order_graph::pairing_findings(&all_sites));
    *timings.entry("order-graph").or_default() += t0.elapsed();
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    let stats = PassStats {
        timings: timings.into_iter().collect(),
        files,
        total: run0.elapsed(),
    };
    (out, stats)
}

/// Whether `findings` should fail the run: any `Error`, or — when
/// `deny_warnings` — any finding at all.
pub fn should_fail(findings: &[Finding], deny_warnings: bool) -> bool {
    findings
        .iter()
        .any(|f| f.severity == Severity::Error || deny_warnings)
}
