//! Pointer-provenance protection analysis: every dereference of a
//! counted node pointer must sit *inside* its protection window.
//!
//! [`crate::dataflow`] proves counts are eventually released (no leaks);
//! this module proves the complementary direction — no *use after* the
//! protecting count is consumed, the exact use-after-reclamation/ABA
//! hazard the §5 scheme exists to prevent (invariant I11,
//! docs/PROTOCOL.md). It is a forward dataflow over the same
//! [`Cfg`](crate::cfg::Cfg), with a per-variable provenance lattice:
//!
//! * `Protected` — the local holds a live count, acquired by
//!   `safe_read`/`safe_read_tallied`/`alloc`/`incr_ref` or guaranteed by
//!   the enclosing fn's `// GUARD:` contract.
//! * `Parked` — the count was handed to a deferred-release buffer
//!   (`release_deferred`). A parked release is still a live process
//!   reference under I1: deref remains legal. The *flush*
//!   (`drain_deferred`/`flush_stats`) is the kill, not the park.
//! * `Released` — the protecting count was consumed (`release`,
//!   `release_into`, `reclaim_detached`, free-list pushes, a deferred
//!   flush). A dereference in this state — on *any* path — is reported.
//! * `Moved` — the count was handed off (to another binding, into the
//!   structure through a place-store, or to the caller via return).
//!   Deref through the old name stays silent: the window is owned
//!   elsewhere and this analysis does not track aliases.
//! * Unknown (absent from the map) — not a tracked provenance; never
//!   reported.
//!
//! The polarity is the inverse of the balance pass: there, consuming too
//! eagerly only *removes* leak reports, so any-path call summaries are
//! safe. Here a spurious kill would *invent* a use-after-release, so only
//! the explicit release-family calls (with the pointer as a plain
//! argument) close a window — a summarized callee that mentions a release
//! does not, because it may be releasing a *different* count on the same
//! node (e.g. `swing` dropping the link's count while the caller keeps
//! its process reference).
//!
//! Interprocedural checking goes through [`GuardSummaries`] and the
//! `// GUARD:` contract comment (see docs/ANALYSIS.md for the grammar):
//! a fn declaring `// GUARD: p` promises the caller holds a count on `p`
//! for the duration of the call, so `p` starts `Protected` in the callee
//! and every call site is checked for passing a closed-window pointer.
//! Raw-pointer params the body dereferences are summarized the same way
//! even without a contract, so safe helpers are checked at call sites
//! too; the *requirement* to write `// GUARD:` applies to `unsafe fn`s
//! (enforced by the `guard-contract` rule in the pass wrapper).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::cfg::{Cfg, Guard, Stmt, StmtKind};
use crate::dataflow::{FlowFinding, ACQUIRES};
use crate::lexer::{Delim, TokKind};
use crate::source::SourceFile;
use crate::syntax::{Ast, FnDef};

/// Calls that close a protection window immediately: the plain-identifier
/// argument's count is consumed at the call.
pub const KILLS: &[&str] = &[
    "release",
    "release_into",
    "reclaim_detached",
    "push_free",
    "push_free_global",
    "splice_free_global",
    "from_raw",
    // Backend-neutral process-reference release: a refcount decrement
    // under `RefCount`, a no-op under `Epoch` — either way the caller's
    // claim on the pointer ends here (I11/I12).
    "unprotect",
];

/// Calls that *park* a release in a deferred buffer: the count is still
/// live (deref stays legal) until a flush.
pub const PARKS: &[&str] = &["release_deferred", "unprotect_deferred"];

/// Calls that flush deferred buffers: every parked window closes here.
pub const FLUSHES: &[&str] = &["drain_deferred", "flush_stats"];

/// Calls that (re)open a window on an existing pointer argument.
pub const REACQUIRES: &[&str] = &["incr_ref", "protect_dup"];

/// The synthetic variable for a match scrutinee's pending value.
const SCRUT: &str = "#scrut";

/// Workspace `// GUARD:` contracts and deref summaries: fn name → indices
/// of raw-pointer parameters (receiver excluded).
#[derive(Debug, Default, Clone)]
pub struct GuardSummaries {
    /// Params declared in a `// GUARD:` contract comment.
    guards: BTreeMap<String, BTreeSet<usize>>,
    /// Raw-pointer params the body dereferences (directly; one level).
    derefs: BTreeMap<String, BTreeSet<usize>>,
}

impl GuardSummaries {
    /// Builds summaries from parsed files.
    pub fn build<'a>(units: impl IntoIterator<Item = (&'a SourceFile, &'a Ast)>) -> GuardSummaries {
        let mut out = GuardSummaries::default();
        for (file, ast) in units {
            out.absorb(file, ast);
        }
        out
    }

    /// Adds `file`'s fns to the summaries (used to fold a fixture file
    /// into a possibly-empty workspace view).
    pub fn absorb(&mut self, file: &SourceFile, ast: &Ast) {
        for def in &ast.fns {
            let raw_params: Vec<(usize, &str)> = def
                .params
                .iter()
                .enumerate()
                .filter_map(|(i, p)| match (&p.name, p.raw_ptr) {
                    (Some(n), true) => Some((i, n.as_str())),
                    _ => None,
                })
                .collect();
            if raw_params.is_empty() {
                continue;
            }
            if let Some(names) = fn_guard_contract(file, def) {
                for (i, n) in &raw_params {
                    if names.iter().any(|g| g == n) {
                        self.guards
                            .entry(def.item.name.clone())
                            .or_default()
                            .insert(*i);
                    }
                }
            }
            if let Some((open, close)) = def.item.body {
                for (i, n) in &raw_params {
                    if !deref_sites(file, open + 1, close, n).is_empty() {
                        self.derefs
                            .entry(def.item.name.clone())
                            .or_default()
                            .insert(*i);
                    }
                }
            }
        }
    }

    /// Param indices of `name` the caller must keep protected: the
    /// union of GUARD-declared and observed-dereferencing params.
    pub fn protected_params(&self, name: &str) -> BTreeSet<usize> {
        let mut out = self.guards.get(name).cloned().unwrap_or_default();
        if let Some(d) = self.derefs.get(name) {
            out.extend(d.iter().copied());
        }
        out
    }

    /// Whether `name` declares a `// GUARD:` contract for param `idx`.
    pub fn guard_declared(&self, name: &str, idx: usize) -> bool {
        self.guards.get(name).is_some_and(|s| s.contains(&idx))
    }
}

/// Parses the fn's leading `// GUARD:` contract, returning the declared
/// parameter names. Grammar (see docs/ANALYSIS.md): the marker is
/// followed by a comma-separated identifier list, then free prose —
/// `// GUARD: p, q — caller holds a count on each`. Returns `None` when
/// no contract is present; an empty list when the contract names nothing
/// parseable (the pass wrapper reports that as a stale contract).
pub fn fn_guard_contract(file: &SourceFile, def: &FnDef) -> Option<Vec<String>> {
    let start = file.item_start(def.item.fn_idx);
    let comments = file.leading_item_comments(start);
    let text = comments
        .iter()
        .map(|t| t.text.as_str())
        .find(|t| t.contains("GUARD:"))?;
    let rest = &text[text.find("GUARD:").unwrap() + "GUARD:".len()..];
    let mut names = Vec::new();
    let mut expect_ident = true;
    for word in rest.split_whitespace() {
        // Accept `p`, `p,`, `p,q`; stop at the first token that is not
        // part of the identifier list (the prose).
        for piece in word.split(',') {
            if piece.is_empty() {
                expect_ident = true;
                continue;
            }
            let is_ident = piece.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                && piece.chars().next().is_some_and(|c| !c.is_ascii_digit());
            if expect_ident && is_ident {
                names.push(piece.to_string());
                expect_ident = word.ends_with(',');
            } else {
                return Some(names);
            }
        }
    }
    Some(names)
}

/// How a tracked pointer's window can stand.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Prov {
    /// Live count held by this local.
    Protected,
    /// Release parked in a deferred buffer; still live until a flush.
    Parked,
    /// Window closed at `kill_line`; `mixed` when only on some paths.
    Released { kill_line: usize, mixed: bool },
    /// Count handed off (move/place-store/return); not tracked further.
    Moved,
}

/// Tracked state of one local.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct PVar {
    prov: Prov,
    /// Line where the window opened (acquire site or fn signature for
    /// GUARD params).
    origin_line: usize,
    /// What opened it, for diagnostics.
    origin: &'static str,
}

type State = BTreeMap<String, PVar>;

/// Identifier keywords that can legally precede a unary `*` deref.
const UNARY_PREFIX_KEYWORDS: &[&str] = &[
    "return", "in", "match", "if", "while", "else", "break", "unsafe", "mut", "move", "let",
    "loop", "as",
];

/// Lines where `[lo, hi)` dereferences `name`: unary `*name` or
/// `name.as_ref()`/`name.as_mut()`.
pub fn deref_sites(file: &SourceFile, lo: usize, hi: usize, name: &str) -> Vec<usize> {
    let toks = &file.toks;
    let mut out = Vec::new();
    for i in lo..hi.min(toks.len()) {
        let t = &toks[i];
        if t.kind == TokKind::Punct && t.text == "*" {
            let Some(n) = file.next_sig(i) else { continue };
            if !toks[n].is_ident(name) {
                continue;
            }
            // Unary position: not a binary multiply. A multiply's left
            // operand ends in an identifier (non-keyword), a literal, or
            // a close delimiter.
            let binary = file.prev_sig(i).is_some_and(|p| match toks[p].kind {
                TokKind::Ident => !UNARY_PREFIX_KEYWORDS.iter().any(|k| toks[p].is_ident(k)),
                TokKind::Literal | TokKind::Close(_) => true,
                _ => false,
            });
            if !binary {
                out.push(toks[n].line);
            }
        } else if t.is_ident(name) {
            let Some(d) = file.next_sig(i) else { continue };
            if !(toks[d].kind == TokKind::Punct && toks[d].text == ".") {
                continue;
            }
            let Some(m) = file.next_sig(d) else { continue };
            if toks[m].is_ident("as_ref") || toks[m].is_ident("as_mut") {
                out.push(toks[m].line);
            }
        }
    }
    out
}

/// A call site (`ident (`) in a token range.
struct Call {
    name_idx: usize,
    open: usize,
    close: usize,
}

fn all_calls(file: &SourceFile, lo: usize, hi: usize) -> Vec<Call> {
    let mut out = Vec::new();
    for i in lo..hi.min(file.toks.len()) {
        if file.toks[i].kind != TokKind::Ident {
            continue;
        }
        let Some(n) = file.next_sig(i) else { continue };
        if file.toks[n].kind != TokKind::Open(Delim::Paren) {
            continue;
        }
        out.push(Call {
            name_idx: i,
            open: n,
            close: file.partner[n].unwrap_or(n),
        });
    }
    out
}

/// Splits a call's arguments at depth-0 commas.
fn split_args(file: &SourceFile, open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut args = Vec::new();
    let mut start = open + 1;
    let mut i = open + 1;
    while i < close {
        match file.toks[i].kind {
            TokKind::Open(_) => {
                i = file.partner[i].map(|p| p + 1).unwrap_or(i + 1);
                continue;
            }
            TokKind::Punct if file.toks[i].text == "," => {
                args.push((start, i));
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if start < close {
        args.push((start, close));
    }
    args
}

/// Detects a plain assignment `name = rhs` in `[lo, hi)` and returns the
/// target with the RHS token range (trailing `,`/`;` trimmed). A single
/// `=` only — `==` and `=>` are excluded. Match-arm bodies lower as bare
/// expression statements, so rebinds there (`Some(n) => p = n,`) arrive
/// here instead of as `Bind`s.
fn assign_target(file: &SourceFile, lo: usize, hi: usize) -> Option<(String, usize, usize)> {
    let hi = hi.min(file.toks.len());
    let mut sig = (lo..hi).filter(|&i| !file.toks[i].is_comment());
    let first = sig.next()?;
    let eq = sig.next()?;
    let after = sig.next()?;
    if file.toks[first].kind != TokKind::Ident
        || file.toks[eq].kind != TokKind::Punct
        || file.toks[eq].text != "="
    {
        return None;
    }
    if file.toks[after].kind == TokKind::Punct
        && (file.toks[after].text == "=" || file.toks[after].text == ">")
    {
        return None;
    }
    let mut rhs_hi = hi;
    while rhs_hi > after {
        let t = &file.toks[rhs_hi - 1];
        if t.is_comment() || (t.kind == TokKind::Punct && (t.text == "," || t.text == ";")) {
            rhs_hi -= 1;
        } else {
            break;
        }
    }
    Some((file.toks[first].text.clone(), after, rhs_hi))
}

/// If `[lo, hi)`'s significant tokens are exactly one identifier (modulo
/// a leading `&`/`&mut`), returns it.
fn plain_ident(file: &SourceFile, lo: usize, hi: usize) -> Option<String> {
    let sig: Vec<usize> = (lo..hi.min(file.toks.len()))
        .filter(|&i| !file.toks[i].is_comment())
        .collect();
    match sig.as_slice() {
        [i] if file.toks[*i].kind == TokKind::Ident => Some(file.toks[*i].text.clone()),
        _ => None,
    }
}

/// The protection analysis for one function.
pub struct ProtectAnalysis<'a> {
    file: &'a SourceFile,
    def: &'a FnDef,
    guards: &'a GuardSummaries,
    /// Lines of `// GUARD:` comments (precomputed: the bless check runs
    /// per statement and must not rescan the whole token stream).
    guard_lines: Vec<usize>,
}

impl<'a> ProtectAnalysis<'a> {
    /// Prepares the analysis of `def` against workspace `guards`.
    pub fn new(
        file: &'a SourceFile,
        def: &'a FnDef,
        guards: &'a GuardSummaries,
    ) -> ProtectAnalysis<'a> {
        let guard_lines = file
            .toks
            .iter()
            .filter(|t| t.is_comment() && t.text.contains("GUARD:"))
            .map(|t| t.line)
            .collect();
        ProtectAnalysis {
            file,
            def,
            guards,
            guard_lines,
        }
    }

    /// Entry state: GUARD-declared raw-pointer params start protected.
    fn entry_state(&self) -> State {
        let mut state = State::new();
        let Some(declared) = fn_guard_contract(self.file, self.def) else {
            return state;
        };
        for p in &self.def.params {
            if let (Some(name), true) = (&p.name, p.raw_ptr) {
                if declared.iter().any(|d| d == name) {
                    state.insert(
                        name.clone(),
                        PVar {
                            prov: Prov::Protected,
                            origin_line: self.def.item.line,
                            origin: "protected by the caller per this fn's `// GUARD:` contract",
                        },
                    );
                }
            }
        }
        state
    }

    /// Runs the fixpoint + reporting sweep over `cfg`.
    pub fn run(&self, cfg: &Cfg) -> Vec<FlowFinding> {
        let mut ins: Vec<Option<State>> = vec![None; cfg.blocks.len()];
        ins[cfg.entry] = Some(self.entry_state());
        let mut work: VecDeque<usize> = VecDeque::from([cfg.entry]);
        let mut iters = 0usize;
        while let Some(b) = work.pop_front() {
            iters += 1;
            if iters > 64 * cfg.blocks.len() + 1024 {
                break;
            }
            let Some(state) = ins[b].clone() else {
                continue;
            };
            let out = self.transfer(&cfg.blocks[b].stmts, state, None);
            for edge in &cfg.blocks[b].succs {
                let mut s = out.clone();
                if let Guard::Null(name) = &edge.guard {
                    // Null carries no count and is never dereferenced on
                    // the guarded path.
                    s.remove(name);
                }
                let merged = match &ins[edge.to] {
                    None => s,
                    Some(prev) => merge(prev, &s),
                };
                if ins[edge.to].as_ref() != Some(&merged) {
                    ins[edge.to] = Some(merged);
                    if !work.contains(&edge.to) {
                        work.push_back(edge.to);
                    }
                }
            }
        }
        let mut findings: BTreeSet<FlowFinding> = BTreeSet::new();
        for (b, input) in ins.iter().enumerate() {
            let Some(state) = input else { continue };
            if b == cfg.exit {
                continue;
            }
            self.transfer(&cfg.blocks[b].stmts, state.clone(), Some(&mut findings));
        }
        findings.into_iter().collect()
    }

    fn transfer(
        &self,
        stmts: &[Stmt],
        mut state: State,
        mut findings: Option<&mut BTreeSet<FlowFinding>>,
    ) -> State {
        for stmt in stmts {
            self.step(stmt, &mut state, findings.as_deref_mut());
        }
        state
    }

    /// A statement-attached `// GUARD:` comment blesses its dereferences
    /// (the author states why the pointee is pinned — e.g. I10's cached
    /// anchors); kills and acquisitions still apply.
    fn stmt_guard_blessed(&self, stmt: &Stmt) -> bool {
        let (lo, hi) = stmt.range;
        let toks = &self.file.toks;
        let lines = (lo..hi.min(toks.len())).map(|i| toks[i].line);
        let (Some(first), Some(last)) = (lines.clone().min(), lines.max()) else {
            return false;
        };
        // Adjacency by line: a `// GUARD:` comment inside the statement
        // or on the line directly above it.
        self.guard_lines
            .iter()
            .any(|&line| line + 1 >= first && line <= last)
    }

    fn step(&self, stmt: &Stmt, state: &mut State, findings: Option<&mut BTreeSet<FlowFinding>>) {
        let (lo, hi) = stmt.range;
        if matches!(stmt.kind, StmtKind::ArmOpen) {
            self.arm_open(stmt, state);
            return;
        }
        let blessed = findings.is_some() && self.stmt_guard_blessed(stmt);
        let calls = all_calls(self.file, lo, hi);
        // 1. Dereference checks against the pre-kill state: a release in
        //    this statement consumes *after* its arguments are read.
        if let Some(f) = findings {
            if !blessed {
                self.check_derefs(lo, hi, state, f);
                self.check_call_args(&calls, state, f);
            }
        }
        // 2. Window transitions from calls.
        self.apply_calls(&calls, state);
        // 3. Value flow by statement kind.
        let acq_line = calls
            .iter()
            .find(|c| {
                let t = &self.file.toks[c.name_idx];
                ACQUIRES.iter().any(|a| t.is_ident(a))
            })
            .map(|c| self.file.toks[c.name_idx].line);
        match &stmt.kind {
            StmtKind::Bind(target) => {
                let key = target.clone().unwrap_or_else(|| "#destructured".into());
                self.flow_into(key, acq_line, lo, hi, state);
            }
            StmtKind::PlaceBind => {
                // Store into the structure: the window transfers to the
                // link that now holds the count.
                for name in tracked_idents(self.file, lo, hi, state) {
                    if let Some(v) = state.get_mut(&name) {
                        if !matches!(v.prov, Prov::Released { .. }) {
                            v.prov = Prov::Moved;
                        }
                    }
                }
            }
            StmtKind::Scrut => {
                if let Some(line) = acq_line {
                    state.insert(
                        SCRUT.into(),
                        PVar {
                            prov: Prov::Protected,
                            origin_line: line,
                            origin: "the protection window opens here",
                        },
                    );
                }
            }
            StmtKind::Return => {
                for name in tracked_idents(self.file, lo, hi, state) {
                    if let Some(v) = state.get_mut(&name) {
                        if !matches!(v.prov, Prov::Released { .. }) {
                            v.prov = Prov::Moved;
                        }
                    }
                }
            }
            StmtKind::Expr => {
                // Match-arm bodies lower as bare expressions, so a
                // `name = rhs` rebind must be recognized here too
                // (cf. `Bind` above): the rebound name takes the RHS's
                // window, clearing any `Released` from a prior round.
                if let Some((key, rhs_lo, rhs_hi)) = assign_target(self.file, lo, hi) {
                    self.flow_into(key, acq_line, rhs_lo, rhs_hi, state);
                }
            }
            StmtKind::ArmOpen => {}
        }
    }

    /// Value flow into `key` from the initializer/RHS range `[lo, hi)`:
    /// an acquisition opens a fresh window, a plain tracked identifier
    /// moves its window to `key`, anything else makes `key` untracked.
    fn flow_into(
        &self,
        key: String,
        acq_line: Option<usize>,
        lo: usize,
        hi: usize,
        state: &mut State,
    ) {
        if let Some(line) = acq_line {
            state.insert(
                key,
                PVar {
                    prov: Prov::Protected,
                    origin_line: line,
                    origin: "the protection window opens here",
                },
            );
        } else if let Some(moved) = plain_ident(self.file, lo, hi) {
            if let Some(var) = state.get(&moved).cloned() {
                if moved != key {
                    state.insert(
                        moved,
                        PVar {
                            prov: Prov::Moved,
                            ..var.clone()
                        },
                    );
                    state.insert(key, var);
                }
            } else {
                state.remove(&key);
            }
        } else {
            state.remove(&key);
        }
    }

    /// Reports dereferences of closed-window locals in `[lo, hi)`.
    fn check_derefs(&self, lo: usize, hi: usize, state: &State, f: &mut BTreeSet<FlowFinding>) {
        for (name, var) in state {
            let Prov::Released { kill_line, mixed } = var.prov else {
                continue;
            };
            for line in deref_sites(self.file, lo, hi, name) {
                let paths = if mixed { " on at least one path" } else { "" };
                f.insert(FlowFinding {
                    line,
                    message: format!(
                        "`{name}` is dereferenced here, but its protection window was \
                         closed{paths} (count consumed at line {kill_line}); a deref \
                         outside the window races reclamation (invariant I11)"
                    ),
                    related: vec![
                        (kill_line, "the protecting count is consumed here".into()),
                        (var.origin_line, var.origin.into()),
                    ],
                });
            }
        }
    }

    /// Reports closed-window locals passed to callees that deref (or
    /// declare `// GUARD:` on) the corresponding parameter.
    fn check_call_args(&self, calls: &[Call], state: &State, f: &mut BTreeSet<FlowFinding>) {
        for call in calls {
            let callee = self.file.toks[call.name_idx].text.as_str();
            let positions = self.guards.protected_params(callee);
            if positions.is_empty() {
                continue;
            }
            let args = split_args(self.file, call.open, call.close);
            for &pos in &positions {
                let Some(&(alo, ahi)) = args.get(pos) else {
                    continue;
                };
                let Some(name) = plain_ident(self.file, alo, ahi) else {
                    continue;
                };
                let Some(var) = state.get(&name) else {
                    continue;
                };
                let Prov::Released { kill_line, mixed } = var.prov else {
                    continue;
                };
                let why = if self.guards.guard_declared(callee, pos) {
                    "declares `// GUARD:` on"
                } else {
                    "dereferences"
                };
                let paths = if mixed { " on at least one path" } else { "" };
                f.insert(FlowFinding {
                    line: self.file.toks[call.name_idx].line,
                    message: format!(
                        "`{name}` is passed to `{callee}`, which {why} that parameter, \
                         but its protection window was closed{paths} (count consumed \
                         at line {kill_line}); the callee would deref outside the \
                         window (invariant I11)"
                    ),
                    related: vec![
                        (kill_line, "the protecting count is consumed here".into()),
                        (var.origin_line, var.origin.into()),
                    ],
                });
            }
        }
    }

    /// Applies window transitions from release/park/flush/reacquire calls.
    fn apply_calls(&self, calls: &[Call], state: &mut State) {
        for call in calls {
            let name = self.file.toks[call.name_idx].text.as_str();
            let kill_line = self.file.toks[call.name_idx].line;
            let transition = if KILLS.contains(&name) {
                Some(Prov::Released {
                    kill_line,
                    mixed: false,
                })
            } else if PARKS.contains(&name) {
                Some(Prov::Parked)
            } else if REACQUIRES.contains(&name) {
                Some(Prov::Protected)
            } else {
                None
            };
            if let Some(prov) = transition {
                for (alo, ahi) in split_args(self.file, call.open, call.close) {
                    let Some(arg) = plain_ident(self.file, alo, ahi) else {
                        continue;
                    };
                    if let Some(v) = state.get_mut(&arg) {
                        v.prov = prov.clone();
                    }
                }
            }
            if FLUSHES.contains(&name) {
                for v in state.values_mut() {
                    if v.prov == Prov::Parked {
                        v.prov = Prov::Released {
                            kill_line,
                            mixed: false,
                        };
                    }
                }
            }
        }
    }

    /// Match-arm entry: routes the pending scrutinee window through the
    /// pattern, mirroring the balance pass's arm handling.
    fn arm_open(&self, stmt: &Stmt, state: &mut State) {
        let (lo, hi) = stmt.range;
        let mut sig: Vec<usize> = (lo..hi.min(self.file.toks.len()))
            .filter(|&i| !self.file.toks[i].is_comment())
            .collect();
        if let Some(p) = sig.iter().position(|&i| self.file.toks[i].is_ident("if")) {
            sig.truncate(p);
        }
        let first = sig
            .iter()
            .find(|&&i| self.file.toks[i].kind == TokKind::Ident);
        let Some(&first) = first else { return };
        let head = self.file.toks[first].text.as_str();
        if head == "Err" || head == "None" {
            state.remove(SCRUT);
            return;
        }
        let Some(var) = state.remove(SCRUT) else {
            return;
        };
        let binding = sig.iter().find(|&&i| {
            let t = &self.file.toks[i];
            t.kind == TokKind::Ident
                && t.text != "_"
                && !t.is_ident("mut")
                && !t.is_ident("ref")
                && t.text.chars().next().is_some_and(|c| c.is_lowercase())
        });
        if let Some(&b) = binding {
            state.insert(self.file.toks[b].text.clone(), var);
        }
    }
}

/// Tracked variable names mentioned as identifiers in `[lo, hi)`.
fn tracked_idents(file: &SourceFile, lo: usize, hi: usize, state: &State) -> Vec<String> {
    let mut out = Vec::new();
    for i in lo..hi.min(file.toks.len()) {
        let t = &file.toks[i];
        if t.kind == TokKind::Ident && state.contains_key(&t.text) && !out.contains(&t.text) {
            out.push(t.text.clone());
        }
    }
    out
}

/// Joins two states. `Released` dominates (a deref is wrong if the window
/// is closed on *any* incoming path); `Parked` beats `Protected` only in
/// being flush-sensitive; `Moved` is the bottom of the deref-safe states.
fn merge(a: &State, b: &State) -> State {
    let mut out = State::new();
    let keys: BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    for k in keys {
        let v = match (a.get(k), b.get(k)) {
            (Some(va), Some(vb)) => join(va, vb),
            (Some(v), None) | (None, Some(v)) => {
                // Unknown on the other path: only a closed window is
                // worth remembering, and then only as some-path.
                let mut v = v.clone();
                if let Prov::Released { kill_line, .. } = v.prov {
                    v.prov = Prov::Released {
                        kill_line,
                        mixed: true,
                    };
                }
                v
            }
            (None, None) => unreachable!(),
        };
        out.insert(k.clone(), v);
    }
    out
}

fn join(a: &PVar, b: &PVar) -> PVar {
    let origin = if a.origin_line <= b.origin_line { a } else { b };
    let prov = match (&a.prov, &b.prov) {
        (
            Prov::Released {
                kill_line: ka,
                mixed: ma,
            },
            Prov::Released {
                kill_line: kb,
                mixed: mb,
            },
        ) => Prov::Released {
            kill_line: *ka.min(kb),
            mixed: *ma || *mb,
        },
        (Prov::Released { kill_line, .. }, _) | (_, Prov::Released { kill_line, .. }) => {
            Prov::Released {
                kill_line: *kill_line,
                mixed: true,
            }
        }
        (Prov::Parked, _) | (_, Prov::Parked) => Prov::Parked,
        (Prov::Protected, _) | (_, Prov::Protected) => Prov::Protected,
        (Prov::Moved, Prov::Moved) => Prov::Moved,
    };
    PVar {
        prov,
        origin_line: origin.origin_line,
        origin: origin.origin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cfg, syntax};

    fn analyze(src: &str) -> Vec<FlowFinding> {
        analyze_named(src, 0)
    }

    fn analyze_named(src: &str, fn_index: usize) -> Vec<FlowFinding> {
        let file = SourceFile::parse("t.rs", src);
        let ast = syntax::parse(&file);
        let guards = GuardSummaries::build([(&file, &ast)]);
        let def = &ast.fns[fn_index];
        let cfg = cfg::build(&file, def).expect("body");
        ProtectAnalysis::new(&file, def, &guards).run(&cfg)
    }

    #[test]
    fn deref_inside_window_is_clean() {
        let src = "fn f(&self) {\n\
            let h = self.arena.safe_read(&self.head);\n\
            let k = unsafe { (*h).key };\n\
            self.arena.release(h);\n\
        }";
        assert_eq!(analyze(src), vec![]);
    }

    #[test]
    fn deref_after_release_is_reported_with_both_relations() {
        let src = "fn f(&self) {\n\
            let h = self.arena.safe_read(&self.head);\n\
            self.arena.release(h);\n\
            let k = unsafe { (*h).key };\n\
        }";
        let findings = analyze(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 4);
        assert_eq!(findings[0].related.len(), 2);
        assert_eq!(findings[0].related[0].0, 3, "killing release");
        assert_eq!(findings[0].related[1].0, 2, "acquisition origin");
    }

    #[test]
    fn release_argument_itself_is_not_a_deref() {
        let src = "fn f(&self) {\n\
            let h = self.arena.safe_read(&self.head);\n\
            self.arena.release(h);\n\
        }";
        assert_eq!(analyze(src), vec![]);
    }

    #[test]
    fn branch_release_makes_mixed_deref() {
        let src = "fn f(&self) {\n\
            let h = self.arena.safe_read(&self.head);\n\
            if self.flip() {\n\
                self.arena.release(h);\n\
            }\n\
            let k = unsafe { (*h).key };\n\
        }";
        let findings = analyze(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("at least one path"));
    }

    #[test]
    fn parked_release_keeps_window_open_until_flush() {
        let src = "fn f(&mut self) {\n\
            let h = self.arena.safe_read(&self.head);\n\
            self.arena.release_deferred(&mut self.defer, h);\n\
            let a = unsafe { (*h).key };\n\
            self.arena.drain_deferred(&mut self.defer);\n\
            let b = unsafe { (*h).key };\n\
        }";
        let findings = analyze(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 6, "only the post-flush deref");
    }

    #[test]
    fn move_and_rebind_keep_window_with_new_owner() {
        let src = "fn f(&self) -> *mut Node {\n\
            let mut p = self.arena.safe_read(&self.head);\n\
            loop {\n\
                let q = self.arena.safe_read(&(*p).back_link);\n\
                if q.is_null() {\n\
                    return p;\n\
                }\n\
                self.arena.release(p);\n\
                p = q;\n\
            }\n\
        }";
        assert_eq!(analyze(src), vec![]);
    }

    #[test]
    fn deref_after_rebind_loses_nothing_but_release_without_rebind_fires() {
        let src = "fn f(&self) {\n\
            let mut p = self.arena.safe_read(&self.head);\n\
            loop {\n\
                self.arena.release(p);\n\
                let k = unsafe { (*p).key };\n\
                if k == 0 {\n\
                    break;\n\
                }\n\
            }\n\
        }";
        let findings = analyze(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn guard_param_starts_protected_and_release_then_deref_fires() {
        let src = "\
        // GUARD: p — caller holds a count on p.\n\
        unsafe fn broken(&self, p: *mut Node) -> u64 {\n\
            self.arena.release(p);\n\
            (*p).key\n\
        }";
        let findings = analyze(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`p`"));
        assert_eq!(findings[0].related.len(), 2);
    }

    #[test]
    fn released_pointer_passed_to_derefing_helper_is_reported() {
        let src = "\
        fn key_of(&self, p: *mut Node) -> u64 { unsafe { (*p).key } }\n\
        fn f(&self) {\n\
            let h = self.arena.safe_read(&self.head);\n\
            self.arena.release(h);\n\
            let k = self.key_of(h);\n\
        }";
        let findings = analyze_named(src, 1);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("key_of"), "{findings:?}");
    }

    #[test]
    fn incr_ref_reopens_the_window() {
        let src = "fn f(&self) {\n\
            let h = self.arena.safe_read(&self.head);\n\
            self.arena.release(h);\n\
            self.arena.incr_ref(h);\n\
            let k = unsafe { (*h).key };\n\
            self.arena.release(h);\n\
        }";
        assert_eq!(analyze(src), vec![]);
    }

    #[test]
    fn stmt_guard_comment_blesses_a_deref() {
        let src = "fn f(&self) {\n\
            let h = self.arena.safe_read(&self.head);\n\
            self.arena.release(h);\n\
            // GUARD: h stays readable: the cache slot pins it (I10).\n\
            let k = unsafe { (*h).key };\n\
        }";
        assert_eq!(analyze(src), vec![]);
    }

    #[test]
    fn untracked_pointers_are_silent() {
        let src = "fn f(&self, p: *mut Node) -> u64 {\n\
            unsafe { (*p).key }\n\
        }";
        assert_eq!(analyze(src), vec![]);
    }

    #[test]
    fn guard_contract_parses_name_lists() {
        let file = SourceFile::parse(
            "t.rs",
            "// GUARD: p, q — caller holds counts on both.\n\
             unsafe fn f(p: *mut N, q: *mut N) {}\n",
        );
        let ast = syntax::parse(&file);
        let names = fn_guard_contract(&file, &ast.fns[0]).expect("contract");
        assert_eq!(names, vec!["p".to_string(), "q".to_string()]);
    }

    #[test]
    fn binary_multiply_is_not_a_deref() {
        let file = SourceFile::parse("t.rs", "fn f(n: usize, p: usize) -> usize { n * p }");
        assert_eq!(deref_sites(&file, 0, file.toks.len(), "p"), vec![]);
    }

    #[test]
    fn match_arm_assignment_rebinds_the_window() {
        // `current = next` inside the arm body lowers as a bare
        // expression statement, not a `Bind`; the rebind must still
        // clear the `Released` state from the previous iteration
        // (this is `release_into`'s drain-loop shape).
        let src = "fn f(&self) {\n\
            let mut current = self.arena.safe_read(&self.head);\n\
            loop {\n\
                let next = unsafe { (*current).link };\n\
                self.arena.push_free(current);\n\
                match nonnull(next) {\n\
                    Some(next) => current = next,\n\
                    None => return,\n\
                }\n\
            }\n\
        }";
        assert_eq!(analyze(src), vec![]);
    }

    #[test]
    fn match_arm_without_rebind_still_fires() {
        // Same shape but the arm does NOT rebind: the back-edge carries
        // `Released` into the next iteration's deref.
        let src = "fn f(&self) {\n\
            let mut current = self.arena.safe_read(&self.head);\n\
            loop {\n\
                let next = unsafe { (*current).link };\n\
                self.arena.push_free(current);\n\
                match nonnull(next) {\n\
                    Some(next) => self.note(next),\n\
                    None => return,\n\
                }\n\
            }\n\
        }";
        let findings = analyze(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 4, "the loop-carried deref");
    }
}
