//! Seeded-violation fixtures: every pass must flag its known-bad snippet
//! and stay quiet on the corresponding clean one. The three use-import
//! evasions that defeated the PR 1 line-based lint (multi-line `use`,
//! `as` renames, grouped imports) are pinned here as regression tests.

use std::path::Path;

use valois_analyze::{analyze_source, analyze_workspace, should_fail, Severity};

/// A label under a linted library root: every pass runs, no exemptions.
const LIB: &str = "crates/core/src/fixture.rs";

fn rules(label: &str, src: &str) -> Vec<String> {
    analyze_source(label, src)
        .into_iter()
        .map(|f| f.rule.to_string())
        .collect()
}

fn count(label: &str, src: &str, rule: &str) -> usize {
    rules(label, src).iter().filter(|r| *r == rule).count()
}

// ---- shim-import ---------------------------------------------------------

#[test]
fn shim_flags_single_line_import() {
    assert_eq!(
        count(LIB, "use std::sync::atomic::AtomicUsize;\n", "shim-import"),
        1
    );
}

#[test]
fn shim_flags_core_import() {
    assert_eq!(
        count(LIB, "use core::sync::atomic::AtomicBool;\n", "shim-import"),
        1
    );
}

#[test]
fn regression_multi_line_use_is_seen() {
    // PR 1's line scan never saw the full path on one line.
    let src = "use std::sync::\n    atomic::AtomicUsize;\n";
    assert_eq!(count(LIB, src, "shim-import"), 1);
}

#[test]
fn regression_as_rename_is_seen() {
    // PR 1's line scan could be defeated by renaming the import.
    let src = "use std::sync::atomic::AtomicUsize as Hidden;\n";
    let findings = analyze_source(LIB, src);
    let f = findings
        .iter()
        .find(|f| f.rule == "shim-import")
        .expect("rename must be flagged");
    assert!(
        f.message.contains("Hidden"),
        "message names the rename: {}",
        f.message
    );
}

#[test]
fn regression_grouped_import_is_seen() {
    // PR 1's line scan missed paths hidden inside a brace group.
    let src = "use std::{sync::atomic::AtomicBool, fmt};\n";
    assert_eq!(count(LIB, src, "shim-import"), 1);
}

#[test]
fn shim_flags_inline_qualified_path() {
    let src = "fn f() -> usize {\n    std::sync::atomic::AtomicUsize::new(0).into_inner()\n}\n";
    assert_eq!(count(LIB, src, "shim-import"), 1);
}

#[test]
fn shim_accepts_the_shim_itself() {
    let src = "use valois_sync::shim::atomic::{AtomicUsize, Ordering};\n";
    assert_eq!(count(LIB, src, "shim-import"), 0);
}

#[test]
fn shim_dir_is_exempt_by_path() {
    // The shim is the one place allowed to touch std atomics directly.
    let src = "use std::sync::atomic::AtomicUsize;\n";
    assert_eq!(
        count("crates/sync/src/shim/atomic.rs", src, "shim-import"),
        0
    );
}

// ---- relaxed-ptr-order ---------------------------------------------------

const PTR_RELAXED_BAD: &str = "\
struct S {\n\
    head: AtomicPtr<u8>,\n\
}\n\
impl S {\n\
    fn peek(&self) -> *mut u8 {\n\
        self.head.load(Ordering::Relaxed)\n\
    }\n\
}\n";

#[test]
fn ordering_flags_relaxed_on_pointer_atomic() {
    assert_eq!(count(LIB, PTR_RELAXED_BAD, "relaxed-ptr-order"), 1);
}

#[test]
fn ordering_accepts_order_justification() {
    let src = PTR_RELAXED_BAD.replace(
        "self.head.load(Ordering::Relaxed)",
        "// ORDER: racy peek; validated by the CAS that follows.\n        self.head.load(Ordering::Relaxed)",
    );
    assert_eq!(count(LIB, &src, "relaxed-ptr-order"), 0);
}

#[test]
fn ordering_ignores_non_pointer_atomics() {
    let src = "\
struct S {\n\
    hits: AtomicUsize,\n\
}\n\
impl S {\n\
    fn bump(&self) {\n\
        self.hits.fetch_add(1, Ordering::Relaxed);\n\
    }\n\
}\n";
    assert_eq!(count(LIB, src, "relaxed-ptr-order"), 0);
}

#[test]
fn ordering_sees_multi_line_statement() {
    // A builder chain split over lines defeated a line-based scan.
    let src = "\
struct S {\n\
    head: AtomicPtr<u8>,\n\
}\n\
impl S {\n\
    fn peek(&self) -> *mut u8 {\n\
        self.head\n\
            .load(Ordering::Relaxed)\n\
    }\n\
}\n";
    assert_eq!(count(LIB, src, "relaxed-ptr-order"), 1);
}

#[test]
fn ordering_sees_renamed_ordering_enum() {
    let src = "\
use std::sync::atomic::Ordering as O;\n\
struct S {\n\
    head: AtomicPtr<u8>,\n\
}\n\
impl S {\n\
    fn peek(&self) -> *mut u8 {\n\
        self.head.load(O::Relaxed)\n\
    }\n\
}\n";
    assert_eq!(count(LIB, src, "relaxed-ptr-order"), 1);
}

// ---- unsafe-comment ------------------------------------------------------

#[test]
fn unsafe_block_without_comment_is_flagged() {
    let src = "fn f(p: *mut u8) {\n    unsafe {\n        *p = 0;\n    }\n}\n";
    assert_eq!(count(LIB, src, "unsafe-comment"), 1);
}

#[test]
fn unsafe_block_with_leading_safety_is_clean() {
    let src = "fn f(p: *mut u8) {\n    // SAFETY: caller guarantees p is valid.\n    unsafe {\n        *p = 0;\n    }\n}\n";
    assert_eq!(count(LIB, src, "unsafe-comment"), 0);
}

#[test]
fn unsafe_block_with_inner_safety_is_clean() {
    let src = "fn f(p: *mut u8) {\n    unsafe {\n        // SAFETY: caller guarantees p is valid.\n        *p = 0;\n    }\n}\n";
    assert_eq!(count(LIB, src, "unsafe-comment"), 0);
}

#[test]
fn unsafe_fn_without_safety_section_is_flagged() {
    let src = "/// Does a thing.\npub unsafe fn f(p: *mut u8) {\n    *p = 0;\n}\n";
    let findings = analyze_source(LIB, src);
    let f = findings
        .iter()
        .find(|f| f.rule == "unsafe-comment")
        .expect("undocumented unsafe fn must be flagged");
    assert!(
        f.message.contains("`f`"),
        "message names the fn: {}",
        f.message
    );
}

#[test]
fn unsafe_fn_with_safety_doc_is_clean() {
    let src = "/// Does a thing.\n///\n/// # Safety\n///\n/// `p` must be valid.\npub unsafe fn f(p: *mut u8) {\n    *p = 0;\n}\n";
    assert_eq!(count(LIB, src, "unsafe-comment"), 0);
}

#[test]
fn unsafe_impl_without_comment_is_flagged() {
    let src = "struct S(*mut u8);\nunsafe impl Send for S {}\n";
    assert_eq!(count(LIB, src, "unsafe-comment"), 1);
}

#[test]
fn unsafe_impl_with_comment_is_clean() {
    let src = "struct S(*mut u8);\n// SAFETY: the pointer is never dereferenced.\nunsafe impl Send for S {}\n";
    assert_eq!(count(LIB, src, "unsafe-comment"), 0);
}

#[test]
fn test_modules_are_exempt_from_unsafe_audit() {
    let src = "\
#[cfg(test)]\n\
mod tests {\n\
    fn f(p: *mut u8) {\n\
        unsafe {\n\
            *p = 0;\n\
        }\n\
    }\n\
}\n";
    assert_eq!(count(LIB, src, "unsafe-comment"), 0);
}

// ---- refcount-pairing ----------------------------------------------------

const LEAKY_READER: &str = "\
impl S {\n\
    fn peek_len(&self) -> usize {\n\
        // SAFETY: head is a counted root.\n\
        let p = unsafe { self.arena.safe_read(&self.head) };\n\
        p as usize\n\
    }\n\
}\n";

#[test]
fn refcount_flags_acquire_without_release() {
    let findings = analyze_source(LIB, LEAKY_READER);
    let f = findings
        .iter()
        .find(|f| f.rule == "refcount-pairing")
        .expect("unreleased safe_read must be flagged");
    assert!(
        f.message.contains("peek_len"),
        "message names the fn: {}",
        f.message
    );
}

#[test]
fn refcount_accepts_balanced_release() {
    let src = LEAKY_READER.replace("p as usize", "unsafe { self.arena.release(p) };\n        0");
    assert_eq!(count(LIB, &src, "refcount-pairing"), 0);
}

#[test]
fn refcount_accepts_raw_pointer_transfer() {
    // Returning a raw pointer is the §5 convention for "the caller now
    // owns this counted reference".
    let src = "\
impl S {\n\
    fn head_ref(&self) -> *mut Node {\n\
        // SAFETY: head is a counted root.\n\
        unsafe { self.arena.safe_read(&self.head) }\n\
    }\n\
}\n";
    assert_eq!(count(LIB, src, "refcount-pairing"), 0);
}

#[test]
fn refcount_accepts_count_comment() {
    let src = LEAKY_READER.replace(
        "fn peek_len",
        "// COUNT: the count is parked in self.cache; drop() releases it.\n    fn peek_len",
    );
    assert_eq!(count(LIB, &src, "refcount-pairing"), 0);
}

#[test]
fn refcount_accepts_backlink_resume_handoff() {
    // The PR 7 resume shape: a back_link walk that swaps counted hops
    // (release the old anchor, keep the new) and hands the final count
    // to the cursor via a `// COUNT:` transfer contract.
    let src = "\
impl S {\n\
    // COUNT: consumes the caller's count on `from`; the returned\n\
    // pointer carries one count that transfers to the caller.\n\
    fn backtrack(&self, from: *mut Node) -> *mut Node {\n\
        let mut p = from;\n\
        loop {\n\
            // SAFETY: p is counted-held, so back_link is readable.\n\
            let q = unsafe { self.arena.safe_read(&(*p).back_link) };\n\
            if q.is_null() {\n\
                return p;\n\
            }\n\
            // SAFETY: swap the held count from p to q.\n\
            unsafe { self.arena.release(p) };\n\
            p = q;\n\
        }\n\
    }\n\
}\n";
    assert_eq!(count(LIB, src, "refcount-pairing"), 0);
}

#[test]
fn refcount_flags_leaked_resumed_cursor() {
    // Seeded violation: the walk keeps acquiring back_link hops but
    // never releases the superseded anchor and never documents a
    // transfer — every hop leaks one count.
    let src = "\
impl S {\n\
    fn resume_leaky(&self, from: *mut Node) {\n\
        let mut p = from;\n\
        loop {\n\
            // SAFETY: p is counted-held, so back_link is readable.\n\
            let q = unsafe { self.arena.safe_read(&(*p).back_link) };\n\
            if q.is_null() {\n\
                break;\n\
            }\n\
            p = q;\n\
        }\n\
        self.anchor.store(p);\n\
    }\n\
}\n";
    let findings = analyze_source(LIB, src);
    let f = findings
        .iter()
        .find(|f| f.rule == "refcount-pairing")
        .expect("leaked resume walk must be flagged");
    assert!(
        f.message.contains("resume_leaky"),
        "message names the fn: {}",
        f.message
    );
}

// ---- cas-progress --------------------------------------------------------

const BARE_CAS_LOOP: &str = "\
fn bump(a: &AtomicUsize) {\n\
    loop {\n\
        let c = a.load(Ordering::Acquire);\n\
        if a.compare_exchange(c, c + 1, Ordering::AcqRel, Ordering::Acquire).is_ok() {\n\
            return;\n\
        }\n\
    }\n\
}\n";

#[test]
fn progress_flags_bare_cas_loop() {
    assert_eq!(count(LIB, BARE_CAS_LOOP, "cas-progress"), 1);
}

#[test]
fn progress_flags_bare_fetch_loop() {
    let src = "\
fn drain(a: &AtomicUsize) {\n\
    while a.load(Ordering::Acquire) != 0 {\n\
        a.fetch_sub(1, Ordering::AcqRel);\n\
    }\n\
}\n";
    assert_eq!(count(LIB, src, "cas-progress"), 1);
}

#[test]
fn progress_accepts_backoff() {
    let src = BARE_CAS_LOOP.replace(
        "return;",
        "return;\n        }\n        backoff.spin();\n        if false {",
    );
    assert_eq!(count(LIB, &src, "cas-progress"), 0);
}

#[test]
fn progress_accepts_wait_free_justification() {
    let src = BARE_CAS_LOOP.replace(
        "loop {",
        "// WAIT-FREE: a failed CAS means another bump landed.\nloop {",
    );
    assert_eq!(count(LIB, &src, "cas-progress"), 0);
}

#[test]
fn progress_flags_only_innermost_loop() {
    let src = "\
fn churn(a: &AtomicUsize) {\n\
    loop {\n\
        loop {\n\
            let c = a.load(Ordering::Acquire);\n\
            if a.compare_exchange(c, c + 1, Ordering::AcqRel, Ordering::Acquire).is_ok() {\n\
                break;\n\
            }\n\
        }\n\
    }\n\
}\n";
    assert_eq!(count(LIB, src, "cas-progress"), 1);
}

#[test]
fn progress_exempts_baseline_bench_harness_by_path() {
    for label in [
        "crates/baseline/src/locked.rs",
        "crates/bench/src/bin/stress.rs",
        "crates/harness/src/runner.rs",
    ] {
        assert_eq!(count(label, BARE_CAS_LOOP, "cas-progress"), 0, "{label}");
    }
}

// ---- spin-guard ----------------------------------------------------------

const GUARD_ACROSS_PROTOCOL: &str = "\
impl S {\n\
    fn f(&self, p: *mut Node) {\n\
        let guard = self.spin_lock.lock();\n\
        // SAFETY: p is a counted reference.\n\
        unsafe { self.arena.release(p) };\n\
        drop(guard);\n\
    }\n\
}\n";

#[test]
fn spin_guard_flags_protocol_call_under_lock() {
    assert_eq!(count(LIB, GUARD_ACROSS_PROTOCOL, "spin-guard"), 1);
}

#[test]
fn spin_guard_accepts_drop_before_protocol_call() {
    let src = "\
impl S {\n\
    fn f(&self, p: *mut Node) {\n\
        let guard = self.spin_lock.lock();\n\
        drop(guard);\n\
        // SAFETY: p is a counted reference.\n\
        unsafe { self.arena.release(p) };\n\
    }\n\
}\n";
    assert_eq!(count(LIB, src, "spin-guard"), 0);
}

#[test]
fn spin_guard_ignores_non_spin_locks() {
    let src = GUARD_ACROSS_PROTOCOL.replace("spin_lock", "segments_mutex");
    assert_eq!(count(LIB, &src, "spin-guard"), 0);
}

// ---- probe-discipline ----------------------------------------------------

#[test]
fn probe_flags_direct_record_call() {
    // The seeded violation: a bare `record` call behind the feature gate
    // evaluates its arguments (the pointer casts here) on the hot path
    // even with the recorder compiled out.
    let src = "fn hot(p: *mut u8, q: *mut u8) {\n\
               \x20   valois_trace::record(valois_trace::EventKind::CasAttempt, p as u64, q as u64, 0);\n\
               }\n";
    assert_eq!(count(LIB, src, "probe-discipline"), 1);
}

#[test]
fn probe_flags_record_import_and_rename() {
    assert_eq!(
        count(LIB, "use valois_trace::record;\n", "probe-discipline"),
        1
    );
    let findings = analyze_source(LIB, "use valois_trace::record as log_event;\n");
    let f = findings
        .iter()
        .find(|f| f.rule == "probe-discipline")
        .expect("rename must be flagged");
    assert!(
        f.message.contains("log_event"),
        "message names the rename: {}",
        f.message
    );
}

#[test]
fn probe_accepts_the_macro_form() {
    let src = "fn hot(p: *mut u8, q: *mut u8) {\n\
               \x20   valois_trace::probe!(CasAttempt, p as usize, q as usize);\n\
               }\n";
    assert_eq!(count(LIB, src, "probe-discipline"), 0);
}

#[test]
fn probe_accepts_other_valois_trace_items() {
    // snapshot/dump/arm_panic_dump are cold-path API, not probes.
    let src = "fn summary() {\n\
               \x20   let m = valois_trace::snapshot();\n\
               \x20   valois_trace::arm_panic_dump();\n\
               \x20   let _ = m;\n\
               }\n";
    assert_eq!(count(LIB, src, "probe-discipline"), 0);
}

#[test]
fn probe_trace_crate_is_exempt_by_path() {
    // The macro's own expansion necessarily names `record`.
    let src = "pub fn record(kind: EventKind, a: u64, b: u64, c: u64) {}\n\
               fn test_helper() { valois_trace::record(EventKind::Alloc, 0, 0, 0); }\n";
    assert_eq!(count("crates/trace/src/lib.rs", src, "probe-discipline"), 0);
}

// ---- severity / deny plumbing -------------------------------------------

#[test]
fn shim_violations_are_errors_and_fail_without_deny() {
    let findings = analyze_source(LIB, "use std::sync::atomic::AtomicUsize;\n");
    assert!(findings.iter().any(|f| f.severity == Severity::Error));
    assert!(should_fail(&findings, false));
}

#[test]
fn warnings_fail_only_under_deny() {
    let findings = analyze_source(LIB, BARE_CAS_LOOP);
    assert!(findings.iter().all(|f| f.severity == Severity::Warning));
    assert!(!should_fail(&findings, false));
    assert!(should_fail(&findings, true));
}

// ---- the real tree -------------------------------------------------------

#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyze sits two levels under the workspace root");
    let findings = analyze_workspace(root);
    assert!(
        findings.is_empty(),
        "workspace must satisfy its own lints:\n{}",
        valois_analyze::render_text(&findings)
    );
}

// ---- refcount-balance (v2 dataflow) --------------------------------------

#[test]
fn balance_flags_leak_via_early_return() {
    let src = "fn f(&self) -> bool {\n\
        let h = self.arena.safe_read(&self.head);\n\
        if self.stopped() {\n\
            return false;\n\
        }\n\
        self.arena.release(h);\n\
        true\n\
    }\n";
    let findings = analyze_source(LIB, src);
    let f = findings
        .iter()
        .find(|f| f.rule == "refcount-balance")
        .expect("early-return leak must be flagged");
    assert_eq!(f.severity, Severity::Error);
    // The SARIF related-location points at the acquire site.
    assert_eq!(f.related.len(), 1, "{:?}", f.related);
    assert_eq!(f.related[0].line, 2);
}

#[test]
fn balance_flags_leak_via_branch_divergence() {
    let src = "fn f(&self) {\n\
        let h = self.arena.safe_read(&self.head);\n\
        if self.fast_path() {\n\
            self.arena.release(h);\n\
        } else {\n\
            self.note_slow();\n\
        }\n\
    }\n";
    let findings = analyze_source(LIB, src);
    let f = findings
        .iter()
        .find(|f| f.rule == "refcount-balance")
        .expect("branch-divergence leak must be flagged");
    // One related location: the acquire whose count diverges.
    assert_eq!(f.related.len(), 1, "{:?}", f.related);
    assert_eq!(f.related[0].line, 2);
}

#[test]
fn balance_flags_declared_transfer_not_returned() {
    let src = "// COUNT: transfers to caller; release when done.\n\
    fn f(&self) -> usize {\n\
        self.arena.safe_read(&self.head) as usize\n\
    }\n";
    let findings = analyze_source(LIB, src);
    let f = findings
        .iter()
        .find(|f| f.rule == "refcount-balance")
        .expect("declared transfer without raw return must be flagged");
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(f.line, 2, "flagged at the fn header under the contract");
}

#[test]
fn balance_accepts_balanced_traversal() {
    let src = "fn f(&self) {\n\
        let mut t = self.arena.safe_read(&self.head);\n\
        loop {\n\
            let next = self.arena.safe_read(&(*t).next);\n\
            if next.is_null() {\n\
                break;\n\
            }\n\
            self.arena.release(t);\n\
            t = next;\n\
        }\n\
        self.arena.release(t);\n\
    }\n";
    assert_eq!(count(LIB, src, "refcount-balance"), 0);
}

#[test]
fn balance_accepts_raw_pointer_transfer() {
    let src = "fn f(&self) -> *mut Node {\n\
        self.arena.safe_read(&self.head)\n\
    }\n";
    assert_eq!(count(LIB, src, "refcount-balance"), 0);
}

// ---- order-graph: pairing, SeqCst, invariants ----------------------------

#[test]
fn order_graph_flags_unpaired_release() {
    use valois_analyze::passes::order_graph::{collect, pairing_findings};
    use valois_analyze::source::SourceFile;
    let src = "fn f(&self) {\n\
        self.flag.store(true, Ordering::Release);\n\
        let seen = self.flag.load(Ordering::Relaxed);\n\
    }\n";
    let file = SourceFile::parse(LIB, src);
    let findings = pairing_findings(&collect(&file));
    let f = findings
        .iter()
        .find(|f| f.rule == "order-pairing")
        .expect("unpaired Release must be flagged");
    assert_eq!(f.line, 2, "flagged at the Release store");
    // Related locations list the non-acquire readers.
    assert_eq!(f.related.len(), 1, "{:?}", f.related);
    assert_eq!(f.related[0].line, 3, "the Relaxed reader");
}

#[test]
fn order_graph_accepts_paired_release_acquire() {
    use valois_analyze::passes::order_graph::{collect, pairing_findings};
    use valois_analyze::source::SourceFile;
    let src = "fn f(&self) {\n\
        self.flag.store(true, Ordering::Release);\n\
        let seen = self.flag.load(Ordering::Acquire);\n\
    }\n";
    let file = SourceFile::parse(LIB, src);
    assert!(pairing_findings(&collect(&file)).is_empty());
}

#[test]
fn order_graph_flags_undocumented_seqcst_fence() {
    let src = "fn f(&self) {\n\
        fence(Ordering::SeqCst);\n\
    }\n";
    let findings = analyze_source(LIB, src);
    let f = findings
        .iter()
        .find(|f| f.rule == "seqcst-fence")
        .expect("undocumented SeqCst fence must be flagged");
    assert_eq!(f.line, 2, "flagged at the fence itself");
}

#[test]
fn order_graph_requires_invariant_citation_on_fences() {
    // ORDER alone is not enough for a fence: the invariant it enforces
    // must be cited.
    let src = "fn f(&self) {\n\
        // ORDER: pairs with the other fence in the remove path.\n\
        fence(Ordering::SeqCst);\n\
    }\n";
    let findings = analyze_source(LIB, src);
    let f = findings
        .iter()
        .find(|f| f.rule == "seqcst-fence")
        .expect("fence without INVARIANT citation must be flagged");
    assert_eq!(f.line, 3, "flagged at the fence under the bare ORDER note");
}

#[test]
fn order_graph_accepts_fully_documented_fence() {
    let src = "fn f(&self) {\n\
        // ORDER: pairs with the sweep fence. INVARIANT: I9.\n\
        fence(Ordering::SeqCst);\n\
    }\n";
    assert_eq!(count(LIB, src, "seqcst-fence"), 0);
}

#[test]
fn invariant_ref_flags_stale_reference() {
    use valois_analyze::{analyze_source_with, Context};
    let src = "fn f(&self) {\n\
        // INVARIANT: I99 makes this sound.\n\
        let x = 1;\n\
    }\n";
    let ctx = Context {
        invariants: Some((1..=9).collect()),
        summaries: Default::default(),
        guards: Default::default(),
    };
    let findings = analyze_source_with(LIB, src, &ctx);
    let f = findings
        .iter()
        .find(|f| f.rule == "invariant-ref")
        .expect("stale invariant reference must be flagged");
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(f.line, 2, "flagged at the citing comment");
}

#[test]
fn invariant_ref_accepts_resolvable_reference() {
    use valois_analyze::{analyze_source_with, Context};
    let src = "fn f(&self) {\n\
        // INVARIANT: I5 guarantees a single in-pointer.\n\
        let x = 1;\n\
    }\n";
    let ctx = Context {
        invariants: Some((1..=9).collect()),
        summaries: Default::default(),
        guards: Default::default(),
    };
    let findings = analyze_source_with(LIB, src, &ctx);
    assert!(findings.iter().all(|f| f.rule != "invariant-ref"));
}

#[test]
fn protocol_invariants_are_parsed_from_the_real_doc() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let text =
        std::fs::read_to_string(root.join("docs/PROTOCOL.md")).expect("docs/PROTOCOL.md exists");
    let defined = valois_analyze::protocol_invariants(&text);
    // I1..=I11 are the currently documented invariants; a renumbering must
    // update every // INVARIANT: citation (the invariant-ref pass checks
    // the code side, this pins the doc side).
    for n in 1..=11 {
        assert!(defined.contains(&n), "I{n} missing from PROTOCOL.md");
    }
}

// ---- protection-window / guard-contract (provenance dataflow) ------------

#[test]
fn protection_flags_direct_use_after_release() {
    let src = "fn f(&self) {\n\
        let h = self.arena.safe_read(&self.head);\n\
        self.arena.release(h);\n\
        let k = unsafe { (*h).key };\n\
    }\n";
    let findings = analyze_source(LIB, src);
    let f = findings
        .iter()
        .find(|f| f.rule == "protection-window")
        .expect("use-after-release must be flagged");
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(f.line, 4, "flagged at the deref");
    // Related locations: the killing release, then the acquisition origin.
    assert_eq!(f.related.len(), 2, "{:?}", f.related);
    assert_eq!(f.related[0].line, 3, "killing release");
    assert_eq!(f.related[1].line, 2, "acquisition origin");
}

#[test]
fn protection_flags_branch_only_release() {
    // The window closes on one arm only; the deref after the join is
    // reachable with a dead pointer on that path.
    let src = "fn f(&self) {\n\
        let h = self.arena.safe_read(&self.head);\n\
        if self.fast_path() {\n\
            self.arena.release(h);\n\
        }\n\
        let k = unsafe { (*h).key };\n\
    }\n";
    let findings = analyze_source(LIB, src);
    let f = findings
        .iter()
        .find(|f| f.rule == "protection-window")
        .expect("branch-only release must be flagged");
    assert_eq!(f.line, 6);
    assert_eq!(f.related.len(), 2, "{:?}", f.related);
    assert_eq!(f.related[0].line, 4, "the branch-local release");
}

#[test]
fn protection_flags_deref_after_deferred_flush() {
    // A parked release keeps the window open (I11: the park is not the
    // kill); the batch flush is what closes it.
    let src = "fn f(&mut self) {\n\
        let h = self.arena.safe_read(&self.head);\n\
        self.arena.release_deferred(&mut self.defer, h);\n\
        let a = unsafe { (*h).key };\n\
        self.arena.drain_deferred(&mut self.defer);\n\
        let b = unsafe { (*h).key };\n\
    }\n";
    let findings: Vec<_> = analyze_source(LIB, src)
        .into_iter()
        .filter(|f| f.rule == "protection-window")
        .collect();
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].line, 6, "only the post-flush deref");
    assert_eq!(findings[0].related.len(), 2, "{:?}", findings[0].related);
    assert_eq!(findings[0].related[0].line, 5, "the flush is the kill");
}

#[test]
fn protection_flags_unsafe_helper_missing_guard() {
    let src = "impl S {\n\
        /// Reads the key.\n\
        ///\n\
        /// # Safety\n\
        ///\n\
        /// `p` must be protected.\n\
        pub unsafe fn key_of(&self, p: *mut Node) -> u64 {\n\
            (*p).key\n\
        }\n\
    }\n";
    let findings = analyze_source(LIB, src);
    let f = findings
        .iter()
        .find(|f| f.rule == "guard-contract")
        .expect("unsafe fn deref'ing a raw param needs a GUARD contract");
    assert_eq!(f.severity, Severity::Warning);
    assert_eq!(f.line, 7, "flagged at the fn header");
}

#[test]
fn protection_flags_guarded_callee_that_releases_then_derefs() {
    // The GUARD contract says the caller holds the count — so the callee
    // consuming it and then deref'ing violates its own declared window.
    let src = "impl S {\n\
        // GUARD: p — caller holds a counted reference for the call.\n\
        unsafe fn consume_then_peek(&self, p: *mut Node) -> u64 {\n\
            self.arena.release(p);\n\
            (*p).key\n\
        }\n\
    }\n";
    let findings = analyze_source(LIB, src);
    let f = findings
        .iter()
        .find(|f| f.rule == "protection-window")
        .expect("release-then-deref under a GUARD contract must be flagged");
    assert_eq!(f.line, 5);
    assert_eq!(f.related.len(), 2, "{:?}", f.related);
    assert_eq!(f.related[0].line, 4, "killing release");
    assert_eq!(
        f.related[1].line, 3,
        "the contracted fn header is the origin"
    );
}

#[test]
fn protection_flags_released_arg_passed_to_guarded_helper() {
    // Interprocedural: the helper's GUARD says its param must be live,
    // so passing a released pointer at that position is a violation.
    let src = "impl S {\n\
        // GUARD: p — caller holds a counted reference for the call.\n\
        unsafe fn peek(&self, p: *mut Node) -> u64 {\n\
            (*p).key\n\
        }\n\
        fn f(&self) {\n\
            let h = self.arena.safe_read(&self.head);\n\
            self.arena.release(h);\n\
            let k = unsafe { self.peek(h) };\n\
        }\n\
    }\n";
    let findings = analyze_source(LIB, src);
    let f = findings
        .iter()
        .find(|f| f.rule == "protection-window" && f.line == 9)
        .expect("released arg at a GUARD position must be flagged");
    assert_eq!(f.related.len(), 2, "{:?}", f.related);
    assert_eq!(f.related[0].line, 8, "killing release");
    assert_eq!(f.related[1].line, 7, "acquisition origin");
}

#[test]
fn protection_accepts_transfer_via_return() {
    // Returning the raw pointer hands the count (and the window) to the
    // caller; no deref happens after any kill.
    let src = "fn head_ref(&self) -> *mut Node {\n\
        self.arena.safe_read(&self.head)\n\
    }\n";
    assert_eq!(count(LIB, src, "protection-window"), 0);
}

#[test]
fn protection_accepts_loop_carried_resume_redereference() {
    // The PR 7 backtrack shape: each hop releases the superseded anchor
    // and rebinds, so the deref at the loop head is always in-window.
    let src = "fn backtrack(&self, from: *mut Node) -> *mut Node {\n\
        let mut p = self.arena.safe_read(&self.anchor);\n\
        loop {\n\
            let q = unsafe { self.arena.safe_read(&(*p).back_link) };\n\
            if q.is_null() {\n\
                return p;\n\
            }\n\
            self.arena.release(p);\n\
            p = q;\n\
        }\n\
    }\n";
    assert_eq!(count(LIB, src, "protection-window"), 0);
}

#[test]
fn protection_accepts_guard_blessed_cached_anchor() {
    // I10's cached-cursor anchors: the slot keeps its own count parked,
    // so a re-deref after this fn's release is pinned by the cache —
    // stated with a statement-level GUARD bless.
    let src = "fn f(&self) {\n\
        let h = self.arena.safe_read(&self.head);\n\
        self.arena.release(h);\n\
        // GUARD: h — the cursor cache holds its own count (I10).\n\
        let k = unsafe { (*h).key };\n\
    }\n";
    assert_eq!(count(LIB, src, "protection-window"), 0);
}

#[test]
fn protection_sarif_carries_kill_and_origin_notes() {
    let src = "fn f(&self) {\n\
        let h = self.arena.safe_read(&self.head);\n\
        self.arena.release(h);\n\
        let k = unsafe { (*h).key };\n\
    }\n";
    let findings: Vec<_> = analyze_source(LIB, src)
        .into_iter()
        .filter(|f| f.rule == "protection-window")
        .collect();
    let sarif = valois_analyze::render_sarif(&findings);
    assert!(sarif.contains("relatedLocations"), "{sarif}");
    assert!(sarif.contains("count is consumed here"), "{sarif}");
    assert!(sarif.contains("window opens here"), "{sarif}");
}

#[test]
fn sarif_related_locations_round_trip() {
    let src = "fn f(&self) -> bool {\n\
        let h = self.arena.safe_read(&self.head);\n\
        if self.stopped() {\n\
            return false;\n\
        }\n\
        self.arena.release(h);\n\
        true\n\
    }\n";
    let findings: Vec<_> = analyze_source(LIB, src)
        .into_iter()
        .filter(|f| f.rule == "refcount-balance")
        .collect();
    let sarif = valois_analyze::render_sarif(&findings);
    assert!(sarif.contains("relatedLocations"), "{sarif}");
    assert!(sarif.contains("acquires its count here"), "{sarif}");
}
