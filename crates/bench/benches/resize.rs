//! The E-resize artifact bench: fixed-size `HashDict::with_buckets(16)`
//! against the split-ordered `ResizableHashDict` under growing key
//! ranges.
//!
//! Two phases per size, matching `experiments::e10_resize`:
//!
//! 1. **fill** — `run_fill` inserts the keys `0..n` from disjoint strided
//!    shards. This is the workload a fixed bucket count cannot amortize
//!    (chains grow to n/16) and the one the resizable table absorbs by
//!    doubling its bucket count, never moving an item.
//! 2. **mix** — the balanced find/insert/delete mix over the filled
//!    table, where the fixed table pays O(n/16) per lookup and the
//!    resizable table keeps expected-O(1) buckets.
//!
//! Writes the measured rates to `BENCH_resize.json` at the repo root so
//! the fixed-vs-resizable ratio is machine-checkable.
//!
//! `--smoke` (CI): one tiny size, no JSON artifact — proves the harness
//! end to end without measuring anything.

use std::fs;
use std::path::Path;
use std::time::Duration;

use valois_bench::criterion::smoke_mode;
use valois_dict::{HashDict, ResizableHashDict};
use valois_harness::{run_fill, run_throughput, RunConfig, WorkloadSpec};

struct Row {
    n: u64,
    fixed_fill: f64,
    resz_fill: f64,
    fixed_mix: f64,
    resz_mix: f64,
    buckets: u64,
    doublings: u64,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    xs[xs.len() / 2]
}

fn main() {
    let smoke = smoke_mode();
    let sizes: &[u64] = if smoke {
        &[512]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let repeats = if smoke { 1 } else { 3 };
    let mix_window = Duration::from_millis(if smoke { 10 } else { 200 });
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);

    let mut rows: Vec<Row> = Vec::new();
    for &n in sizes {
        // Median fill rate over fresh tables (a fill is one-shot: it is
        // exactly the growth phase, so each repeat needs a new table).
        let mut fixed_fills = Vec::new();
        let mut resz_fills = Vec::new();
        let mut last_pair: Option<(HashDict<u64, u64>, ResizableHashDict<u64, u64>)> = None;
        for _ in 0..repeats {
            let fixed: HashDict<u64, u64> = HashDict::with_buckets(16);
            fixed_fills.push(run_fill(&fixed, n, threads).inserts_per_sec());
            let resz: ResizableHashDict<u64, u64> = ResizableHashDict::new();
            resz_fills.push(run_fill(&resz, n, threads).inserts_per_sec());
            last_pair = Some((fixed, resz));
        }
        let (fixed, resz) = last_pair.expect("repeats >= 1");

        let mut spec = WorkloadSpec::standard(n);
        spec.prefill = 0; // both tables already hold 0..n
        let run = RunConfig {
            threads,
            duration: mix_window,
            workload: spec,
            op_delay: None,
            measure_latency: false,
        };
        let fixed_mix = run_throughput(&fixed, &run).ops_per_sec();
        let resz_mix = run_throughput(&resz, &run).ops_per_sec();

        let row = Row {
            n,
            fixed_fill: median(fixed_fills),
            resz_fill: median(resz_fills),
            fixed_mix,
            resz_mix,
            buckets: resz.bucket_count(),
            doublings: resz.doublings(),
        };
        println!(
            "resize/{n}: fill {:.0}/s vs {:.0}/s ({:.2}x), mix {:.0}/s vs {:.0}/s ({:.2}x), \
             {} buckets after {} doublings",
            row.fixed_fill,
            row.resz_fill,
            row.resz_fill / row.fixed_fill.max(1.0),
            row.fixed_mix,
            row.resz_mix,
            row.resz_mix / row.fixed_mix.max(1.0),
            row.buckets,
            row.doublings,
        );
        rows.push(row);
    }

    if smoke {
        println!("resize: smoke run complete (no artifact written)");
        return;
    }

    let head = rows.last().expect("at least one size measured");
    let fill_speedup = head.resz_fill / head.fixed_fill.max(1.0);
    let mix_speedup = head.resz_mix / head.fixed_mix.max(1.0);
    println!(
        "\nresize: at {} keys the resizable table runs {fill_speedup:.2}x the fixed-16 fill \
         rate and {mix_speedup:.2}x its mixed-op throughput",
        head.n
    );

    let mut sizes_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            sizes_json.push(',');
        }
        sizes_json.push_str(&format!(
            "\n    {{ \"n\": {}, \"fixed16_fill_per_sec\": {:.0}, \"resizable_fill_per_sec\": {:.0}, \
             \"fixed16_mix_ops_per_sec\": {:.0}, \"resizable_mix_ops_per_sec\": {:.0}, \
             \"resizable_buckets\": {}, \"doublings\": {}, \"fill_speedup\": {:.2}, \
             \"mix_speedup\": {:.2} }}",
            r.n,
            r.fixed_fill,
            r.resz_fill,
            r.fixed_mix,
            r.resz_mix,
            r.buckets,
            r.doublings,
            r.resz_fill / r.fixed_fill.max(1.0),
            r.resz_mix / r.fixed_mix.max(1.0),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"resize\",\n  \"fixed_buckets\": 16,\n  \"threads\": {threads},\n  \
         \"sizes\": [{sizes_json}\n  ],\n  \
         \"headline\": {{\n    \"n\": {},\n    \"fill_speedup\": {fill_speedup:.2},\n    \
         \"mix_speedup\": {mix_speedup:.2}\n  }}\n}}\n",
        head.n
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_resize.json");
    match fs::write(&out, json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}
