//! Spin-lock algorithm comparison (the §1 baselines) and the exponential
//! backoff ablation (§2.1 cites backoff for contention management).

use std::sync::atomic::{AtomicU64, Ordering};
use valois_bench::criterion::{black_box, BenchmarkId, Criterion};
use valois_bench::{criterion_group, criterion_main};
use valois_sync::{Backoff, LockKind};

/// Per-thread iterations for contended runs. FIFO locks (ticket/CLH/
/// Anderson) hand off to a specific waiter, which on a host with fewer
/// cores than threads costs a scheduler round per acquisition — keep the
/// counts small there so the benches stay tractable.
fn contended_iters() -> u64 {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 4 {
        5_000
    } else {
        200
    }
}

fn bench_uncontended_locks(c: &mut Criterion) {
    let mut group = c.benchmark_group("lock_uncontended");
    for kind in LockKind::ALL {
        let lock = kind.build();
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                lock.acquire();
                lock.release();
            });
        });
    }
    group.finish();
}

fn bench_contended_locks(c: &mut Criterion) {
    let mut group = c.benchmark_group("lock_contended_4t");
    group.sample_size(10);
    for kind in LockKind::ALL {
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            let iters = contended_iters();
            b.iter(|| {
                let lock = kind.build();
                let counter = AtomicU64::new(0);
                std::thread::scope(|s| {
                    for _ in 0..4 {
                        let lock = &lock;
                        let counter = &counter;
                        s.spawn(move || {
                            for _ in 0..iters {
                                lock.acquire();
                                counter.fetch_add(1, Ordering::Relaxed);
                                lock.release();
                            }
                        });
                    }
                });
                black_box(counter.load(Ordering::Relaxed))
            });
        });
    }
    group.finish();
}

fn bench_backoff_ablation(c: &mut Criterion) {
    // CAS retry loops with and without §2.1 exponential backoff, 4 threads
    // incrementing one word.
    let mut group = c.benchmark_group("cas_backoff_ablation");
    group.sample_size(10);
    let run = |use_backoff: bool| {
        let word = AtomicU64::new(0);
        let iters = contended_iters() * 2;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let word = &word;
                s.spawn(move || {
                    let mut backoff = Backoff::new();
                    for _ in 0..iters {
                        loop {
                            let v = word.load(Ordering::Acquire);
                            if word
                                .compare_exchange_weak(
                                    v,
                                    v + 1,
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                )
                                .is_ok()
                            {
                                break;
                            }
                            if use_backoff {
                                backoff.spin();
                            }
                        }
                        backoff.reset();
                    }
                });
            }
        });
        word.load(Ordering::Relaxed)
    };
    group.bench_function("no_backoff", |b| b.iter(|| black_box(run(false))));
    group.bench_function("exponential_backoff", |b| b.iter(|| black_box(run(true))));
    group.finish();
}

criterion_group!(
    benches,
    bench_uncontended_locks,
    bench_contended_locks,
    bench_backoff_ablation
);
criterion_main!(benches);
