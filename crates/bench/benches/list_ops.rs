//! Micro-benchmarks of the §3 list primitives: cursor traversal, Update,
//! TryInsert, TryDelete (single-threaded baseline costs).

use valois_bench::criterion::{black_box, BatchSize, BenchmarkId, Criterion, Throughput};
use valois_bench::{criterion_group, criterion_main};
use valois_core::List;

fn bench_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("list_traversal");
    for &n in &[100u64, 1_000, 10_000] {
        let list: List<u64> = (0..n).collect();
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("cursor_walk", n), &n, |b, _| {
            b.iter(|| {
                let mut sum = 0u64;
                list.for_each(|v| sum += *v);
                black_box(sum)
            });
        });
    }
    group.finish();
}

fn bench_insert_front(c: &mut Criterion) {
    c.bench_function("list_insert_front", |b| {
        b.iter_batched(
            List::<u64>::new,
            |list| {
                {
                    let mut cur = list.cursor();
                    for i in 0..100 {
                        cur.insert(i).unwrap();
                    }
                }
                black_box(list)
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_delete_front(c: &mut Criterion) {
    c.bench_function("list_delete_front_100", |b| {
        b.iter_batched(
            || (0..100u64).collect::<List<u64>>(),
            |list| {
                {
                    let mut cur = list.cursor();
                    while !cur.is_at_end() {
                        cur.try_delete();
                        cur.update();
                    }
                }
                black_box(list)
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_update_valid_cursor(c: &mut Criterion) {
    let list: List<u64> = (0..64).collect();
    c.bench_function("cursor_update_when_valid", |b| {
        let mut cur = list.cursor();
        b.iter(|| {
            cur.update();
            black_box(cur.is_valid())
        });
    });
}

criterion_group!(
    benches,
    bench_traversal,
    bench_insert_front,
    bench_delete_front,
    bench_update_valid_cursor
);
criterion_main!(benches);
