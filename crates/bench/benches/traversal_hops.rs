//! Per-hop traversal cost: the cursor hop loop (`SafeRead` + deferred
//! `Release` + count transfer) against a raw pointer walk over the same
//! nodes.
//!
//! This is the hot path the magazine/deferred-release work targets: each
//! `Cursor::next` used to pay six refcount RMWs plus four shared-counter
//! increments per hop; with count transfer, deferred release batching, and
//! cursor-resident tallies it pays two `SafeRead` increments plus two
//! amortized deferred decrements. The bench reports ns per *hop* (node
//! visited), and — unlike the other benches — writes the measured per-hop
//! costs to `BENCH_traversal.json` at the repo root next to the recorded
//! seed baseline, so the before/after ratio is machine-checkable.
//!
//! `--smoke` (CI): run one short iteration of each case and skip the JSON
//! artifact — proves the harness end to end without measuring anything.

use std::fs;
use std::path::Path;

use valois_bench::criterion::{
    black_box, last_median_ns, smoke_mode, BenchmarkId, Criterion, Throughput,
};
use valois_core::List;

/// Seed-tree E8 measurements (EXPERIMENTS.md, single-core container):
/// protected traversal per-node cost before the batching layers existed,
/// and the raw-walk floor it is compared against.
const BASELINE_PROTECTED_NS_PER_HOP: f64 = 95.7;
const BASELINE_RAW_NS_PER_HOP: f64 = 3.5;

struct Row {
    n: u64,
    protected_ns: f64,
    raw_ns: f64,
}

fn main() {
    let smoke = smoke_mode();
    let sizes: &[u64] = if smoke { &[64] } else { &[1_000, 10_000] };

    let mut c = Criterion::default();
    let mut rows: Vec<Row> = Vec::new();
    {
        let mut group = c.benchmark_group("traversal_hops");
        for &n in sizes {
            let mut list: List<u64> = (0..n).collect();
            group.throughput(Throughput::Elements(n));
            group.bench_with_input(BenchmarkId::new("protected_cursor", n), &n, |b, _| {
                b.iter(|| {
                    let mut sum = 0u64;
                    list.for_each(|v| sum += *v);
                    black_box(sum)
                });
            });
            let protected_ns = last_median_ns() / n as f64;
            group.bench_with_input(BenchmarkId::new("raw_walk", n), &n, |b, _| {
                b.iter(|| {
                    let mut sum = 0u64;
                    list.for_each_unprotected(|v| sum += *v);
                    black_box(sum)
                });
            });
            let raw_ns = last_median_ns() / n as f64;
            rows.push(Row {
                n,
                protected_ns,
                raw_ns,
            });
        }
        group.finish();
    }

    if smoke {
        println!("traversal_hops: smoke run complete (no artifact written)");
        return;
    }

    // Summary + artifact. The headline number is the larger list (cold-ish
    // cache, amortized batch boundaries all exercised).
    let head = rows.last().expect("at least one size measured");
    let speedup = BASELINE_PROTECTED_NS_PER_HOP / head.protected_ns;
    println!(
        "\ntraversal_hops: protected {:.1} ns/hop (baseline {BASELINE_PROTECTED_NS_PER_HOP}) \
         — {speedup:.2}x vs seed, {:.2}x over raw walk",
        head.protected_ns,
        head.protected_ns / head.raw_ns,
    );

    let mut sizes_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            sizes_json.push(',');
        }
        sizes_json.push_str(&format!(
            "\n    {{ \"n\": {}, \"protected_ns_per_hop\": {:.2}, \"raw_ns_per_hop\": {:.2}, \
             \"protection_overhead_ratio\": {:.2} }}",
            r.n,
            r.protected_ns,
            r.raw_ns,
            r.protected_ns / r.raw_ns
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"traversal_hops\",\n  \"unit\": \"ns_per_hop\",\n  \"sizes\": [{sizes_json}\n  ],\n  \
         \"baseline\": {{\n    \"source\": \"EXPERIMENTS.md E8 (seed, pre-batching)\",\n    \
         \"protected_ns_per_hop\": {BASELINE_PROTECTED_NS_PER_HOP},\n    \
         \"raw_ns_per_hop\": {BASELINE_RAW_NS_PER_HOP}\n  }},\n  \
         \"speedup_vs_baseline\": {speedup:.2}\n}}\n"
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_traversal.json");
    match fs::write(&out, json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}
