//! Per-hop traversal cost: the cursor hop loop against a raw pointer walk
//! over the same nodes, across reclamation backends and thread counts.
//!
//! This is the hot path the magazine/deferred-release work targets: each
//! `Cursor::next` used to pay six refcount RMWs plus four shared-counter
//! increments per hop; with count transfer, deferred release batching, and
//! cursor-resident tallies the counted backend pays two `SafeRead`
//! increments plus two amortized deferred decrements — and the epoch
//! backend pays none at all (one pin per traversal, plain loads per hop).
//! The bench reports ns per *hop* (node visited) and — unlike the other
//! benches — writes the measured costs to `BENCH_traversal.json` at the
//! repo root next to the recorded seed baseline, so the before/after ratio
//! is machine-checkable.
//!
//! Two sections:
//!
//! * `sizes` — the original single-threaded refcount-vs-raw pair at two
//!   list lengths, kept measuring exactly what the seed baseline recorded;
//! * `matrix` — backend (`refcount` / `epoch` / `raw`) × thread count
//!   (1, 2, 4, all cores, deduplicated). Shared list for the protected
//!   backends; the raw walk needs `&mut` exclusivity, so each thread
//!   walks a private identical list (the uncontended floor).
//!
//! `--smoke` (CI): run one short iteration of each case and skip the JSON
//! artifact — proves the harness end to end without measuring anything.

use std::fs;
use std::path::Path;

use valois_bench::criterion::{
    black_box, last_median_ns, smoke_mode, BenchmarkGroup, BenchmarkId, Criterion, Throughput,
};
use valois_core::{Epoch, List, Reclaimer, RefCount};

/// Seed-tree E8 measurements (EXPERIMENTS.md, single-core container):
/// protected traversal per-node cost before the batching layers existed,
/// and the raw-walk floor it is compared against.
const BASELINE_PROTECTED_NS_PER_HOP: f64 = 95.7;
const BASELINE_RAW_NS_PER_HOP: f64 = 3.5;

struct Row {
    n: u64,
    protected_ns: f64,
    raw_ns: f64,
}

struct MatrixRow {
    backend: &'static str,
    threads: usize,
    ns_per_hop: f64,
}

/// 1, 2, 4, and all cores — deduplicated and sorted (a 1-core container
/// yields `[1, 2, 4]`: the oversubscribed points still exercise
/// contention via preemption).
fn thread_points(smoke: bool) -> Vec<usize> {
    if smoke {
        return vec![1, 2];
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut pts = vec![1usize, 2, 4, cores];
    pts.sort_unstable();
    pts.dedup();
    pts
}

/// Measures one protected arm: `threads` walkers share one `List<_, R>`,
/// each doing `passes` full protected traversals per timed iteration.
fn bench_protected_arm<R: Reclaimer>(
    group: &mut BenchmarkGroup<'_>,
    backend: &'static str,
    threads: usize,
    n: u64,
    passes: u64,
) -> MatrixRow {
    let list: List<u64, R> = (0..n).collect();
    let hops = n * passes * threads as u64;
    group.throughput(Throughput::Elements(hops));
    let id = BenchmarkId::new(backend, format!("t{threads}"));
    group.bench_with_input(id, &threads, |b, &t| {
        b.iter(|| {
            if t == 1 {
                let mut sum = 0u64;
                for _ in 0..passes {
                    list.for_each(|v| sum += *v);
                }
                black_box(sum);
            } else {
                std::thread::scope(|s| {
                    for _ in 0..t {
                        s.spawn(|| {
                            let mut sum = 0u64;
                            for _ in 0..passes {
                                list.for_each(|v| sum += *v);
                            }
                            black_box(sum);
                        });
                    }
                });
            }
        });
    });
    MatrixRow {
        backend,
        threads,
        ns_per_hop: last_median_ns() / hops as f64,
    }
}

/// Measures the raw-walk floor: `for_each_unprotected` requires `&mut`
/// (no protection means no sharing), so each thread owns an identical
/// private list.
fn bench_raw_arm(group: &mut BenchmarkGroup<'_>, threads: usize, n: u64, passes: u64) -> MatrixRow {
    let mut lists: Vec<List<u64>> = (0..threads).map(|_| (0..n).collect()).collect();
    let hops = n * passes * threads as u64;
    group.throughput(Throughput::Elements(hops));
    let id = BenchmarkId::new("raw", format!("t{threads}"));
    group.bench_with_input(id, &threads, |b, &t| {
        b.iter(|| {
            if t == 1 {
                let list = &mut lists[0];
                let mut sum = 0u64;
                for _ in 0..passes {
                    list.for_each_unprotected(|v| sum += *v);
                }
                black_box(sum);
            } else {
                std::thread::scope(|s| {
                    for list in lists.iter_mut() {
                        s.spawn(move || {
                            let mut sum = 0u64;
                            for _ in 0..passes {
                                list.for_each_unprotected(|v| sum += *v);
                            }
                            black_box(sum);
                        });
                    }
                });
            }
        });
    });
    MatrixRow {
        backend: "raw",
        threads,
        ns_per_hop: last_median_ns() / hops as f64,
    }
}

fn main() {
    let smoke = smoke_mode();
    let sizes: &[u64] = if smoke { &[64] } else { &[1_000, 10_000] };
    let (matrix_n, passes) = if smoke { (64, 1) } else { (10_000, 4) };

    let mut c = Criterion::default();
    let mut rows: Vec<Row> = Vec::new();
    {
        let mut group = c.benchmark_group("traversal_hops");
        for &n in sizes {
            let mut list: List<u64> = (0..n).collect();
            group.throughput(Throughput::Elements(n));
            group.bench_with_input(BenchmarkId::new("protected_cursor", n), &n, |b, _| {
                b.iter(|| {
                    let mut sum = 0u64;
                    list.for_each(|v| sum += *v);
                    black_box(sum)
                });
            });
            let protected_ns = last_median_ns() / n as f64;
            group.bench_with_input(BenchmarkId::new("raw_walk", n), &n, |b, _| {
                b.iter(|| {
                    let mut sum = 0u64;
                    list.for_each_unprotected(|v| sum += *v);
                    black_box(sum)
                });
            });
            let raw_ns = last_median_ns() / n as f64;
            rows.push(Row {
                n,
                protected_ns,
                raw_ns,
            });
        }
        group.finish();
    }

    // Backend × thread-count matrix.
    let mut matrix: Vec<MatrixRow> = Vec::new();
    {
        let mut group = c.benchmark_group("traversal_backends");
        for &t in &thread_points(smoke) {
            matrix.push(bench_protected_arm::<RefCount>(
                &mut group, "refcount", t, matrix_n, passes,
            ));
            matrix.push(bench_protected_arm::<Epoch>(
                &mut group, "epoch", t, matrix_n, passes,
            ));
            matrix.push(bench_raw_arm(&mut group, t, matrix_n, passes));
        }
        group.finish();
    }

    if smoke {
        println!("traversal_hops: smoke run complete (no artifact written)");
        return;
    }

    // Summary + artifact. The headline number is the larger list (cold-ish
    // cache, amortized batch boundaries all exercised).
    let head = rows.last().expect("at least one size measured");
    let speedup = BASELINE_PROTECTED_NS_PER_HOP / head.protected_ns;
    println!(
        "\ntraversal_hops: protected {:.1} ns/hop (baseline {BASELINE_PROTECTED_NS_PER_HOP}) \
         — {speedup:.2}x vs seed, {:.2}x over raw walk",
        head.protected_ns,
        head.protected_ns / head.raw_ns,
    );
    let per_hop = |backend: &str, threads: usize| {
        matrix
            .iter()
            .find(|r| r.backend == backend && r.threads == threads)
            .map(|r| r.ns_per_hop)
            .unwrap_or(f64::NAN)
    };
    let epoch_vs_raw_t1 = per_hop("epoch", 1) / per_hop("raw", 1);
    let refcount_vs_raw_t1 = per_hop("refcount", 1) / per_hop("raw", 1);
    println!(
        "traversal_backends: single-thread epoch {:.2}x raw, refcount {:.2}x raw",
        epoch_vs_raw_t1, refcount_vs_raw_t1,
    );

    let mut sizes_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            sizes_json.push(',');
        }
        sizes_json.push_str(&format!(
            "\n    {{ \"n\": {}, \"protected_ns_per_hop\": {:.2}, \"raw_ns_per_hop\": {:.2}, \
             \"protection_overhead_ratio\": {:.2} }}",
            r.n,
            r.protected_ns,
            r.raw_ns,
            r.protected_ns / r.raw_ns
        ));
    }
    let mut matrix_json = String::new();
    for (i, r) in matrix.iter().enumerate() {
        if i > 0 {
            matrix_json.push(',');
        }
        matrix_json.push_str(&format!(
            "\n    {{ \"backend\": \"{}\", \"threads\": {}, \"ns_per_hop\": {:.2} }}",
            r.backend, r.threads, r.ns_per_hop
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"traversal_hops\",\n  \"unit\": \"ns_per_hop\",\n  \"sizes\": [{sizes_json}\n  ],\n  \
         \"matrix\": [{matrix_json}\n  ],\n  \
         \"epoch_vs_raw_single_thread\": {epoch_vs_raw_t1:.2},\n  \
         \"refcount_vs_raw_single_thread\": {refcount_vs_raw_t1:.2},\n  \
         \"baseline\": {{\n    \"source\": \"EXPERIMENTS.md E8 (seed, pre-batching)\",\n    \
         \"protected_ns_per_hop\": {BASELINE_PROTECTED_NS_PER_HOP},\n    \
         \"raw_ns_per_hop\": {BASELINE_RAW_NS_PER_HOP}\n  }},\n  \
         \"speedup_vs_baseline\": {speedup:.2}\n}}\n"
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_traversal.json");
    match fs::write(&out, json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}
