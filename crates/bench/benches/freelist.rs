//! §5.2 allocator micro-benchmarks: `Alloc`/`Reclaim` (Figs. 17–18)
//! against the system allocator, single-threaded and contended.

use valois_bench::criterion::{black_box, Criterion};
use valois_bench::{criterion_group, criterion_main};
use valois_core::List;
use valois_mem::{ArenaConfig, BuddyAllocator};

fn bench_alloc_reclaim_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("freelist");
    // The list's insert+delete cycle = 2 allocs + 2 reclaims + link work.
    let list: List<u64> = List::with_config(ArenaConfig::new().initial_capacity(64));
    group.bench_function("list_insert_delete_cycle", |b| {
        let mut cur = list.cursor();
        b.iter(|| {
            cur.seek_first();
            cur.insert(7).unwrap();
            cur.update();
            black_box(cur.try_delete())
        });
    });
    // System allocator reference: Box a node-sized payload.
    group.bench_function("box_alloc_free_pair", |b| {
        b.iter(|| {
            let a = Box::new([0u8; 64]);
            let b2 = Box::new([0u8; 64]);
            black_box((a, b2))
        });
    });
    group.finish();
}

fn bench_contended_alloc(c: &mut Criterion) {
    // 4 threads hammering one free list: the lock-free pop/push path.
    let mut group = c.benchmark_group("freelist_contended");
    group.sample_size(10);
    group.bench_function("4_threads_x_10k_cycles", |b| {
        b.iter(|| {
            let list: List<u64> = List::with_config(ArenaConfig::new().initial_capacity(256));
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        let mut cur = list.cursor();
                        for i in 0..10_000u64 {
                            cur.seek_first();
                            cur.insert(i).unwrap();
                            cur.update();
                            cur.try_delete();
                        }
                    });
                }
            });
            black_box(list)
        });
    });
    group.finish();
}

fn bench_buddy(c: &mut Criterion) {
    // The §5.2 lock-free buddy system: variable-size alloc/free cycles.
    let mut group = c.benchmark_group("buddy_system");
    let buddy = BuddyAllocator::new(16); // 64k units
    group.bench_function("alloc_free_order0", |b| {
        b.iter(|| {
            let blk = buddy.alloc(0).unwrap();
            buddy.free(black_box(blk));
        });
    });
    group.bench_function("alloc_free_mixed_orders", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 6;
            let blk = buddy.alloc(i).unwrap();
            buddy.free(black_box(blk));
        });
    });
    group.bench_function("contended_2t_mixed", |b| {
        b.iter(|| {
            let buddy = BuddyAllocator::new(14);
            std::thread::scope(|s| {
                for t in 0..2u32 {
                    let buddy = &buddy;
                    s.spawn(move || {
                        for i in 0..2_000u32 {
                            if let Ok(blk) = buddy.alloc((i + t) % 5) {
                                buddy.free(blk);
                            }
                        }
                    });
                }
            });
            black_box(buddy.allocated_units())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_alloc_reclaim_cycle,
    bench_contended_alloc,
    bench_buddy
);
criterion_main!(benches);
