//! Single-threaded per-operation costs of every §4 dictionary and the
//! lock-based baselines: the "constant factor" side of E1/E5/E6.

use valois_baseline::{LockedBstDict, LockedListDict, MutexListDict};
use valois_bench::criterion::{black_box, BenchmarkId, Criterion};
use valois_bench::{criterion_group, criterion_main};
use valois_dict::{BstDict, Dictionary, HashDict, SkipListDict, SortedListDict};

const PREFILL: u64 = 1_024;

fn prefill<D: Dictionary<u64, u64>>(d: &D) {
    // Coprime stride = pseudo-shuffled insertion order: an ascending
    // prefill would degenerate the BST into a spine and skew its numbers.
    for i in 0..PREFILL {
        let k = (i * 389) % PREFILL;
        d.insert(k * 2, k);
    }
}

fn bench_find(c: &mut Criterion) {
    let mut group = c.benchmark_group("dict_find_hit");
    macro_rules! case {
        ($name:expr, $dict:expr) => {{
            let d = $dict;
            prefill(&d);
            let mut k = 0u64;
            group.bench_function(BenchmarkId::from_parameter($name), |b| {
                b.iter(|| {
                    k = (k + 2) % (PREFILL * 2);
                    black_box(d.find(&k))
                });
            });
        }};
    }
    case!("sorted_list", SortedListDict::<u64, u64>::new());
    case!("hash_256", HashDict::<u64, u64>::with_buckets(256));
    case!("skiplist", SkipListDict::<u64, u64>::new());
    case!("bst", BstDict::<u64, u64>::new());
    case!("locked_list", LockedListDict::<u64, u64>::new());
    case!("mutex_list", MutexListDict::<u64, u64>::new());
    case!("locked_btree", LockedBstDict::<u64, u64>::new());
    group.finish();
}

fn bench_insert_remove(c: &mut Criterion) {
    let mut group = c.benchmark_group("dict_insert_remove_cycle");
    macro_rules! case {
        ($name:expr, $dict:expr) => {{
            let d = $dict;
            prefill(&d);
            let mut k = 1u64;
            group.bench_function(BenchmarkId::from_parameter($name), |b| {
                b.iter(|| {
                    k = (k + 2) % (PREFILL * 2);
                    let key = k | 1; // odd keys: never in the prefill
                    black_box(d.insert(key, key));
                    black_box(d.remove(&key))
                });
            });
        }};
    }
    case!("sorted_list", SortedListDict::<u64, u64>::new());
    case!("hash_256", HashDict::<u64, u64>::with_buckets(256));
    case!("skiplist", SkipListDict::<u64, u64>::new());
    case!("bst", BstDict::<u64, u64>::new());
    case!("locked_list", LockedListDict::<u64, u64>::new());
    case!("locked_btree", LockedBstDict::<u64, u64>::new());
    group.finish();
}

fn bench_find_miss(c: &mut Criterion) {
    let mut group = c.benchmark_group("dict_find_miss");
    macro_rules! case {
        ($name:expr, $dict:expr) => {{
            let d = $dict;
            prefill(&d);
            let mut k = 1u64;
            group.bench_function(BenchmarkId::from_parameter($name), |b| {
                b.iter(|| {
                    k = (k + 2) % (PREFILL * 2);
                    black_box(d.find(&(k | 1)))
                });
            });
        }};
    }
    case!("sorted_list", SortedListDict::<u64, u64>::new());
    case!("skiplist", SkipListDict::<u64, u64>::new());
    case!("bst", BstDict::<u64, u64>::new());
    group.finish();
}

criterion_group!(benches, bench_find, bench_insert_remove, bench_find_miss);
criterion_main!(benches);
