//! The retry-resumption artifact bench: restart-from-head versus
//! back_link-guided resumption + cached cursors on the deterministic
//! hot-window workload (`valois_harness::run_hot_window`, after Träff &
//! Pöter's worst-case benchmark).
//!
//! Every thread hammers a small window of keys ordered after a long cold
//! prefix. Restart-from-head re-walks the prefix on every operation and
//! every CAS retry; resumption pays it once per thread and then only the
//! distance back to the conflict. The retry *count* is a property of the
//! contention, not the positioning mechanism, so retries-per-op should
//! match between the two configurations while ns-per-op collapses —
//! exactly what `BENCH_retry.json` records at 1/2/4/all threads.
//!
//! `--smoke` (CI): one tiny shape, no JSON artifact — proves the harness
//! end to end without measuring anything.

use std::fs;
use std::path::Path;

use valois_bench::criterion::smoke_mode;
use valois_core::ArenaConfig;
use valois_dict::SortedListDict;
use valois_harness::{run_hot_window, HotWindowConfig, HotWindowResult};

struct Row {
    threads: usize,
    head: HotWindowResult,
    resume: HotWindowResult,
}

fn median_by<F: Fn(&HotWindowResult) -> f64>(runs: &[HotWindowResult], f: F) -> f64 {
    let mut xs: Vec<f64> = runs.iter().map(f).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

/// Median-ns run (re-running the whole workload per repeat — fresh dict
/// each time, the fill is part of neither measurement window).
fn measure(cached: bool, config: &HotWindowConfig, repeats: usize) -> HotWindowResult {
    let runs: Vec<HotWindowResult> = (0..repeats)
        .map(|_| {
            let dict: SortedListDict<u64, u64> =
                SortedListDict::with_config_cached(ArenaConfig::default(), cached);
            run_hot_window(&dict, config)
        })
        .collect();
    let mut mid = runs[0];
    mid.ns_per_op = median_by(&runs, |r| r.ns_per_op);
    mid.retries_per_op = median_by(&runs, |r| r.retries_per_op);
    mid.next_steps_per_op = median_by(&runs, |r| r.next_steps_per_op);
    mid
}

fn main() {
    let smoke = smoke_mode();
    // The ≥4-thread row is the headline even on small machines:
    // oversubscription just makes the preemption-at-CAS case (the one
    // resumption exists for) more frequent.
    let all = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(4, 16);
    let mut thread_counts: Vec<usize> = vec![1, 2, 4, all];
    thread_counts.dedup();
    if smoke {
        thread_counts = vec![2];
    }
    let config = HotWindowConfig {
        threads: 0, // per-row
        prefix: if smoke { 256 } else { 4096 },
        window: 8,
        pairs_per_thread: if smoke { 200 } else { 2_000 },
    };
    let repeats = if smoke { 1 } else { 3 };

    let mut rows: Vec<Row> = Vec::new();
    for &threads in &thread_counts {
        let config = HotWindowConfig { threads, ..config };
        let head = measure(false, &config, repeats);
        let resume = measure(true, &config, repeats);
        println!(
            "retry/{threads}t: {:.0} ns/op vs {:.0} ns/op ({:.1}x), retries/op {:.3} vs {:.3}, \
             steps/op {:.0} vs {:.0}, {} resumes over {} hops",
            head.ns_per_op,
            resume.ns_per_op,
            head.ns_per_op / resume.ns_per_op.max(1.0),
            head.retries_per_op,
            resume.retries_per_op,
            head.next_steps_per_op,
            resume.next_steps_per_op,
            resume.resumes,
            resume.resume_hops,
        );
        rows.push(Row {
            threads,
            head,
            resume,
        });
    }

    if smoke {
        println!("retry: smoke run complete (no artifact written)");
        return;
    }

    let hot = rows
        .iter()
        .filter(|r| r.threads >= 4)
        .max_by_key(|r| r.threads)
        .unwrap_or_else(|| rows.last().expect("at least one thread count"));
    let speedup = hot.head.ns_per_op / hot.resume.ns_per_op.max(1.0);
    println!(
        "\nretry: at {} threads resumption runs {speedup:.1}x restart-from-head \
         (retries/op {:.3} vs {:.3})",
        hot.threads, hot.head.retries_per_op, hot.resume.retries_per_op,
    );

    let mut rows_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            rows_json.push(',');
        }
        rows_json.push_str(&format!(
            "\n    {{ \"threads\": {}, \"head_ns_per_op\": {:.0}, \"resume_ns_per_op\": {:.0}, \
             \"speedup\": {:.2}, \"head_retries_per_op\": {:.3}, \"resume_retries_per_op\": {:.3}, \
             \"head_steps_per_op\": {:.1}, \"resume_steps_per_op\": {:.1}, \
             \"resumes\": {}, \"resume_hops\": {} }}",
            r.threads,
            r.head.ns_per_op,
            r.resume.ns_per_op,
            r.head.ns_per_op / r.resume.ns_per_op.max(1.0),
            r.head.retries_per_op,
            r.resume.retries_per_op,
            r.head.next_steps_per_op,
            r.resume.next_steps_per_op,
            r.resume.resumes,
            r.resume.resume_hops,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"retry\",\n  \"workload\": \"deterministic hot-window \
         (prefix {}, window {}, {} pairs/thread)\",\n  \"threads\": [{}],\n  \
         \"rows\": [{rows_json}\n  ],\n  \
         \"headline\": {{\n    \"threads\": {},\n    \"speedup\": {speedup:.2},\n    \
         \"head_retries_per_op\": {:.3},\n    \"resume_retries_per_op\": {:.3}\n  }}\n}}\n",
        config.prefix,
        config.window,
        config.pairs_per_thread,
        thread_counts
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        hot.threads,
        hot.head.retries_per_op,
        hot.resume.retries_per_op,
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_retry.json");
    match fs::write(&out, json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}
