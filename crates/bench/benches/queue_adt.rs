//! Building-block ADT benchmarks: the \[27\] FIFO queue, the stack, and
//! the priority queue, against `Mutex<VecDeque>`/`Mutex<BinaryHeap>`
//! references.

use std::collections::{BinaryHeap, VecDeque};
use std::sync::Mutex;

use valois_bench::criterion::{black_box, Criterion};
use valois_bench::{criterion_group, criterion_main};
use valois_core::adt::{PriorityQueue, Stack};
use valois_core::queue::FifoQueue;

fn bench_queue_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("fifo_queue_enq_deq");
    let q: FifoQueue<u64> = FifoQueue::new();
    group.bench_function("lockfree", |b| {
        b.iter(|| {
            q.enqueue(7).unwrap();
            black_box(q.dequeue())
        });
    });
    let m: Mutex<VecDeque<u64>> = Mutex::new(VecDeque::new());
    group.bench_function("mutex_vecdeque", |b| {
        b.iter(|| {
            m.lock().unwrap().push_back(7);
            black_box(m.lock().unwrap().pop_front())
        });
    });
    group.finish();
}

fn bench_queue_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("fifo_queue_contended_4t");
    group.sample_size(10);
    group.bench_function("lockfree", |b| {
        b.iter(|| {
            let q: FifoQueue<u64> = FifoQueue::new();
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        for i in 0..5_000u64 {
                            q.enqueue(i).unwrap();
                        }
                    });
                    s.spawn(|| {
                        for _ in 0..5_000 {
                            while q.dequeue().is_none() {
                                std::hint::spin_loop();
                            }
                        }
                    });
                }
            });
            black_box(q.len())
        });
    });
    group.finish();
}

fn bench_stack_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("stack_push_pop");
    let s: Stack<u64> = Stack::new();
    group.bench_function("lockfree", |b| {
        b.iter(|| {
            s.push(7).unwrap();
            black_box(s.pop())
        });
    });
    let m: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    group.bench_function("mutex_vec", |b| {
        b.iter(|| {
            m.lock().unwrap().push(7);
            black_box(m.lock().unwrap().pop())
        });
    });
    group.finish();
}

fn bench_pqueue(c: &mut Criterion) {
    let mut group = c.benchmark_group("priority_queue_64");
    let q: PriorityQueue<u64> = PriorityQueue::new();
    for i in 0..64 {
        q.insert(i * 2).unwrap();
    }
    let mut k = 0u64;
    group.bench_function("lockfree_sorted_list", |b| {
        b.iter(|| {
            k = (k + 17) % 128;
            q.insert(k | 1).unwrap();
            black_box(q.pop_min())
        });
    });
    let heap: Mutex<BinaryHeap<std::cmp::Reverse<u64>>> =
        Mutex::new((0..64).map(|i| std::cmp::Reverse(i * 2)).collect());
    group.bench_function("mutex_binaryheap", |b| {
        b.iter(|| {
            k = (k + 17) % 128;
            heap.lock().unwrap().push(std::cmp::Reverse(k | 1));
            black_box(heap.lock().unwrap().pop())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_queue_cycle,
    bench_queue_contended,
    bench_stack_cycle,
    bench_pqueue
);
criterion_main!(benches);
