//! The service artifact bench: `valois-server` thread-scaling matrix.
//!
//! Each cell starts a fresh sharded server (shard count == the "threads"
//! axis), drives the simulated connection fleet through the million-key
//! Zipfian read-mostly mix and the scan-heavy mix, and records ops/sec
//! plus issue-to-served p50/p99/p999 from the shard latency histograms.
//! The matrix crosses both reclamation backends (`RefCount`, `Epoch`).
//!
//! Scaling model: shard workers pay a simulated group-commit stall (one
//! `commit_stall` sleep per `commit_group` puts — an fsync/replication-ack
//! proxy). Stalls are per-shard and overlap across shards, so adding
//! shards overlaps durability waits with serving work: throughput scales
//! with shard count even on a single core, which is exactly how a real
//! service scales past its storage round-trips. `BENCH_service.json`
//! commits the matrix.
//!
//! `--smoke` (CI): one tiny cell per backend, no JSON artifact — proves
//! the server + sim + telemetry stack end to end without measuring.

use std::fs;
use std::path::Path;
use std::time::Duration;

use valois_bench::criterion::smoke_mode;
use valois_harness::KeyDist;
use valois_mem::{Epoch, Reclaimer, RefCount};
use valois_server::{run_service, Server, ServiceConfig, ServiceMix, SimConfig};

struct Cell {
    backend: &'static str,
    threads: usize,
    mix: &'static str,
    ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    samples: u64,
    overloaded: u64,
    commits: u64,
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn mix_by_name(name: &str) -> ServiceMix {
    match name {
        "read_mostly" => ServiceMix::read_mostly(),
        _ => ServiceMix::scan_heavy(),
    }
}

/// One matrix cell: fresh server, full traffic run, median ops/sec over
/// `repeats` (latency quantiles from the last run — they are stable
/// across repeats because the stall model dominates the tail).
fn run_cell<R: Reclaimer + 'static>(
    backend: &'static str,
    threads: usize,
    mix_name: &'static str,
    smoke: bool,
    repeats: usize,
) -> Cell {
    let service = ServiceConfig {
        shards: threads,
        batch: 64,
        commit_group: if smoke { 0 } else { 32 },
        commit_stall: Duration::from_micros(500),
        ..ServiceConfig::default()
    };
    let sim = SimConfig {
        client_threads: 2,
        connections: if smoke { 64 } else { 1024 },
        requests_per_conn: if smoke { 8 } else { 48 },
        window: 64,
        mix: mix_by_name(mix_name),
        keys: KeyDist::Zipf {
            range: if smoke { 4096 } else { 1_000_000 },
        },
        scan_len: 16,
        seed: 0x5EED_1995_C0DE ^ ((threads as u64) << 8),
    };
    let mut rates: Vec<f64> = Vec::new();
    let mut last: Option<Cell> = None;
    for _ in 0..repeats {
        let server: Server<R> = Server::start(&service);
        let report = run_service(&server, &sim);
        assert_eq!(
            report.issued,
            (sim.connections as u64) * sim.requests_per_conn,
            "every simulated request must be answered"
        );
        let lat = report.latency.expect("nonempty run has latency samples");
        let commits: u64 = server
            .shards()
            .iter()
            .map(|s| {
                s.stats
                    .commits
                    .load(valois_sync::shim::atomic::Ordering::Relaxed)
            })
            .sum();
        rates.push(report.ops_per_sec);
        last = Some(Cell {
            backend,
            threads,
            mix: mix_name,
            ops_per_sec: report.ops_per_sec,
            p50_us: us(lat.p50),
            p99_us: us(lat.p99),
            p999_us: us(lat.p999),
            samples: lat.samples,
            overloaded: report.overloaded,
            commits,
        });
        for mut dict in server.shutdown() {
            dict.check_invariants()
                .unwrap_or_else(|e| panic!("shard dictionary corrupt after bench run: {e}"));
        }
    }
    rates.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut cell = last.expect("at least one repeat");
    cell.ops_per_sec = rates[rates.len() / 2];
    cell
}

fn run_backend<R: Reclaimer + 'static>(
    backend: &'static str,
    thread_counts: &[usize],
    mixes: &[&'static str],
    smoke: bool,
    repeats: usize,
) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &threads in thread_counts {
        for &mix in mixes {
            let cell = run_cell::<R>(backend, threads, mix, smoke, repeats);
            println!(
                "service/{backend}/{threads}t/{mix}: {:.0} ops/s, p50 {:.0}µs p99 {:.0}µs \
                 p999 {:.0}µs ({} samples, {} commits, {} overloaded)",
                cell.ops_per_sec,
                cell.p50_us,
                cell.p99_us,
                cell.p999_us,
                cell.samples,
                cell.commits,
                cell.overloaded,
            );
            cells.push(cell);
        }
    }
    cells
}

fn main() {
    let smoke = smoke_mode();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // 1 → all cores, and past them: shards beyond the core count still
    // help because the axis being scaled is overlapped commit stalls,
    // not CPU. Keep 4 as the ceiling so small hosts stay comparable.
    let mut thread_counts: Vec<usize> = vec![1, 2, 4, cores.clamp(1, 4)];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    let mixes: &[&'static str] = if smoke {
        &["read_mostly"]
    } else {
        &["read_mostly", "scan_heavy"]
    };
    if smoke {
        thread_counts = vec![2];
    }
    let repeats = if smoke { 1 } else { 3 };

    let mut cells = run_backend::<RefCount>("refcount", &thread_counts, mixes, smoke, repeats);
    cells.extend(run_backend::<Epoch>(
        "epoch",
        &thread_counts,
        mixes,
        smoke,
        repeats,
    ));

    if smoke {
        println!("service: smoke run complete (no artifact written)");
        return;
    }

    // Headline: max-threads vs 1-thread throughput per backend on the
    // read-mostly mix (the scaling acceptance bar).
    let max_t = *thread_counts.last().expect("nonempty");
    let pick = |backend: &str, threads: usize| {
        cells
            .iter()
            .find(|c| c.backend == backend && c.threads == threads && c.mix == "read_mostly")
            .expect("matrix cell present")
    };
    let mut headline = String::new();
    for backend in ["refcount", "epoch"] {
        let one = pick(backend, 1);
        let max = pick(backend, max_t);
        let scaling = max.ops_per_sec / one.ops_per_sec.max(1.0);
        println!(
            "\nservice/{backend}: {max_t} shards run {scaling:.2}x of 1 shard \
             ({:.0} vs {:.0} ops/s, read-mostly)",
            max.ops_per_sec, one.ops_per_sec,
        );
        if scaling <= 1.0 {
            eprintln!("service/{backend}: WARNING — no scaling observed");
        }
        if !headline.is_empty() {
            headline.push(',');
        }
        headline.push_str(&format!(
            "\n    {{ \"backend\": \"{backend}\", \"threads\": {max_t}, \
             \"scaling_vs_1_thread\": {scaling:.2} }}"
        ));
    }

    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        rows.push_str(&format!(
            "\n    {{ \"backend\": \"{}\", \"threads\": {}, \"mix\": \"{}\", \
             \"ops_per_sec\": {:.0}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"p999_us\": {:.1}, \"samples\": {}, \"commits\": {}, \"overloaded\": {} }}",
            c.backend,
            c.threads,
            c.mix,
            c.ops_per_sec,
            c.p50_us,
            c.p99_us,
            c.p999_us,
            c.samples,
            c.commits,
            c.overloaded,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"service\",\n  \"host\": {{ \"cores\": {cores} }},\n  \
         \"workload\": \"1024 connections x 48 requests, Zipfian over 1M keys; \
         mixes read_mostly (70/15/10/5 get/put/del/scan) and scan_heavy (30/25/20/25)\",\n  \
         \"model\": \"shards == threads; each shard worker pays one 500us group-commit stall \
         per 32 puts (fsync/replication-ack proxy); stalls overlap across shards, so the \
         matrix measures shard-count scaling of overlapped durability waits, honest even on \
         1-core hosts\",\n  \"threads\": [{}],\n  \"backends\": [\"refcount\", \"epoch\"],\n  \
         \"rows\": [{rows}\n  ],\n  \"headline\": [{headline}\n  ]\n}}\n",
        thread_counts
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_service.json");
    match fs::write(&out, json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}
