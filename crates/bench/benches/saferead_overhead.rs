//! E8 in Criterion form: the per-node cost of the §5 `SafeRead`/`Release`
//! protocol during traversal ("the most time consuming operation", §6).

use valois_bench::criterion::{black_box, BenchmarkId, Criterion, Throughput};
use valois_bench::{criterion_group, criterion_main};
use valois_core::List;

fn bench_protected_vs_raw(c: &mut Criterion) {
    let mut group = c.benchmark_group("saferead_overhead");
    for &n in &[1_000u64, 10_000] {
        let mut list: List<u64> = (0..n).collect();
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("protected_cursor", n), &n, |b, _| {
            b.iter(|| {
                let mut sum = 0u64;
                list.for_each(|v| sum += *v);
                black_box(sum)
            });
        });
        group.bench_with_input(BenchmarkId::new("raw_walk", n), &n, |b, _| {
            b.iter(|| {
                let mut sum = 0u64;
                list.for_each_unprotected(|v| sum += *v);
                black_box(sum)
            });
        });
    }
    group.finish();
}

fn bench_counter_cost(c: &mut Criterion) {
    // The statistics counters are relaxed increments; validate they are
    // noise next to a CAS (DESIGN.md: "stats_overhead").
    use std::sync::atomic::{AtomicU64, Ordering};
    let mut group = c.benchmark_group("stats_overhead");
    let word = AtomicU64::new(0);
    let counter = AtomicU64::new(0);
    group.bench_function("cas_alone", |b| {
        b.iter(|| {
            let v = word.load(Ordering::Acquire);
            let _ = word.compare_exchange(v, v + 1, Ordering::AcqRel, Ordering::Acquire);
        });
    });
    group.bench_function("cas_plus_relaxed_counter", |b| {
        b.iter(|| {
            let v = word.load(Ordering::Acquire);
            let _ = word.compare_exchange(v, v + 1, Ordering::AcqRel, Ordering::Acquire);
            counter.fetch_add(1, Ordering::Relaxed);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_protected_vs_raw, bench_counter_cost);
criterion_main!(benches);
