//! Minimal, dependency-free stand-in for the parts of the
//! [criterion](https://docs.rs/criterion) API the `benches/` tree uses.
//!
//! The build environment has no access to a crates registry, so the real
//! criterion cannot be compiled. This module keeps the bench sources
//! byte-for-byte idiomatic criterion (`Criterion`, groups, `Bencher`,
//! `black_box`, the `criterion_group!`/`criterion_main!` macros) while
//! providing a simple but honest measurement loop: warm-up, per-sample
//! iteration calibration to a target sample time, and a median-of-samples
//! report in ns/iteration (plus derived throughput when configured).
//!
//! It intentionally skips criterion's statistical machinery (outlier
//! classification, regression analysis, HTML reports); numbers printed
//! here are for relative comparisons on one machine, not archival
//! benchmarking.

use std::cell::Cell;
use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time per measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);
/// Warm-up budget per benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(50);
/// Default number of samples.
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// True when the bench binary was invoked with `--smoke`: run each
/// benchmark for a single short iteration, only proving it still compiles
/// and executes (CI's bench-smoke job). Numbers printed in smoke mode are
/// meaningless.
pub fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

thread_local! {
    static LAST_MEDIAN_NS: Cell<f64> = const { Cell::new(f64::NAN) };
}

/// Median ns/iteration of the most recently completed benchmark on this
/// thread (NaN before any has run). Lets benches with custom `main`s
/// post-process results — e.g. `traversal_hops` deriving per-hop costs for
/// `BENCH_traversal.json` — without a second measurement pass.
pub fn last_median_ns() -> f64 {
    LAST_MEDIAN_NS.with(|c| c.get())
}

/// Top-level benchmark driver (the `c` in `fn bench(c: &mut Criterion)`).
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, DEFAULT_SAMPLE_SIZE, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{}", name.into(), parameter))
    }

    /// Just the parameter (for groups whose name says it all).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Anything usable as a benchmark id (criterion accepts ids and strings).
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Per-iteration work declaration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output to batch in [`Bencher::iter_batched`] (accepted
/// for API compatibility; this implementation always uses per-iteration
/// setup, criterion's `PerIteration`-like behaviour).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small routine outputs.
    SmallInput,
    /// Large routine outputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The measurement handle handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Calibrates, measures, and reports one benchmark.
fn run_one<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let smoke = smoke_mode();
    let sample_size = if smoke { 1 } else { sample_size };
    // Warm-up and calibration: grow the iteration count until one sample
    // costs at least SAMPLE_TARGET (or the warm-up budget runs out). Smoke
    // mode skips calibration entirely — one iteration, one sample.
    let mut iters: u64 = 1;
    if !smoke {
        let warmup_start = Instant::now();
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= SAMPLE_TARGET || warmup_start.elapsed() >= WARMUP_TARGET {
                break;
            }
            // Aim directly for the target based on the cost observed so far.
            let per = b.elapsed.as_nanos().max(1) as u64 / iters;
            iters = (SAMPLE_TARGET.as_nanos() as u64 / per.max(1)).clamp(iters * 2, iters * 100);
        }
    }

    let mut samples: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters.max(1) as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    LAST_MEDIAN_NS.with(|c| c.set(median));

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" {:.0} elem/s", n as f64 * 1e9 / median),
        Throughput::Bytes(n) => format!(" {:.0} B/s", n as f64 * 1e9 / median),
    });
    println!(
        "bench {label:<48} {median:>12.1} ns/iter (min {lo:.1}, max {hi:.1}, {iters} iters x {n} samples){rate}",
        n = samples.len(),
        rate = rate.unwrap_or_default(),
    );
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut c = $crate::criterion::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("walk", 10).0, "walk/10");
        assert_eq!(BenchmarkId::from_parameter("tas").0, "tas");
    }

    #[test]
    fn last_median_is_recorded_per_run() {
        run_one("criterion_shim_selftest", 3, None, |b| {
            b.iter(|| black_box(3u64).wrapping_add(4))
        });
        let m = last_median_ns();
        assert!(m.is_finite() && m > 0.0, "median {m} not recorded");
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.elapsed > Duration::ZERO);
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.elapsed > Duration::ZERO);
    }
}
