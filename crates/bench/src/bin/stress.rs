//! Soak tester: randomized mixed workloads against every structure with
//! periodic invariant verification. Exits non-zero on any violation.
//!
//! ```text
//! stress [--secs N] [--threads N]
//!        [--structure list|sorted|hash|resizable|skip|bst|queue|stack|pqueue|service|all]
//!        [--inject-failure]
//! ```
//!
//! `--inject-failure` panics after the soak finishes — it exists to
//! exercise the flight-recorder post-mortem path end-to-end (with
//! `--features trace` the panic must leave a *.vtrace file behind; see
//! docs/OBSERVABILITY.md).
//!
//! Intended for long unattended runs (`cargo run --release -p valois-bench
//! --bin stress -- --secs 300`); the CI-sized default is 5 seconds per
//! structure.

use std::time::{Duration, Instant};
use valois_sync::shim::atomic::{AtomicBool, AtomicU64, Ordering};

use valois_core::adt::{PriorityQueue, Stack};
use valois_core::queue::FifoQueue;
use valois_core::List;
use valois_dict::{BstDict, Dictionary, HashDict, ResizableHashDict, SkipListDict, SortedListDict};

struct Args {
    secs: u64,
    threads: usize,
    structure: String,
    inject_failure: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        secs: 5,
        threads: std::thread::available_parallelism()
            .map(|n| n.get() * 2)
            .unwrap_or(4)
            .clamp(2, 16),
        structure: "all".into(),
        inject_failure: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--secs" => {
                i += 1;
                args.secs = argv[i].parse().expect("--secs N");
            }
            "--threads" => {
                i += 1;
                args.threads = argv[i].parse().expect("--threads N");
            }
            "--structure" => {
                i += 1;
                args.structure = argv[i].to_ascii_lowercase();
            }
            "--inject-failure" => {
                args.inject_failure = true;
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    args
}

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Generic dictionary soak: conservation accounting (callers run their
/// structure-specific invariant checks after this returns).
fn soak_dict<D: Dictionary<u64, u64>>(name: &str, dict: &D, secs: u64, threads: usize) {
    let inserted = AtomicU64::new(0);
    let removed = AtomicU64::new(0);
    let ops = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let stop = &stop;
        let inserted = &inserted;
        let removed = &removed;
        let ops = &ops;
        for t in 0..threads as u64 {
            s.spawn(move || {
                let mut x = t.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                while !stop.load(Ordering::Relaxed) {
                    let r = xorshift(&mut x);
                    let key = r % 512;
                    match (r >> 16) % 4 {
                        0 | 1 => {
                            let _ = dict.contains(&key);
                        }
                        2 => {
                            if dict.insert(key, r) {
                                inserted.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        _ => {
                            if dict.remove(&key) {
                                removed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    ops.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(Duration::from_secs(secs));
        stop.store(true, Ordering::Relaxed);
    });
    let net = inserted.load(Ordering::Relaxed) - removed.load(Ordering::Relaxed);
    let len = dict.len() as u64;
    assert_eq!(
        len, net,
        "{name}: accounting violated (len {len} vs net {net})"
    );
    println!(
        "{name:>12}: {} ops, {} net items, invariants OK",
        ops.load(Ordering::Relaxed),
        net
    );
}

fn soak_list(secs: u64, threads: usize) {
    let mut list: List<u64> = List::new();
    let stop = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    std::thread::scope(|s| {
        let list = &list;
        let stop = &stop;
        let ops = &ops;
        for t in 0..threads as u64 {
            s.spawn(move || {
                let mut x = t.wrapping_mul(0x9E37_79B9) | 1;
                let mut cur = list.cursor();
                while !stop.load(Ordering::Relaxed) {
                    match xorshift(&mut x) % 4 {
                        0 => {
                            cur.insert(x).unwrap();
                            cur.update();
                        }
                        1 => {
                            let _ = cur.try_delete();
                            cur.update();
                        }
                        2 => {
                            if !cur.next() {
                                cur.seek_first();
                            }
                        }
                        _ => cur.seek_first(),
                    }
                    ops.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(Duration::from_secs(secs));
        stop.store(true, Ordering::Relaxed);
    });
    list.check_structure()
        .unwrap_or_else(|e| panic!("list structure violated: {e}"));
    let report = list.aux_chain_report();
    assert_eq!(report.runs_ge2, 0, "aux chain theorem violated");
    assert_eq!(list.quiescent_collect(), 0, "garbage found at quiescence");
    println!(
        "{:>12}: {} ops, {} items, structure+theorem OK",
        "raw list",
        ops.load(Ordering::Relaxed),
        list.len()
    );
}

fn soak_queue(secs: u64, threads: usize) {
    let q: FifoQueue<u64> = FifoQueue::new();
    let stop = AtomicBool::new(false);
    let enq = AtomicU64::new(0);
    let deq = AtomicU64::new(0);
    std::thread::scope(|s| {
        let q = &q;
        let stop = &stop;
        let enq = &enq;
        let deq = &deq;
        for t in 0..threads as u64 {
            s.spawn(move || {
                let mut x = t.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
                while !stop.load(Ordering::Relaxed) {
                    if xorshift(&mut x).is_multiple_of(2) {
                        q.enqueue(x).unwrap();
                        enq.fetch_add(1, Ordering::Relaxed);
                    } else if q.dequeue().is_some() {
                        deq.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_secs(secs));
        stop.store(true, Ordering::Relaxed);
    });
    let net = enq.load(Ordering::Relaxed) - deq.load(Ordering::Relaxed);
    assert_eq!(q.len() as u64, net, "queue conservation violated");
    println!(
        "{:>12}: {} enq / {} deq, {} left, conservation OK",
        "fifo queue",
        enq.load(Ordering::Relaxed),
        deq.load(Ordering::Relaxed),
        net
    );
}

fn soak_stack_pqueue(secs: u64, threads: usize) {
    let st: Stack<u64> = Stack::new();
    let pq: PriorityQueue<u64> = PriorityQueue::new();
    let stop = AtomicBool::new(false);
    let pushed = AtomicU64::new(0);
    let popped = AtomicU64::new(0);
    std::thread::scope(|s| {
        let st = &st;
        let pq = &pq;
        let stop = &stop;
        let pushed = &pushed;
        let popped = &popped;
        for t in 0..threads as u64 {
            s.spawn(move || {
                let mut x = t.wrapping_mul(0xD134_2543_DE82_EF95) | 1;
                while !stop.load(Ordering::Relaxed) {
                    match xorshift(&mut x) % 4 {
                        0 => {
                            st.push(x).unwrap();
                            pushed.fetch_add(1, Ordering::Relaxed);
                        }
                        1 => {
                            if st.pop().is_some() {
                                popped.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        2 => {
                            pq.insert(x % 1000).unwrap();
                            pushed.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            if pq.pop_min().is_some() {
                                popped.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_secs(secs));
        stop.store(true, Ordering::Relaxed);
    });
    let net = pushed.load(Ordering::Relaxed) - popped.load(Ordering::Relaxed);
    assert_eq!(
        (st.len() + pq.len()) as u64,
        net,
        "stack+pqueue conservation violated"
    );
    let sorted = pq.to_sorted_vec();
    assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "priority queue order violated"
    );
    println!(
        "{:>12}: {} pushed / {} popped, {} left, order OK",
        "stack+pq",
        pushed.load(Ordering::Relaxed),
        popped.load(Ordering::Relaxed),
        net
    );
}

/// Soaks the full sharded service: randomized traffic bursts (mix, key
/// range, and window re-drawn per burst) against one long-lived server,
/// then a clean shutdown with the full dictionary audit on every shard.
fn soak_service(secs: u64, threads: usize) {
    use valois_server::{run_service, Server, ServiceConfig, ServiceMix, SimConfig};

    let shards = threads.clamp(1, 8);
    let server: Server<valois_mem::Epoch> = Server::start(&ServiceConfig {
        shards,
        batch: 32,
        commit_group: 0,
        ..ServiceConfig::default()
    });
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut seed = 0x5EED_50AC_5E4F_0001u64;
    let mut bursts = 0u64;
    let mut issued = 0u64;
    let mut overloaded = 0u64;
    while Instant::now() < deadline {
        let r = xorshift(&mut seed);
        let mix = match r % 3 {
            0 => ServiceMix::read_mostly(),
            1 => ServiceMix::scan_heavy(),
            _ => ServiceMix::new(10, 45, 40, 5), // write churn
        };
        let report = run_service(
            &server,
            &SimConfig {
                client_threads: 2,
                connections: 128 + (r >> 8) as usize % 128,
                requests_per_conn: 16,
                window: 8 + (r >> 16) as usize % 56,
                mix,
                keys: valois_harness::KeyDist::Zipf {
                    range: 1 << (10 + (r >> 24) % 8),
                },
                scan_len: 8,
                seed: r,
            },
        );
        bursts += 1;
        issued += report.issued;
        overloaded += report.overloaded;
    }
    assert_eq!(server.completed(), issued, "service lost requests");
    let len = server.len() as u64;
    let dicts = server.shutdown();
    assert_eq!(dicts.len(), shards, "shutdown must return every shard");
    let total: u64 = dicts
        .iter()
        .map(|d| valois_dict::Dictionary::len(d) as u64)
        .sum();
    assert_eq!(total, len, "in-flight writes leaked past shutdown");
    for mut dict in dicts {
        dict.check_invariants()
            .unwrap_or_else(|e| panic!("service shard invariant violated: {e}"));
    }
    println!(
        "{:>12}: {issued} reqs over {bursts} bursts on {shards} shards, \
         {overloaded} overloaded, {total} resident, invariants OK",
        "service"
    );
}

fn main() {
    // With `--features trace`, any panic (an invariant assertion firing)
    // writes a merged time-ordered flight-recorder post-mortem to a
    // *.vtrace file before unwinding; render it with
    // `cargo xtask trace-dump <file>`. Without the feature this is a no-op.
    valois_trace::arm_panic_dump();
    let args = parse_args();
    let t0 = Instant::now();
    println!(
        "soak: {}s per structure, {} threads, structure={}",
        args.secs, args.threads, args.structure
    );
    let want = |name: &str| args.structure == "all" || args.structure == name;

    if want("list") {
        soak_list(args.secs, args.threads);
    }
    if want("sorted") {
        let mut d: SortedListDict<u64, u64> = SortedListDict::new();
        soak_dict("sorted list", &d, args.secs, args.threads);
        d.check_invariants()
            .unwrap_or_else(|e| panic!("sorted list invariant violated: {e}"));
    }
    if want("hash") {
        let mut d: HashDict<u64, u64> = HashDict::with_buckets(64);
        soak_dict("hash", &d, args.secs, args.threads);
        d.check_invariants()
            .unwrap_or_else(|e| panic!("hash invariant violated: {e}"));
    }
    if want("resizable") {
        // Start at 2 buckets so the churn (≈ 256 live keys at
        // equilibrium) drives the table across several doublings while
        // operations race the bucket splits.
        let mut d: ResizableHashDict<u64, u64> = ResizableHashDict::with_initial_buckets(2);
        soak_dict("resizable", &d, args.secs, args.threads);
        assert!(
            d.doublings() >= 3,
            "resizable: churn must cross >= 3 doublings, saw {} ({} buckets)",
            d.doublings(),
            d.bucket_count()
        );
        d.check_invariants()
            .unwrap_or_else(|e| panic!("resizable invariant violated: {e}"));
        d.audit_refcounts()
            .unwrap_or_else(|e| panic!("resizable refcount drift: {e}"));
        println!(
            "{:>12}  grew to {} buckets over {} doublings",
            "",
            d.bucket_count(),
            d.doublings()
        );
    }
    if want("skip") {
        let mut d: SkipListDict<u64, u64> = SkipListDict::new();
        soak_dict("skip list", &d, args.secs, args.threads);
        d.check_invariants()
            .unwrap_or_else(|e| panic!("skip list invariant violated: {e}"));
    }
    if want("bst") {
        let mut d: BstDict<u64, u64> = BstDict::new();
        soak_dict("bst", &d, args.secs, args.threads);
        d.check_invariants()
            .unwrap_or_else(|e| panic!("bst invariant violated: {e}"));
    }
    if want("queue") {
        soak_queue(args.secs, args.threads);
    }
    if want("stack") || want("pqueue") {
        soak_stack_pqueue(args.secs, args.threads);
    }
    if want("service") {
        soak_service(args.secs, args.threads);
    }
    // Flight-recorder summary (non-empty only with `--features trace`):
    // protocol-level counters and histograms aggregated across all soak
    // threads — CAS failure rate, SafeRead/Release traffic per hop,
    // backoff and batch-size distributions.
    let metrics = valois_trace::snapshot();
    if !metrics.is_empty() {
        println!("--- flight recorder ---\n{metrics}");
    }
    assert!(
        !args.inject_failure,
        "injected failure (--inject-failure): exercising the post-mortem dump path"
    );
    println!("soak complete in {:?} — all invariants held", t0.elapsed());
}
