//! CLI for the E1–E10 experiment suite.
//!
//! ```text
//! experiments [e1|e2|...|e10|all] [--quick] [--point-ms N] [--max-threads N]
//! ```
//!
//! Run with `cargo run --release -p valois-bench --bin experiments -- all`.

use std::time::Duration;

use valois_bench::experiments::{self, ExpConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut cfg = ExpConfig::standard();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg.point = Duration::from_millis(60),
            "--point-ms" => {
                i += 1;
                let ms: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--point-ms needs a number");
                cfg.point = Duration::from_millis(ms);
            }
            "--max-threads" => {
                i += 1;
                cfg.max_threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--max-threads needs a number");
            }
            other => which.push(other.to_ascii_lowercase()),
        }
        i += 1;
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = (1..=10).map(|n| format!("e{n}")).collect();
    }

    println!(
        "Valois PODC'95 reproduction — experiment suite ({} cores, {:?}/point)\n",
        ExpConfig::cores(),
        cfg.point
    );
    for w in which {
        match w.as_str() {
            "e1" => drop(experiments::e1_throughput_vs_threads(&cfg)),
            "e2" => drop(experiments::e2_delay_injection(&cfg)),
            "e3" => drop(experiments::e3_retries_vs_threads(&cfg)),
            "e4" => drop(experiments::e4_hash_buckets(&cfg)),
            "e5" => drop(experiments::e5_skiplist_vs_list(&cfg)),
            "e6" => drop(experiments::e6_bst(&cfg)),
            "e7" => drop(experiments::e7_aux_quiescence(&cfg)),
            "e8" => drop(experiments::e8_saferead_overhead(&cfg)),
            "e9" => drop(experiments::e9_multiprogramming(&cfg)),
            "e10" => drop(experiments::e10_resize(&cfg)),
            other => eprintln!("unknown experiment: {other}"),
        }
    }
}
