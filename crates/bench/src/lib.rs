//! Experiment implementations regenerating the paper's performance claims
//! (DESIGN.md §4). Each `eN` function runs one experiment and returns the
//! paper-style table it printed; the `experiments` binary is a thin CLI
//! over these, and the smoke tests call them with tiny budgets.

#![warn(missing_docs)]

pub mod criterion;
pub mod experiments;

pub use experiments::{ExpConfig, ExperimentReport};
