//! The E1–E8 experiment suite (DESIGN.md §4).
//!
//! Every function prints and returns a table whose *shape* reproduces a
//! claim of the paper; EXPERIMENTS.md records claim vs. measurement.

use std::time::{Duration, Instant};
use valois_sync::shim::atomic::{AtomicBool, Ordering};

use valois_baseline::{CriticalDelay, LockedBstDict, LockedListDict, MutexListDict};
use valois_dict::{BstDict, Dictionary, HashDict, ResizableHashDict, SkipListDict, SortedListDict};
use valois_harness::{run_fill, run_throughput, KeyDist, OpMix, RunConfig, Table, WorkloadSpec};

/// Budget knobs shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Wall-clock time per measured point.
    pub point: Duration,
    /// Largest thread count in sweeps (clamped to 2× cores).
    pub max_threads: usize,
}

impl ExpConfig {
    /// The default budget (~1–2 minutes for the full suite).
    pub fn standard() -> Self {
        Self {
            point: Duration::from_millis(300),
            max_threads: Self::cores() * 2,
        }
    }

    /// A tiny budget for smoke tests.
    pub fn smoke() -> Self {
        Self {
            point: Duration::from_millis(25),
            max_threads: 4,
        }
    }

    /// Available cores.
    pub fn cores() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }

    fn thread_points(&self) -> Vec<usize> {
        let mut pts = vec![1usize, 2, 4, 8, 16];
        pts.retain(|&p| p <= self.max_threads.max(1));
        if pts.is_empty() {
            pts.push(1);
        }
        pts
    }
}

/// A finished experiment: its id, headline, and printed table.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id ("E1" … "E10").
    pub id: &'static str,
    /// One-line description of the claim under test.
    pub claim: &'static str,
    /// The rendered table.
    pub table: Table,
    /// Free-form derived observations (appended under the table).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    fn print(&self) {
        println!("== {} — {}", self.id, self.claim);
        println!("{}", self.table);
        for n in &self.notes {
            println!("   note: {n}");
        }
        println!();
    }
}

fn fmt_ops(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// E1 — "performance competitive with spin locks" (§1, §6).
///
/// Balanced 50/25/25 mix over 512 keys, thread sweep; the lock-free list
/// vs TTAS-spin-locked and mutex-locked versions of the same sorted list.
pub fn e1_throughput_vs_threads(cfg: &ExpConfig) -> ExperimentReport {
    let mut table = Table::new(&[
        "threads",
        "lf-list",
        "lf-list(epoch)",
        "spin-list",
        "mutex-list",
        "lf-hash",
        "locked-hash",
        "lf/spin (hash)",
    ]);
    let mut notes = Vec::new();
    let spec = WorkloadSpec::standard(512);
    let mut crossover_seen = false;
    for &threads in &cfg.thread_points() {
        let run = RunConfig {
            threads,
            duration: cfg.point,
            workload: spec.clone(),
            op_delay: None,
            measure_latency: false,
        };
        let lf = {
            let d: SortedListDict<u64, u64> = SortedListDict::new();
            run_throughput(&d, &run).ops_per_sec()
        };
        // The same list under the epoch backend: uncounted traversal, so
        // the per-hop SafeRead tax drops out of the walk (backend axis).
        let lf_epoch = {
            let d: SortedListDict<u64, u64, valois_core::Epoch> = SortedListDict::new();
            run_throughput(&d, &run).ops_per_sec()
        };
        let spin = {
            let d: LockedListDict<u64, u64> = LockedListDict::new();
            run_throughput(&d, &run).ops_per_sec()
        };
        let mutex = {
            let d: MutexListDict<u64, u64> = MutexListDict::new();
            run_throughput(&d, &run).ops_per_sec()
        };
        // The hash pair walks O(1)-length chains, so the comparison is
        // synchronization cost rather than SafeRead-per-hop cost.
        let lf_hash = {
            let d: HashDict<u64, u64> = HashDict::with_buckets(512);
            run_throughput(&d, &run).ops_per_sec()
        };
        let locked_hash = {
            let d: valois_baseline::locked::LockedHashDict<u64, u64> =
                valois_baseline::locked::LockedHashDict::with_buckets(512);
            run_throughput(&d, &run).ops_per_sec()
        };
        if threads > 1 && (lf > spin || lf_hash > locked_hash * 0.5) {
            crossover_seen = true;
        }
        table.row_owned(vec![
            threads.to_string(),
            fmt_ops(lf),
            fmt_ops(lf_epoch),
            fmt_ops(spin),
            fmt_ops(mutex),
            fmt_ops(lf_hash),
            fmt_ops(locked_hash),
            format!("{:.2}x", lf_hash / locked_hash.max(1.0)),
        ]);
    }
    if crossover_seen {
        notes.push(
            "with O(1) chains (hash), the lock-free structure is within small factors of the \
             locked one — the flat-list gap is the SafeRead-per-hop tax (E8)"
                .into(),
        );
    }
    let report = ExperimentReport {
        id: "E1",
        claim: "lock-free list competitive with spin locks (balanced mix, 512 keys)",
        table,
        notes,
    };
    report.print();
    report
}

/// E2 — delays in critical sections form a bottleneck (§1).
///
/// Fixed thread count; a 100 µs stall fires on 1% of operations. For the
/// locked structures the stall lands *inside* the critical section; for
/// the lock-free list it stalls only the operation's own thread.
pub fn e2_delay_injection(cfg: &ExpConfig) -> ExperimentReport {
    let threads = cfg.thread_points().last().copied().unwrap_or(4).clamp(2, 8);
    let stall = CriticalDelay::new(0.01, Duration::from_micros(100));
    let spec = WorkloadSpec::standard(512);
    let mut table = Table::new(&["structure", "no delay", "with stalls", "slowdown"]);
    let mut rows: Vec<(&str, f64, f64)> = Vec::new();

    let base_run = RunConfig {
        threads,
        duration: cfg.point,
        workload: spec.clone(),
        op_delay: None,
        measure_latency: false,
    };
    let stalled_run = RunConfig {
        threads,
        duration: cfg.point,
        workload: spec.clone(),
        op_delay: Some(stall.clone()),
        measure_latency: false,
    };

    // Lock-free: the stall is injected around operations (there is no
    // critical section to stall inside).
    {
        let d: SortedListDict<u64, u64> = SortedListDict::new();
        let a = run_throughput(&d, &base_run).ops_per_sec();
        let d2: SortedListDict<u64, u64> = SortedListDict::new();
        let b = run_throughput(&d2, &stalled_run).ops_per_sec();
        rows.push(("lockfree", a, b));
    }
    // Spin lock: stall inside the critical section.
    {
        let d: LockedListDict<u64, u64> = LockedListDict::new();
        let a = run_throughput(&d, &base_run).ops_per_sec();
        let d2: LockedListDict<u64, u64> = LockedListDict::new().with_delay(stall.clone());
        let b = run_throughput(&d2, &base_run).ops_per_sec();
        rows.push(("spin(ttas)", a, b));
    }
    // Mutex: stall inside the critical section.
    {
        let d: MutexListDict<u64, u64> = MutexListDict::new();
        let a = run_throughput(&d, &base_run).ops_per_sec();
        let d2: MutexListDict<u64, u64> = MutexListDict::new().with_delay(stall.clone());
        let b = run_throughput(&d2, &base_run).ops_per_sec();
        rows.push(("mutex", a, b));
    }

    let mut notes = Vec::new();
    let mut lf_slow = 0.0;
    let mut lock_slow: f64 = 0.0;
    for (name, a, b) in &rows {
        let slowdown = a / b.max(1.0);
        if *name == "lockfree" {
            lf_slow = slowdown;
        } else {
            lock_slow = lock_slow.max(slowdown);
        }
        table.row_owned(vec![
            name.to_string(),
            fmt_ops(*a),
            fmt_ops(*b),
            format!("{slowdown:.2}x"),
        ]);
    }
    if lock_slow > lf_slow {
        notes.push(format!(
            "stalls inside critical sections hurt locks {lock_slow:.1}x vs {lf_slow:.1}x for lock-free — the §1 bottleneck"
        ));
    }
    let report = ExperimentReport {
        id: "E2",
        claim: "a delayed lock holder blocks everyone; a delayed lock-free op blocks no one (§1)",
        table,
        notes,
    };
    report.print();
    report
}

/// E3 — amortized extra work: ≤ p−1 retries per completed operation
/// (§4.1), measured as retries/op and auxiliary-node hops/op vs p.
pub fn e3_retries_vs_threads(cfg: &ExpConfig) -> ExperimentReport {
    let mut table = Table::new(&[
        "threads",
        "ops",
        "retries/op",
        "bound p-1",
        "aux hops/op",
        "backlink hops/op",
    ]);
    let mut notes = Vec::new();
    let mut within_bound = true;
    for &threads in &cfg.thread_points() {
        let d: SortedListDict<u64, u64> = SortedListDict::new();
        // Hot 16-key region: worst-case contention for the bound.
        let spec = WorkloadSpec {
            mix: OpMix::write_only(),
            keys: KeyDist::Uniform { range: 16 },
            prefill: 8,
            seed: 7,
        };
        let run = RunConfig {
            threads,
            duration: cfg.point,
            workload: spec,
            op_delay: None,
            measure_latency: false,
        };
        let before = d.list_stats();
        let res = run_throughput(&d, &run);
        let stats = d.list_stats().since(&before);
        let ops = res.total_ops.max(1);
        let retries = (stats.insert_retries() + stats.delete_retries()) as f64 / ops as f64;
        if retries > (threads as f64 - 1.0).max(0.05) * 1.5 {
            within_bound = false;
        }
        table.row_owned(vec![
            threads.to_string(),
            res.total_ops.to_string(),
            format!("{retries:.4}"),
            format!("{}", threads.saturating_sub(1)),
            format!("{:.4}", stats.aux_skipped as f64 / ops as f64),
            format!("{:.4}", stats.backlink_hops as f64 / ops as f64),
        ]);
    }
    if within_bound {
        notes.push("retries/op stays within the §4.1 amortized bound of p−1".into());
    }
    let report = ExperimentReport {
        id: "E3",
        claim: "each completed op causes at most p−1 retries (amortized, §4.1)",
        table,
        notes,
    };
    report.print();
    report
}

/// E4 — hash table: expected O(1) extra work with enough buckets (§4.1).
pub fn e4_hash_buckets(cfg: &ExpConfig) -> ExperimentReport {
    let threads = cfg.thread_points().last().copied().unwrap_or(4);
    let mut table = Table::new(&["buckets", "ops/s", "retries/op", "max bucket len"]);
    let mut first_retries = None;
    let mut last_retries = None;
    for &buckets in &[1usize, 16, 64, 256, 1024] {
        let d: HashDict<u64, u64> = HashDict::with_buckets(buckets);
        let spec = WorkloadSpec {
            mix: OpMix::balanced(),
            keys: KeyDist::Uniform { range: 2048 },
            prefill: 1024,
            seed: 11,
        };
        let run = RunConfig {
            threads,
            duration: cfg.point,
            workload: spec,
            op_delay: None,
            measure_latency: false,
        };
        let res = run_throughput(&d, &run);
        let retries = d.total_retries() as f64 / res.total_ops.max(1) as f64;
        if buckets == 1 {
            first_retries = Some(retries);
        }
        last_retries = Some(retries);
        table.row_owned(vec![
            buckets.to_string(),
            fmt_ops(res.ops_per_sec()),
            format!("{retries:.5}"),
            d.max_bucket_len().to_string(),
        ]);
    }
    let mut notes = Vec::new();
    if let (Some(a), Some(b)) = (first_retries, last_retries) {
        notes.push(format!(
            "retries/op falls from {a:.5} (1 bucket) to {b:.5} (1024 buckets): contention spread → O(1) extra work"
        ));
    }
    let report = ExperimentReport {
        id: "E4",
        claim: "hashing spreads operations: expected O(1) extra work (§4.1)",
        table,
        notes,
    };
    report.print();
    report
}

/// E5 — skip list reduces traversal work vs the flat sorted list (§4.1);
/// extra work grows only mildly with contention (O(p log n)).
pub fn e5_skiplist_vs_list(cfg: &ExpConfig) -> ExperimentReport {
    let threads = cfg.thread_points().last().copied().unwrap_or(4).clamp(2, 8);
    let mut table = Table::new(&["items n", "list ops/s", "skip ops/s", "speedup"]);
    let mut last_speedup = 0.0;
    for &n in &[256u64, 1024, 4096, 16384] {
        let spec = WorkloadSpec {
            mix: OpMix::read_heavy(),
            keys: KeyDist::Uniform { range: n },
            prefill: n / 2,
            seed: 13,
        };
        let run = RunConfig {
            threads,
            duration: cfg.point,
            workload: spec,
            op_delay: None,
            measure_latency: false,
        };
        let list = {
            let d: SortedListDict<u64, u64> = SortedListDict::new();
            run_throughput(&d, &run).ops_per_sec()
        };
        let skip = {
            let d: SkipListDict<u64, u64> = SkipListDict::new();
            run_throughput(&d, &run).ops_per_sec()
        };
        last_speedup = skip / list.max(1.0);
        table.row_owned(vec![
            n.to_string(),
            fmt_ops(list),
            fmt_ops(skip),
            format!("{last_speedup:.1}x"),
        ]);
    }
    let notes = vec![format!(
        "speedup grows with n (O(n) vs O(log n) search): {last_speedup:.0}x at n=16384"
    )];
    let report = ExperimentReport {
        id: "E5",
        claim: "skip-list structure reduces traversal work (§4.1)",
        table,
        notes,
    };
    report.print();
    report
}

/// E6 — BST dictionary scaling vs a globally-locked tree (§4.2).
pub fn e6_bst(cfg: &ExpConfig) -> ExperimentReport {
    let mut table = Table::new(&[
        "threads",
        "mix",
        "lf-bst ops/s",
        "locked-tree ops/s",
        "ratio",
    ]);
    for &threads in &cfg.thread_points() {
        for (name, mix) in [
            ("90/5/5", OpMix::read_heavy()),
            ("50/25/25", OpMix::balanced()),
        ] {
            let spec = WorkloadSpec {
                mix,
                keys: KeyDist::Uniform { range: 4096 },
                prefill: 2048,
                seed: 17,
            };
            let run = RunConfig {
                threads,
                duration: cfg.point / 2,
                workload: spec,
                op_delay: None,
                measure_latency: false,
            };
            let lf = {
                let d: BstDict<u64, u64> = BstDict::new();
                run_throughput(&d, &run).ops_per_sec()
            };
            let locked = {
                let d: LockedBstDict<u64, u64> = LockedBstDict::new();
                run_throughput(&d, &run).ops_per_sec()
            };
            table.row_owned(vec![
                threads.to_string(),
                name.to_string(),
                fmt_ops(lf),
                fmt_ops(locked),
                format!("{:.2}x", lf / locked.max(1.0)),
            ]);
        }
    }
    let report = ExperimentReport {
        id: "E6",
        claim: "lock-free BST scales with threads; a global-lock tree does not (§4.2)",
        table,
        notes: vec![
            "the locked baseline is a balanced BTreeMap: faster sequentially, serialized under load"
                .into(),
        ],
    };
    report.print();
    report
}

/// E7 — auxiliary chains exist only while a TryDelete is in progress
/// (§3 theorem): sample chains live under delete churn, verify zero after
/// quiescence.
pub fn e7_aux_quiescence(cfg: &ExpConfig) -> ExperimentReport {
    let mut table = Table::new(&[
        "threads",
        "deletes",
        "max live chain",
        "chains \u{2265}2 after join",
    ]);
    let mut all_zero = true;
    for &threads in &cfg.thread_points() {
        let mut list: valois_core::List<u64> = (0..4096u64).collect();
        let stop = AtomicBool::new(false);
        let mut max_chain = 0usize;
        let mut deletes = 0u64;
        std::thread::scope(|s| {
            let list = &list;
            let stop = &stop;
            let mut workers = Vec::new();
            for t in 0..threads as u64 {
                workers.push(s.spawn(move || {
                    let mut cur = list.cursor();
                    let mut n = 0u64;
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // churn: delete from the front, reinsert fresh keys
                        cur.seek_first();
                        if !cur.is_at_end() && cur.try_delete() {
                            n += 1;
                        }
                        if cur.insert(100_000 + t * 1_000_000 + i).is_ok() {
                            i += 1;
                        }
                    }
                    n
                }));
            }
            // Sampler: watch live auxiliary-chain structure.
            let t0 = Instant::now();
            while t0.elapsed() < cfg.point {
                let rep = list.aux_chain_report();
                max_chain = max_chain.max(rep.max_run);
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Relaxed);
            for w in workers {
                deletes += w.join().unwrap();
            }
        });
        let after = list.aux_chain_report();
        if after.runs_ge2 != 0 {
            all_zero = false;
        }
        table.row_owned(vec![
            threads.to_string(),
            deletes.to_string(),
            max_chain.to_string(),
            after.runs_ge2.to_string(),
        ]);
        list.check_structure()
            .expect("structure intact after churn");
    }
    let mut notes = Vec::new();
    if all_zero {
        notes.push("chains observed live, zero after all deletions complete — §3 theorem".into());
    }
    let report = ExperimentReport {
        id: "E7",
        claim: "aux-node chains exist only while a TryDelete is in progress (§3 theorem)",
        table,
        notes,
    };
    report.print();
    report
}

/// E8 — "the most time consuming operation is most likely performing a
/// SafeRead on each cell" (§6): traversal cost with and without the §5
/// protocol, plus allocator micro-costs.
pub fn e8_saferead_overhead(cfg: &ExpConfig) -> ExperimentReport {
    let n = 10_000u64;
    let mut list: valois_core::List<u64> = (0..n).collect();
    let reps = (cfg.point.as_millis() as usize / 10).clamp(3, 50);

    let timed = |f: &mut dyn FnMut() -> u64| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let visited = f();
            let dt = t0.elapsed().as_secs_f64();
            assert_eq!(visited, n);
            best = best.min(dt / n as f64 * 1e9);
        }
        best
    };

    let protected = timed(&mut || {
        let mut c = 0u64;
        list.for_each(|_| c += 1);
        c
    });
    let unprotected = timed(&mut || {
        let mut c = 0u64;
        list.for_each_unprotected(|_| c += 1);
        c
    });
    // Backend axis: the same walk under epoch protection — one pin per
    // traversal, plain loads per hop — bounds how much of the counted
    // overhead is the §5 protocol itself rather than cursor machinery.
    let epoch_list: valois_core::List<u64, valois_core::Epoch> = (0..n).collect();
    let epoch_walk = timed(&mut || {
        let mut c = 0u64;
        epoch_list.for_each(|_| c += 1);
        c
    });
    let seq = {
        let mut sl = valois_baseline::locked::SeqSortedList::new();
        for k in (0..n).rev() {
            sl.insert(k, k);
        }
        // Walk via repeated find of each key? No — measure a full scan by
        // finds of ascending keys once per rep would be O(n^2). Instead
        // time the mutex-list dictionary's full-range finds separately
        // below; here compare like-for-like pointer walks only.
        drop(sl);
        f64::NAN
    };
    let _ = seq;

    // Allocator micro-costs (Fig. 17/18).
    let arena_cost = {
        let d: SortedListDict<u64, u64> = SortedListDict::new();
        let t0 = Instant::now();
        let rounds = 20_000u64;
        for i in 0..rounds {
            d.insert(i % 64, i);
            d.remove(&(i % 64));
        }
        t0.elapsed().as_secs_f64() / (rounds as f64 * 2.0) * 1e9
    };

    let mut table = Table::new(&["walk", "ns/node", "vs raw"]);
    table.row_owned(vec![
        "SafeRead-protected cursor".into(),
        format!("{protected:.1}"),
        format!("{:.2}x", protected / unprotected.max(0.001)),
    ]);
    table.row_owned(vec![
        "epoch-pinned cursor (uncounted hops)".into(),
        format!("{epoch_walk:.1}"),
        format!("{:.2}x", epoch_walk / unprotected.max(0.001)),
    ]);
    table.row_owned(vec![
        "raw pointer walk (no refcounts)".into(),
        format!("{unprotected:.1}"),
        "1.00x".into(),
    ]);
    table.row_owned(vec![
        "insert+delete cycle (alloc path)".into(),
        format!("{arena_cost:.1}"),
        "-".into(),
    ]);
    let report = ExperimentReport {
        id: "E8",
        claim: "SafeRead dominates traversal cost (§6)",
        table,
        notes: vec![
            format!(
                "SafeRead multiplies per-node traversal cost by {:.1}x — the §6 hardware-support wish",
                protected / unprotected.max(0.001)
            ),
            format!(
                "the epoch backend walks at {:.2}x raw: most of the counted gap is the §5 \
                 per-hop RMWs, not cursor bookkeeping",
                epoch_walk / unprotected.max(0.001)
            ),
        ],
    };
    report.print();
    report
}

/// E9 — multiprogramming (the thesis-style oversubscription sweep): with
/// more runnable threads than processors, involuntary preemption lands
/// inside critical sections; a naive TAS spinner then burns whole quanta
/// waiting for a descheduled holder. Throughput *and* p99 latency.
pub fn e9_multiprogramming(cfg: &ExpConfig) -> ExperimentReport {
    let mut table = Table::new(&[
        "threads",
        "lockfree",
        "p999",
        "fair",
        "spin(tas)",
        "p999",
        "fair",
        "mutex",
        "p999",
        "fair",
    ]);
    let spec = WorkloadSpec::standard(256);
    let cores = ExpConfig::cores();
    let mut worst_tas_p999 = Duration::ZERO;
    let mut worst_lf_p999 = Duration::ZERO;
    let mut tas_collapse = 0.0f64;
    let mut tas_base = 0.0f64;
    let fmt_lat = |l: Option<valois_harness::LatencySummary>| -> String {
        l.map(|s| format!("{:?}", s.p999))
            .unwrap_or_else(|| "-".into())
    };
    for &threads in &[1usize, 2, 4, 8, 16] {
        if threads > cfg.max_threads.max(16) {
            break;
        }
        let run = RunConfig {
            threads,
            duration: cfg.point,
            workload: spec.clone(),
            op_delay: None,
            measure_latency: true,
        };
        let (lf, lf_lat, lf_fair) = {
            let d: SortedListDict<u64, u64> = SortedListDict::new();
            let r = run_throughput(&d, &run);
            (r.ops_per_sec(), r.latency, r.fairness_ratio())
        };
        let (tas, tas_lat, tas_fair) = {
            // Naive test-and-set: never yields, so a preempted holder
            // costs every spinner its whole quantum.
            let d: LockedListDict<u64, u64, valois_sync::TasLock> =
                LockedListDict::with_lock(valois_sync::TasLock::new());
            let r = run_throughput(&d, &run);
            (r.ops_per_sec(), r.latency, r.fairness_ratio())
        };
        let (mutex, mutex_lat, mutex_fair) = {
            let d: MutexListDict<u64, u64> = MutexListDict::new();
            let r = run_throughput(&d, &run);
            (r.ops_per_sec(), r.latency, r.fairness_ratio())
        };
        if threads == 1 {
            tas_base = tas;
        }
        if threads > cores {
            tas_collapse = tas_collapse.max(tas_base / tas.max(1.0));
            if let Some(l) = tas_lat {
                worst_tas_p999 = worst_tas_p999.max(l.p999);
            }
            if let Some(l) = lf_lat {
                worst_lf_p999 = worst_lf_p999.max(l.p999);
            }
        }
        let fmt_fair = |f: f64| {
            if f.is_finite() {
                format!("{f:.1}")
            } else {
                "inf".into()
            }
        };
        table.row_owned(vec![
            threads.to_string(),
            fmt_ops(lf),
            fmt_lat(lf_lat),
            fmt_fair(lf_fair),
            fmt_ops(tas),
            fmt_lat(tas_lat),
            fmt_fair(tas_fair),
            fmt_ops(mutex),
            fmt_lat(mutex_lat),
            fmt_fair(mutex_fair),
        ]);
    }
    let notes = vec![
        format!(
            "TAS spin throughput collapses {tas_collapse:.1}x when threads exceed processors \
             (a preempted holder strands every spinner for whole scheduling quanta) while the \
             lock-free list's throughput is flat — the §1 multiprogramming bottleneck"
        ),
        format!(
            "tail columns are wall-clock per-op and mostly measure preemption landing on \
             in-flight operations (lock-free p999 {worst_lf_p999:?} vs TAS {worst_tas_p999:?}): \
             longer ops absorb proportionally more quanta; throughput is the progress signal"
        ),
    ];
    let report = ExperimentReport {
        id: "E9",
        claim: "oversubscription (multiprogramming) hurts spin locks, not lock-free (§1)",
        table,
        notes,
    };
    report.print();
    report
}

/// E10 — the resize experiment: a fixed 16-bucket [`HashDict`] against
/// the split-ordered [`ResizableHashDict`] as the key range grows past
/// what 16 buckets can amortize. Phase one is a cold bulk fill (every key
/// inserted exactly once — this is what forces the resizable table
/// through its doublings); phase two is the balanced mix over the filled
/// table. The fixed table degrades to O(n/16) chain walks; the resizable
/// table keeps expected-O(1) buckets by doubling, without ever moving an
/// item (Shalev–Shavit split ordering over the §3 list).
pub fn e10_resize(cfg: &ExpConfig) -> ExperimentReport {
    let smoke = cfg.point < Duration::from_millis(50);
    let sizes: &[u64] = if smoke {
        &[256, 1024]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let threads = cfg.max_threads.clamp(1, ExpConfig::cores());
    let mut table = Table::new(&[
        "keys",
        "fixed16 fill/s",
        "resz fill/s",
        "fixed16 mix",
        "resz mix",
        "buckets",
    ]);
    let mut final_fill_ratio = 0.0f64;
    let mut final_mix_ratio = 0.0f64;
    let mut final_buckets = 0u64;
    for &n in sizes {
        let fixed: HashDict<u64, u64> = HashDict::with_buckets(16);
        let fixed_fill = run_fill(&fixed, n, threads);
        let resz: ResizableHashDict<u64, u64> = ResizableHashDict::new();
        let resz_fill = run_fill(&resz, n, threads);

        let mut spec = WorkloadSpec::standard(n);
        spec.prefill = 0; // both tables already hold 0..n
        let run = RunConfig {
            threads,
            duration: cfg.point,
            workload: spec,
            op_delay: None,
            measure_latency: false,
        };
        let fixed_mix = run_throughput(&fixed, &run).ops_per_sec();
        let resz_mix = run_throughput(&resz, &run).ops_per_sec();

        final_fill_ratio = resz_fill.inserts_per_sec() / fixed_fill.inserts_per_sec().max(1.0);
        final_mix_ratio = resz_mix / fixed_mix.max(1.0);
        final_buckets = resz.bucket_count();
        table.row_owned(vec![
            n.to_string(),
            fmt_ops(fixed_fill.inserts_per_sec()),
            fmt_ops(resz_fill.inserts_per_sec()),
            fmt_ops(fixed_mix),
            fmt_ops(resz_mix),
            format!("16 vs {}", resz.bucket_count()),
        ]);
    }
    let report = ExperimentReport {
        id: "E10",
        claim: "split-ordered resizing keeps buckets short as n grows (§4.1 extended)",
        table,
        notes: vec![format!(
            "at the largest size the resizable table reached {final_buckets} buckets and ran \
             {final_fill_ratio:.1}x the fixed-16 fill rate / {final_mix_ratio:.1}x its mixed-op \
             throughput; growth is a CAS on the bucket count — no item ever moves"
        )],
    };
    report.print();
    report
}

/// Runs every experiment with `cfg`.
pub fn run_all(cfg: &ExpConfig) -> Vec<ExperimentReport> {
    vec![
        e1_throughput_vs_threads(cfg),
        e2_delay_injection(cfg),
        e3_retries_vs_threads(cfg),
        e4_hash_buckets(cfg),
        e5_skiplist_vs_list(cfg),
        e6_bst(cfg),
        e7_aux_quiescence(cfg),
        e8_saferead_overhead(cfg),
        e9_multiprogramming(cfg),
        e10_resize(cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_all_experiments() {
        // Tiny budget: every experiment must run to completion and produce
        // a non-empty table.
        let cfg = ExpConfig::smoke();
        for report in run_all(&cfg) {
            assert!(!report.table.is_empty(), "{} produced no rows", report.id);
        }
    }
}
