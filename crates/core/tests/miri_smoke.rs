//! Miri smoke subset: `cargo +nightly miri test -p valois-core smoke_`.
//!
//! Miri interprets every load/store, so it is orders of magnitude slower
//! than native execution — these tests are deliberately tiny (tens of
//! operations, at most two threads) while still driving every protocol
//! path: alloc, SafeRead/Release, swing, TryInsert, TryDelete with
//! back-link walk, reclamation cascade, and free-list recycling.
//!
//! What Miri checks here that native tests cannot: undefined behaviour in
//! the unsafe protocol code — use-after-free, invalid pointer provenance,
//! uninitialized `value` slot reads, and data races on the few non-atomic
//! fields. Known arena limitations under Miri are documented in
//! docs/VERIFICATION.md (§ Miri).

use valois_core::{ArenaConfig, List};

#[test]
fn smoke_insert_iterate_delete() {
    let mut list: List<u64> = List::new();
    let mut c = list.cursor();
    for v in [3, 2, 1] {
        c.insert(v).unwrap();
    }
    drop(c);
    assert_eq!(list.iter().collect::<Vec<u64>>(), vec![1, 2, 3]);

    let mut c = list.cursor();
    c.seek_first();
    while c.get() != Some(&2) {
        assert!(c.next());
    }
    assert!(c.try_delete());
    drop(c);
    assert_eq!(list.iter().collect::<Vec<u64>>(), vec![1, 3]);

    list.check_structure().unwrap();
    list.audit_refcounts().unwrap();
}

#[test]
fn smoke_free_list_recycles_nodes() {
    // A capped pool: repeated insert/delete must recycle the same cells
    // through Alloc/Reclaim rather than grow.
    let mut list: List<u64> =
        List::with_config(ArenaConfig::new().initial_capacity(8).max_nodes(8));
    for round in 0..4u64 {
        let mut c = list.cursor();
        c.insert(round).unwrap();
        c.update();
        assert_eq!(c.get(), Some(&round));
        assert!(c.try_delete());
        drop(c);
        list.quiescent_collect();
        assert!(list.is_empty());
    }
    list.check_structure().unwrap();
    list.audit_refcounts().unwrap();
}

#[test]
fn smoke_cursor_persistence_across_delete() {
    // Cell persistence (§4): the deleting cursor still reads the value.
    let list: List<u64> = std::iter::once(7).collect();
    let mut c = list.cursor();
    c.seek_first();
    assert!(c.try_delete());
    assert_eq!(c.get(), Some(&7), "deleted cell persists for its cursor");
    c.update();
    assert!(c.is_at_end());
}

#[test]
fn smoke_two_thread_insert_contention() {
    // The smallest genuinely contended workload: two threads, one shared
    // neighbourhood, a handful of CAS retries.
    let mut list: List<u64> = List::new();
    std::thread::scope(|s| {
        let list = &list;
        for t in 0..2u64 {
            s.spawn(move || {
                let mut c = list.cursor();
                for i in 0..8 {
                    c.insert(t * 8 + i).unwrap();
                    c.update();
                }
            });
        }
    });
    let mut items: Vec<u64> = list.iter().collect();
    items.sort_unstable();
    assert_eq!(items, (0..16).collect::<Vec<u64>>());
    list.check_structure().unwrap();
    list.audit_refcounts().unwrap();
}

#[test]
fn smoke_two_thread_insert_delete_race() {
    // One inserter, one deleter, same neighbourhood — the Fig. 9 / Fig. 10
    // CAS contention in miniature (the loom models explore it exhaustively;
    // Miri checks one OS interleaving for UB).
    let mut list: List<u64> = std::iter::once(10).collect();
    std::thread::scope(|s| {
        let list = &list;
        s.spawn(move || {
            list.cursor().insert(5).unwrap();
        });
        s.spawn(move || {
            let mut c = list.cursor();
            loop {
                match c.get() {
                    Some(&10) => {
                        if c.try_delete() {
                            break;
                        }
                        c.update();
                    }
                    Some(_) => assert!(c.next()),
                    None => panic!("cell 10 vanished"),
                }
            }
        });
    });
    assert_eq!(list.iter().collect::<Vec<u64>>(), vec![5]);
    list.check_structure().unwrap();
    list.audit_refcounts().unwrap();
}
