//! Sequential behaviour of the §3 list: layout (Fig. 4), traversal
//! (Figs. 5-7), insertion (Figs. 8-9), deletion (Fig. 10), and cell
//! persistence (§2.2).

use valois_core::{ArenaConfig, List};

#[test]
fn empty_list_layout_fig4() {
    // An empty list is two dummies separated by one auxiliary node.
    let mut list: List<u32> = List::new();
    assert!(list.is_empty());
    assert_eq!(list.len(), 0);
    let report = list.aux_chain_report();
    assert_eq!(report.cells, 0);
    assert_eq!(report.aux, 1);
    assert_eq!(report.runs_ge2, 0);
    list.check_structure().unwrap();
}

#[test]
fn cursor_on_empty_list_is_at_end() {
    let list: List<u32> = List::new();
    let mut cur = list.cursor();
    assert!(cur.is_at_end());
    assert!(cur.get().is_none());
    assert!(!cur.next(), "Next at end must return false (Fig. 7 line 2)");
    assert!(!cur.try_delete(), "cannot delete the end position");
}

#[test]
fn insert_before_cursor_position() {
    let list: List<u32> = List::new();
    let mut cur = list.cursor();
    cur.insert(10).unwrap();
    // Insertion happens before the visited position; cursor must be made
    // valid again to see it.
    cur.update();
    assert_eq!(cur.get(), Some(&10));
    // Insert another before 10: order becomes [20, 10] when inserting at
    // the first position again.
    let mut cur2 = list.cursor();
    cur2.insert(20).unwrap();
    let items: Vec<u32> = list.iter().collect();
    assert_eq!(items, vec![20, 10]);
}

#[test]
fn insert_at_end_appends() {
    let list: List<u32> = List::new();
    let mut cur = list.cursor();
    for i in 0..5 {
        // Walk to the end position, then insert before it (= append).
        while cur.next() {}
        cur.insert(i).unwrap();
        cur.update();
    }
    let items: Vec<u32> = list.iter().collect();
    assert_eq!(items, vec![0, 1, 2, 3, 4]);
}

#[test]
fn from_iterator_preserves_order() {
    let mut list: List<u32> = (0..100).collect();
    let items: Vec<u32> = list.iter().collect();
    assert_eq!(items, (0..100).collect::<Vec<_>>());
    assert_eq!(list.len(), 100);
    list.check_structure().unwrap();
}

#[test]
fn traversal_visits_every_item_once() {
    let list: List<u32> = (0..50).collect();
    let mut seen = Vec::new();
    list.for_each(|v| seen.push(*v));
    assert_eq!(seen, (0..50).collect::<Vec<_>>());
}

#[test]
fn delete_first_item() {
    let mut list: List<u32> = (0..3).collect();
    let mut cur = list.cursor();
    assert_eq!(cur.get(), Some(&0));
    assert!(cur.try_delete());
    drop(cur);
    let items: Vec<u32> = list.iter().collect();
    assert_eq!(items, vec![1, 2]);
    list.check_structure().unwrap();
}

#[test]
fn delete_middle_item() {
    let mut list: List<u32> = (0..5).collect();
    let mut cur = list.cursor();
    while cur.get() != Some(&2) {
        assert!(cur.next());
    }
    assert!(cur.try_delete());
    drop(cur);
    let items: Vec<u32> = list.iter().collect();
    assert_eq!(items, vec![0, 1, 3, 4]);
    list.check_structure().unwrap();
}

#[test]
fn delete_last_item() {
    let mut list: List<u32> = (0..4).collect();
    let mut cur = list.cursor();
    while cur.get() != Some(&3) {
        assert!(cur.next());
    }
    assert!(cur.try_delete());
    drop(cur);
    let items: Vec<u32> = list.iter().collect();
    assert_eq!(items, vec![0, 1, 2]);
    list.check_structure().unwrap();
}

#[test]
fn delete_all_items_returns_to_fig4_layout() {
    let mut list: List<u32> = (0..10).collect();
    loop {
        let mut cur = list.cursor();
        if cur.is_at_end() {
            break;
        }
        assert!(cur.try_delete());
    }
    assert!(list.is_empty());
    // The §3 theorem: no extra auxiliary nodes once all deletions complete.
    let report = list.aux_chain_report();
    assert_eq!(
        report.aux, 1,
        "empty list must be back to a single aux node"
    );
    assert_eq!(report.runs_ge2, 0);
    list.check_structure().unwrap();
}

#[test]
fn deleted_cell_remains_readable_through_cursor() {
    // Cell persistence (§2.2): a cursor visiting a deleted cell can still
    // read its contents and continue traversing.
    let list: List<String> = ["a", "b", "c"].into_iter().map(String::from).collect();
    let mut observer = list.cursor();
    assert!(observer.next()); // visiting "b"
    assert_eq!(observer.get().map(String::as_str), Some("b"));

    // Another cursor deletes "b".
    let mut deleter = list.cursor();
    while deleter.get().map(String::as_str) != Some("b") {
        assert!(deleter.next());
    }
    assert!(deleter.try_delete());
    drop(deleter);

    // The observer still reads the deleted value...
    assert_eq!(observer.get().map(String::as_str), Some("b"));
    // ...and can keep traversing to live items.
    assert!(observer.next());
    assert_eq!(observer.get().map(String::as_str), Some("c"));
    let items: Vec<String> = list.iter().collect();
    assert_eq!(items, vec!["a".to_string(), "c".to_string()]);
}

#[test]
fn cursor_invalidation_and_update() {
    let list: List<u32> = (0..3).collect();
    let mut a = list.cursor(); // visiting 0
    let mut b = list.cursor(); // visiting 0
    assert!(b.try_delete());
    drop(b);
    // `a` is now stale; try_delete must fail (its CAS expects the old
    // successor), and update must revalidate onto the new first item.
    assert!(!a.try_delete());
    a.update();
    assert_eq!(a.get(), Some(&1));
    assert!(a.try_delete(), "after update the delete must succeed");
}

#[test]
fn insert_failure_hands_back_prepared_pair() {
    let list: List<u32> = (0..3).collect();
    let mut a = list.cursor();
    let mut b = list.cursor();
    assert!(b.try_delete());
    drop(b);
    // `a` is stale: try_insert must fail and return the pair for reuse.
    let prepared = list.prepare_insert(99).unwrap();
    let prepared = match a.try_insert(prepared) {
        Ok(()) => panic!("insert through a stale cursor must fail"),
        Err(back) => back,
    };
    assert_eq!(*prepared.value(), 99);
    a.update();
    a.try_insert(prepared)
        .expect("valid cursor insert succeeds");
    let items: Vec<u32> = list.iter().collect();
    assert_eq!(items, vec![99, 1, 2]);
}

#[test]
fn dropping_unused_prepared_insert_reclaims_nodes() {
    let list: List<u32> = List::new();
    let live_before = list.mem_stats().live_nodes();
    let prepared = list.prepare_insert(7).unwrap();
    drop(prepared);
    assert_eq!(list.mem_stats().live_nodes(), live_before);
}

#[test]
fn capped_pool_reports_exhaustion() {
    let list: List<u32> = List::with_config(ArenaConfig::new().initial_capacity(8).max_nodes(8));
    let mut cur = list.cursor();
    // 3 nodes for the empty list; each item needs 2 → 2 items fit, the
    // third insert must fail cleanly.
    cur.insert(1).unwrap();
    cur.insert(2).unwrap();
    assert!(list.prepare_insert(3).is_err());
    // Deleting frees capacity again.
    cur.seek_first();
    assert!(cur.try_delete());
    drop(cur);
    assert!(list.prepare_insert(3).is_ok());
}

#[test]
fn seek_first_repositions() {
    let list: List<u32> = (0..4).collect();
    let mut cur = list.cursor();
    assert!(cur.next());
    assert!(cur.next());
    assert_eq!(cur.get(), Some(&2));
    cur.seek_first();
    assert_eq!(cur.get(), Some(&0));
}

#[test]
fn cloned_cursor_is_independent() {
    let list: List<u32> = (0..4).collect();
    let mut a = list.cursor();
    let mut b = a.clone();
    assert!(a.next());
    assert_eq!(a.get(), Some(&1));
    assert_eq!(b.get(), Some(&0), "clone keeps its own position");
    assert!(b.try_delete());
}

#[test]
fn stats_count_operations() {
    let list: List<u32> = List::new();
    let mut cur = list.cursor();
    cur.insert(1).unwrap();
    cur.update(); // a successful insert leaves the cursor invalid
    cur.insert(2).unwrap();
    cur.update();
    assert!(cur.try_delete());
    // The cursor batches its events; flush before sampling the counters.
    cur.flush_stats();
    let stats = list.stats();
    assert_eq!(stats.insert_successes, 2);
    assert_eq!(stats.delete_successes, 1);
    assert!(stats.updates >= 3);
    assert_eq!(
        stats.insert_retries(),
        0,
        "sequential inserts through a revalidated cursor never retry"
    );
}

#[test]
fn drop_reclaims_all_values() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Probe(#[allow(dead_code)] u32);
    impl Drop for Probe {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::Relaxed);
        }
    }
    {
        let list: List<Probe> = List::new();
        let mut cur = list.cursor();
        for i in 0..10 {
            cur.insert(Probe(i)).unwrap();
        }
        // Delete a few so some probes drop via deletion+release...
        cur.seek_first();
        assert!(cur.try_delete());
        cur.update();
        assert!(cur.try_delete());
        drop(cur);
        assert_eq!(DROPS.load(Ordering::Relaxed), 2);
        // ...and the rest drop when the list is dropped.
    }
    assert_eq!(DROPS.load(Ordering::Relaxed), 10);
}

#[test]
fn len_and_iter_agree() {
    let list: List<u32> = (0..37).collect();
    assert_eq!(list.len(), list.iter().count());
}

#[test]
fn memory_is_recycled_across_insert_delete_cycles() {
    let list: List<u32> = List::with_config(ArenaConfig::new().initial_capacity(16).max_nodes(16));
    for round in 0..100 {
        let mut cur = list.cursor();
        cur.insert(round).unwrap();
        cur.update();
        assert!(cur.try_delete());
    }
    // 100 cycles through a 16-node pool is only possible with recycling.
    assert_eq!(list.node_capacity(), 16);
    assert!(list.mem_stats().allocs >= 200);
}

#[test]
fn adjacent_stale_deletions_leave_no_garbage() {
    // The scenario that *looks* like it should leak: delete b through a
    // cursor whose pre_cell is a (so b.back_link -> a), then delete a.
    // DESIGN.md §1 note 3 argues reference cycles cannot form (the
    // deletion CAS severs the unique next-edge into the dying cell);
    // this test checks the argument end to end: counting alone reclaims
    // everything, and the defensive sweep finds nothing.
    let mut list: List<u32> = (0..2).collect(); // cells a=0, b=1

    {
        let mut at_b = list.cursor();
        assert!(at_b.next());
        assert_eq!(at_b.get(), Some(&1));
        let mut at_a = list.cursor();
        assert_eq!(at_a.get(), Some(&0));
        assert!(at_b.try_delete(), "delete b (back_link -> a)");
        assert!(at_a.try_delete(), "delete a");
    }
    assert!(list.is_empty());

    // Pure counting must have reclaimed every node already...
    assert_eq!(
        list.mem_stats().live_nodes(),
        3,
        "no garbage beyond the empty-list structure"
    );
    // ...so the defensive sweep finds nothing.
    assert_eq!(list.quiescent_collect(), 0);
    list.check_structure().unwrap();

    // And the reclaimed nodes are reusable.
    let mut cur = list.cursor();
    for i in 0..4 {
        cur.insert(i).unwrap();
        cur.update();
    }
    drop(cur);
    assert_eq!(list.len(), 4);
}

#[test]
fn stale_cursor_delete_after_predecessor_removed() {
    // A cursor positioned before its pre_cell was deleted can still
    // succeed: its pre_aux's link is intact, so the deletion CAS lands and
    // the back-link walk (Fig. 10 lines 7-11) recovers through the deleted
    // predecessor.
    let mut list: List<u32> = (0..3).collect(); // a=0, b=1, c=2
    let mut at_b = list.cursor();
    assert!(at_b.next()); // pre_cell = a, target = b

    // Delete a out from under at_b.
    let mut at_a = list.cursor();
    assert!(at_a.try_delete());
    drop(at_a);

    // at_b's pre_cell (a) is now deleted, but pre_aux.next == b still.
    assert!(at_b.try_delete(), "stale-pre_cell delete must succeed");
    drop(at_b);
    let items: Vec<u32> = list.iter().collect();
    assert_eq!(items, vec![2]);
    list.check_structure().unwrap();
    assert_eq!(list.quiescent_collect(), 0, "still no garbage");
    assert_eq!(list.mem_stats().live_nodes(), 3 + 2);
}

#[test]
fn quiescent_collect_on_clean_list_is_noop() {
    let mut list: List<u32> = (0..10).collect();
    assert_eq!(list.quiescent_collect(), 0);
    assert_eq!(list.len(), 10);
    list.check_structure().unwrap();
}

#[test]
fn retain_keeps_matching_items() {
    let mut list: List<u32> = (0..20).collect();
    let removed = list.retain(|v| v % 3 == 0);
    assert_eq!(removed, 13);
    let items: Vec<u32> = list.iter().collect();
    assert_eq!(items, vec![0, 3, 6, 9, 12, 15, 18]);
    list.check_structure().unwrap();
}

#[test]
fn retain_all_and_none() {
    let list: List<u32> = (0..5).collect();
    assert_eq!(list.retain(|_| true), 0);
    assert_eq!(list.len(), 5);
    assert_eq!(list.retain(|_| false), 5);
    assert!(list.is_empty());
}

#[test]
fn concurrent_retain_partitions_exactly() {
    // Two retains with complementary predicates: together they must
    // delete everything exactly once.
    use std::sync::atomic::{AtomicUsize, Ordering};
    for _ in 0..20 {
        let mut list: List<u32> = (0..128).collect();
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let list = &list;
            let total = &total;
            s.spawn(move || {
                total.fetch_add(list.retain(|v| v % 2 == 1), Ordering::Relaxed);
            });
            s.spawn(move || {
                total.fetch_add(list.retain(|v| v % 2 == 0), Ordering::Relaxed);
            });
        });
        // Each retain deletes its complement; both may race on the same
        // cell but try_delete arbitrates: every item dies exactly once.
        assert_eq!(total.load(Ordering::Relaxed), 128);
        assert!(list.is_empty());
        list.check_structure().unwrap();
    }
}

#[test]
fn refcount_audit_clean_after_sequential_ops() {
    let mut list: List<u32> = (0..32).collect();
    let mut cur = list.cursor();
    for _ in 0..10 {
        assert!(cur.try_delete());
        cur.update();
        cur.insert(99).unwrap();
        cur.update();
    }
    drop(cur);
    list.audit_refcounts().expect("counts must be exact");
}

#[test]
fn refcount_audit_clean_on_fresh_and_empty() {
    let mut list: List<u32> = List::new();
    list.audit_refcounts().unwrap();
    let mut cur = list.cursor();
    cur.insert(1).unwrap();
    cur.update();
    assert!(cur.try_delete());
    drop(cur);
    list.audit_refcounts().unwrap();
}

#[test]
fn into_iterator_for_ref_list() {
    let list: List<u32> = (0..5).collect();
    let mut sum = 0;
    for v in &list {
        sum += v;
    }
    assert_eq!(sum, 10);
}

#[test]
fn prepared_insert_can_move_threads() {
    let list: List<u32> = List::new();
    let prepared = list.prepare_insert(5).unwrap();
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut cur = list.cursor();
            cur.try_insert(prepared)
                .expect("insert from another thread");
        });
    });
    assert_eq!(list.iter().collect::<Vec<_>>(), vec![5]);
}
