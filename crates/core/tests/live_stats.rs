//! Regression tests for the stale-live-stats bug: cursors batch their
//! operation tallies in plain integers, and before the periodic
//! auto-flush they were published to [`List::stats`]/[`List::mem_stats`]
//! only when the cursor *dropped*. A monitoring thread sampling the
//! counters once a second against a long-lived cursor (the service
//! telemetry feed's exact access pattern) read values frozen at cursor
//! creation. These tests pin the fix: live counters must advance
//! **mid-operation**, while the cursor is still alive and working.

use valois_core::{List, Reclaimer};

/// Walks a long-lived cursor far past the auto-flush window and asserts
/// the shared counters advanced before the cursor drops.
fn live_stats_advance_mid_operation<R: Reclaimer>() {
    let list: List<u64, R> = (0..2048).collect();
    let ops_before = list.stats();
    let mem_before = list.mem_stats();

    let mut cur = list.cursor();
    for _ in 0..1500 {
        assert!(cur.next());
    }
    // The cursor is alive and holding its position; a live reader must
    // still see the traversal. The auto-flush window is 256 updates, so
    // at least 1500 - 255 steps are guaranteed visible.
    let live = list.stats().since(&ops_before);
    assert!(
        live.next_steps >= 1024,
        "live counters stale while cursor alive: only {} next_steps visible",
        live.next_steps
    );
    assert!(live.updates >= 1024, "updates stale: {}", live.updates);
    if R::COUNTED_READS {
        let mem_live = list.mem_stats().since(&mem_before);
        assert!(
            mem_live.safe_reads >= 1024,
            "protocol counters stale while cursor alive: {} safe_reads",
            mem_live.safe_reads
        );
    }
    assert!(cur.get().is_some(), "cursor still positioned on an item");

    // Drop publishes the remainder: totals now cover the whole walk.
    drop(cur);
    let total = list.stats().since(&ops_before);
    assert!(total.next_steps >= 1500, "lost steps: {}", total.next_steps);
}

/// Mutation counters advance live too: a cursor alternating inserts and
/// deletes past the flush window is visible before it drops.
fn live_mutation_counters_advance<R: Reclaimer>() {
    let list: List<u64, R> = List::new();
    let before = list.stats();
    let mut cur = list.cursor();
    for i in 0..400 {
        cur.insert(i).unwrap();
        cur.update();
        assert!(cur.try_delete());
        cur.update();
    }
    let live = list.stats().since(&before);
    assert!(
        live.insert_successes >= 256,
        "live insert counters stale: {}",
        live.insert_successes
    );
    assert!(
        live.delete_successes >= 256,
        "live delete counters stale: {}",
        live.delete_successes
    );
    drop(cur);
    let total = list.stats().since(&before);
    assert_eq!(total.insert_successes, 400);
    assert_eq!(total.delete_successes, 400);
}

/// `flush_stats` still forces everything out immediately (and resets the
/// auto-flush window rather than double-counting).
fn explicit_flush_still_exact<R: Reclaimer>() {
    let list: List<u64, R> = (0..64).collect();
    let before = list.stats();
    let mut cur = list.cursor();
    for _ in 0..10 {
        assert!(cur.next());
    }
    cur.flush_stats();
    assert_eq!(list.stats().since(&before).next_steps, 10);
    drop(cur);
    assert_eq!(
        list.stats().since(&before).next_steps,
        10,
        "drop after flush must not double-count"
    );
}

mod refcount {
    use valois_core::RefCount;

    #[test]
    fn live_stats_advance_mid_operation() {
        super::live_stats_advance_mid_operation::<RefCount>();
    }

    #[test]
    fn live_mutation_counters_advance() {
        super::live_mutation_counters_advance::<RefCount>();
    }

    #[test]
    fn explicit_flush_still_exact() {
        super::explicit_flush_still_exact::<RefCount>();
    }
}

mod epoch {
    use valois_core::Epoch;

    #[test]
    fn live_stats_advance_mid_operation() {
        super::live_stats_advance_mid_operation::<Epoch>();
    }

    #[test]
    fn live_mutation_counters_advance() {
        super::live_mutation_counters_advance::<Epoch>();
    }

    #[test]
    fn explicit_flush_still_exact() {
        super::explicit_flush_still_exact::<Epoch>();
    }
}
