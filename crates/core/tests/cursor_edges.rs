//! Cursor edge cases around concurrent `TryDelete`: a cursor parked at
//! the head or tail of the list while another thread deletes the very
//! cell it is visiting. The §5 protocol promises *cell persistence* — the
//! deleted cell's value stays readable through the stale cursor until it
//! repositions — and the instantaneous invariants
//! ([`List::check_invariants`]) must stay clean throughout.

use valois_core::List;

/// A cursor visiting the **head** cell keeps working after a concurrent
/// `TryDelete` removes that cell: the value persists until `update`, and
/// the cursor then lands on the new head.
#[test]
fn head_cursor_survives_concurrent_delete_of_target() {
    let mut list: List<u64> = (1..=3).collect();
    let mut c = list.cursor();
    c.seek_first();
    assert_eq!(c.get(), Some(&1));

    std::thread::scope(|s| {
        let list = &list;
        s.spawn(move || {
            let mut d = list.cursor();
            d.seek_first();
            // Fig. 13 retry loop: delete the head cell `1`.
            while d.get() == Some(&1) {
                if d.try_delete() {
                    break;
                }
                d.update();
            }
            list.check_invariants()
                .expect("invariants after head delete");
        });
    });

    // Cell persistence: the deleted cell is still visited and readable.
    assert_eq!(
        c.get(),
        Some(&1),
        "deleted cell must persist for its cursor"
    );
    list.check_invariants()
        .expect("invariants with a stale cursor alive");
    // Repositioning abandons the deleted cell and finds the new head.
    c.update();
    assert_eq!(c.get(), Some(&2));
    drop(c);

    assert_eq!(list.iter().collect::<Vec<u64>>(), vec![2, 3]);
    list.check_structure().unwrap();
    list.audit_refcounts().unwrap();
}

/// A cursor visiting the **tail** cell (the last cell before the end
/// position) survives a concurrent delete of that cell; after `update` it
/// sits at the end position.
#[test]
fn tail_cursor_survives_concurrent_delete_of_target() {
    let mut list: List<u64> = (1..=3).collect();
    let mut c = list.cursor();
    c.seek_first();
    while c.get() != Some(&3) {
        assert!(c.next(), "tail cell must be reachable");
    }

    std::thread::scope(|s| {
        let list = &list;
        s.spawn(move || {
            let mut d = list.cursor();
            d.seek_first();
            loop {
                match d.get() {
                    Some(&3) => {
                        if d.try_delete() {
                            break;
                        }
                        d.update();
                    }
                    Some(_) => assert!(d.next(), "walked past the tail"),
                    None => panic!("tail cell vanished without our delete"),
                }
            }
            list.check_invariants()
                .expect("invariants after tail delete");
        });
    });

    assert_eq!(
        c.get(),
        Some(&3),
        "deleted tail must persist for its cursor"
    );
    c.update();
    assert_eq!(c.get(), None, "cursor past the deleted tail is at the end");
    assert!(c.is_at_end());
    assert!(!c.try_delete(), "nothing to delete at the end position");
    drop(c);

    assert_eq!(list.iter().collect::<Vec<u64>>(), vec![1, 2]);
    list.check_structure().unwrap();
    list.audit_refcounts().unwrap();
}

/// Inserting through a cursor whose target was concurrently deleted: the
/// Fig. 12 retry loop must reposition and land the insertion exactly once.
#[test]
fn insert_through_cursor_with_deleted_target_lands_once() {
    let mut list: List<u64> = (1..=3).collect();
    let mut c = list.cursor();
    c.seek_first();
    assert!(c.next(), "position on the middle cell");
    assert_eq!(c.get(), Some(&2));

    std::thread::scope(|s| {
        let list = &list;
        s.spawn(move || {
            let mut d = list.cursor();
            d.seek_first();
            loop {
                match d.get() {
                    Some(&2) => {
                        if d.try_delete() {
                            break;
                        }
                        d.update();
                    }
                    Some(_) => assert!(d.next(), "walked past cell 2"),
                    None => panic!("cell 2 vanished without our delete"),
                }
            }
        });
    });

    // The cursor's target is gone; insert must retry via update and land.
    c.insert(99).expect("pool is uncapped");
    list.check_invariants()
        .expect("invariants after stale-cursor insert");
    drop(c);

    let mut items: Vec<u64> = list.iter().collect();
    items.sort_unstable();
    assert_eq!(items, vec![1, 3, 99]);
    list.check_structure().unwrap();
    list.audit_refcounts().unwrap();
}

/// Draining the whole list out from under a parked head cursor: every
/// reposition from the stale cursor must reach the end position cleanly.
#[test]
fn head_cursor_survives_full_concurrent_drain() {
    let mut list: List<u64> = (1..=16).collect();
    let mut c = list.cursor();
    c.seek_first();
    assert_eq!(c.get(), Some(&1));

    std::thread::scope(|s| {
        let list = &list;
        for _ in 0..2 {
            s.spawn(move || {
                let mut d = list.cursor();
                loop {
                    d.seek_first();
                    if d.is_at_end() {
                        break;
                    }
                    d.try_delete();
                }
            });
        }
        s.spawn(move || {
            for _ in 0..64 {
                list.check_invariants().expect("invariants mid-drain");
            }
        });
    });

    c.update();
    assert!(c.is_at_end(), "drained list leaves only the end position");
    drop(c);

    assert!(list.is_empty());
    list.check_structure().unwrap();
    list.audit_refcounts().unwrap();
}
