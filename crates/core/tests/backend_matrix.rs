//! Backend-parameterized list battery: every test body is generic over
//! the arena's [`Reclaimer`] and instantiated twice — once per backend —
//! by the `backend_matrix!` macro at the bottom. A regression in either
//! backend (or in the shared cursor/list code above the reclamation
//! boundary) fails the matching arm by name (`refcount::…` /
//! `epoch::…`).
//!
//! Two deliberate asymmetries, both consequences of the backend
//! contract (docs/DESIGN.md "Choosing a reclamation backend"):
//!
//! * exact refcount audits (`audit_refcounts`) run only when
//!   `R::COUNTED_READS` — under `Epoch`, traversal holds no counts, so
//!   per-node counts are not meaningful to audit mid-structure (link
//!   counts are still exercised by `check_invariants_now`);
//! * cursors never cross threads: `Cursor<'_, T, Epoch>` is `!Send`
//!   (its pin lives in the creating thread's slot), so every thread
//!   opens its own cursors. The refcount-only clone-handoff pattern is
//!   covered by `concurrency.rs::many_cursors_on_same_position`.
//!
//! The `smoke_` pair is Miri-sized (tens of operations, two threads):
//! `cargo +nightly miri test -p valois-core smoke_` drives the epoch
//! pin/retire/drain path under the interpreter alongside the counted
//! protocol's existing smoke set.

use valois_core::{ArenaConfig, List, Reclaimer};

fn thread_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(4, 8)
}

/// Quiesces `list` and runs the checks that are valid for the backend:
/// structure always; exact refcount audit only where reads are counted.
fn quiesce_and_check<R: Reclaimer>(list: &mut List<u64, R>) {
    list.quiescent_collect();
    list.check_structure().unwrap();
    if R::COUNTED_READS {
        list.flush_node_caches();
        list.audit_refcounts().unwrap();
    }
}

fn concurrent_inserts_lose_nothing<R: Reclaimer>() {
    let mut list: List<u64, R> = List::new();
    let threads = thread_count() as u64;
    let per = 200u64;
    std::thread::scope(|s| {
        let list = &list;
        for t in 0..threads {
            s.spawn(move || {
                let mut c = list.cursor();
                for i in 0..per {
                    c.insert(t * per + i).unwrap();
                    if i % 16 == 0 {
                        c.seek_first();
                    }
                }
            });
        }
    });
    let mut items: Vec<u64> = list.iter().collect();
    items.sort_unstable();
    assert_eq!(items, (0..threads * per).collect::<Vec<u64>>());
    quiesce_and_check(&mut list);
}

fn insert_delete_churn_is_conserved<R: Reclaimer>() {
    // Each thread owns a disjoint key range and inserts/deletes within
    // it; whatever survives must be exactly the keys whose final round
    // was an insert.
    let mut list: List<u64, R> = List::new();
    let threads = thread_count() as u64;
    let keys_per = 32u64;
    let rounds = 40u64;
    std::thread::scope(|s| {
        let list = &list;
        for t in 0..threads {
            s.spawn(move || {
                for round in 0..rounds {
                    let mut c = list.cursor();
                    for k in 0..keys_per {
                        let key = t * keys_per + k;
                        if round % 2 == 0 {
                            c.insert(key).unwrap();
                        } else {
                            // Delete `key`, scanning from the front.
                            c.seek_first();
                            loop {
                                match c.get() {
                                    Some(&v) if v == key => {
                                        if c.try_delete() {
                                            break;
                                        }
                                        c.resume();
                                    }
                                    Some(_) => {
                                        if !c.next() {
                                            panic!("key {key} not found for delete");
                                        }
                                    }
                                    None => {
                                        if !c.next() {
                                            panic!("key {key} not found for delete");
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            });
        }
    });
    // rounds is even, so the last completed round per key was a delete.
    assert!(
        list.is_empty(),
        "even round count must leave the list empty, got {} items",
        list.len()
    );
    quiesce_and_check(&mut list);
}

fn readers_never_see_torn_values<R: Reclaimer>() {
    // Values are (x, !x) pairs; a reader observing a half-written or
    // reclaimed-and-reused cell would see a pair that fails the check.
    let mut list: List<(u64, u64), R> = List::new();
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let list = &list;
        let stop = &stop;
        s.spawn(move || {
            for i in 0..3_000u64 {
                let mut c = list.cursor();
                c.insert((i, !i)).unwrap();
                c.seek_first();
                if c.get().is_some() {
                    c.try_delete();
                }
            }
            stop.store(true, std::sync::atomic::Ordering::Release);
        });
        for _ in 0..2 {
            s.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    list.for_each(|&(a, b)| {
                        assert_eq!(b, !a, "torn or recycled-under-read value");
                    });
                }
            });
        }
    });
    let mut list2: List<(u64, u64), R> = List::new();
    std::mem::swap(&mut list2, &mut list);
    list2.quiescent_collect();
    list2.check_structure().unwrap();
}

fn capped_pool_recycles_through_churn<R: Reclaimer>() {
    // A pool far smaller than the op count (1600 ops × ~2 nodes against
    // 1024): every round's cells must come back through the backend's
    // reclamation path (Reclaim cascade for refcount; retire → grace
    // period → drain for epoch). The pool is sized with epoch headroom:
    // the grace period legitimately parks up to about two epochs' worth
    // of retirements (~2 × COLLECT_EVERY per thread) in limbo.
    let mut list: List<u64, R> =
        List::with_config(ArenaConfig::new().initial_capacity(1024).max_nodes(1024));
    let threads = 4u64;
    let skipped = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        let list = &list;
        let skipped = &skipped;
        for t in 0..threads {
            s.spawn(move || {
                'ops: for i in 0..400u64 {
                    // Transient exhaustion is legal mid-churn (per-thread
                    // caches and in-flight retirements park nodes). The
                    // service contract applies: close this operation's
                    // protection window, shed (magazines + bounded limbo
                    // drain), and retry before giving up on the op. The
                    // yield matters on small machines: an epoch advance
                    // fails while any descheduled thread sits pinned, so
                    // give that thread a chance to run and unpin.
                    let mut attempts = 0;
                    let mut c = loop {
                        let mut c = list.cursor();
                        if c.insert(t * 1_000_000 + i).is_ok() {
                            break c;
                        }
                        drop(c);
                        attempts += 1;
                        if attempts > 16 {
                            skipped.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            continue 'ops;
                        }
                        list.shed_memory();
                        std::thread::yield_now();
                    };
                    c.update();
                    while !c.try_delete() {
                        c.resume();
                    }
                }
            });
        }
    });
    assert!(list.is_empty());
    assert_eq!(list.node_capacity(), 1024, "capped pool must not grow");
    let skipped = skipped.load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        skipped < threads * 200,
        "reclamation must keep the pool usable: {skipped}/{} ops skipped",
        threads * 400
    );
    quiesce_and_check(&mut list);
}

fn drop_with_leftover_items_reclaims_everything<R: Reclaimer>() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Probe(#[allow(dead_code)] u64);
    impl Drop for Probe {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::Relaxed);
        }
    }
    DROPS.store(0, Ordering::Relaxed);
    {
        let list: List<Probe, R> = List::new();
        let mut c = list.cursor();
        for i in 0..50 {
            c.insert(Probe(i)).unwrap();
        }
        drop(c);
        // Half deleted (their values drop through reclamation), half
        // left for the teardown cascade — including, under epoch, any
        // cells still parked in limbo at drop time.
        let mut c = list.cursor();
        c.seek_first();
        for _ in 0..25 {
            assert!(c.try_delete());
            c.update();
        }
        drop(c);
    }
    assert_eq!(
        DROPS.load(Ordering::Relaxed),
        50,
        "every value must drop exactly once across delete and teardown"
    );
}

fn smoke_backend_roundtrip<R: Reclaimer>() {
    // Miri-sized: one capped pool, one recycle, one two-thread race.
    let mut list: List<u64, R> =
        List::with_config(ArenaConfig::new().initial_capacity(8).max_nodes(8));
    for round in 0..3u64 {
        let mut c = list.cursor();
        c.insert(round).unwrap();
        c.update();
        assert_eq!(c.get(), Some(&round));
        assert!(c.try_delete());
        drop(c);
        list.quiescent_collect();
        assert!(list.is_empty());
    }
    // The smallest contended workload, on its own grow-on-demand list.
    let mut race: List<u64, R> = List::new();
    std::thread::scope(|s| {
        let race = &race;
        for t in 0..2u64 {
            s.spawn(move || {
                let mut c = race.cursor();
                for i in 0..3 {
                    c.insert(t * 3 + i).unwrap();
                    c.update();
                }
            });
        }
    });
    let mut items: Vec<u64> = race.iter().collect();
    items.sort_unstable();
    assert_eq!(items, (0..6).collect::<Vec<u64>>());
    quiesce_and_check(&mut race);
}

/// Instantiates each generic test body once per backend, as
/// `refcount::<name>` and `epoch::<name>`.
macro_rules! backend_matrix {
    ($($name:ident),+ $(,)?) => {
        mod refcount {
            $(
                #[test]
                fn $name() {
                    super::$name::<valois_core::RefCount>();
                }
            )+
        }
        mod epoch {
            $(
                #[test]
                fn $name() {
                    super::$name::<valois_core::Epoch>();
                }
            )+
        }
    };
}

backend_matrix!(
    concurrent_inserts_lose_nothing,
    insert_delete_churn_is_conserved,
    readers_never_see_torn_values,
    capped_pool_recycles_through_churn,
    drop_with_leftover_items_reclaims_everything,
    smoke_backend_roundtrip,
);

/// The epoch arm must actually exercise the epoch machinery — pins,
/// retirements, and grace-period frees all nonzero after churn.
#[test]
fn epoch_arm_reports_epoch_traffic() {
    let mut list: List<u64, valois_core::Epoch> = List::new();
    let mut c = list.cursor();
    for i in 0..32 {
        c.insert(i).unwrap();
    }
    drop(c);
    list.retain(|&v| v % 2 == 0);
    list.quiescent_collect();
    let stats = list.mem_stats();
    assert!(stats.epoch_pins > 0, "cursors must pin");
    assert!(
        stats.epoch_retires >= 16,
        "deletes must retire through limbo"
    );
    assert!(
        stats.epoch_frees >= 16,
        "quiescent collect must drain the limbo list, freed only {}",
        stats.epoch_frees
    );
    assert_eq!(
        stats.epoch_limbo_depth, 0,
        "no garbage parked at quiescence"
    );
}
