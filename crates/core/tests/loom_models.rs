//! Model-checked verification of the three core Valois protocols
//! (`--cfg loom` only). The scheduler in `valois_sync::shim::sched`
//! exhaustively explores thread interleavings (sequentially-consistent,
//! preemption-bounded), so every assertion below holds on *every*
//! explored schedule, not just the ones the OS happens to produce.
//!
//! 1. SafeRead/Release with the claim bit (Figs. 15-18): a reader racing
//!    an unlink + reclaim + re-allocation never observes a freed or
//!    retyped cell while it holds a counted reference.
//! 2. Free-list Alloc/Reclaim (Figs. 17-18): concurrent pop/push never
//!    double-allocates a cell and never loses one.
//! 3. TryInsert/TryDelete through auxiliary nodes (Figs. 9-10): a
//!    concurrent insert and delete at the same position preserve the §3
//!    invariant chain (strict cell/aux alternation, exact refcounts).
//! 4. `Cursor::resume` racing deletions of its anchor *and* of the
//!    predecessor the back-walk resumes to: the walk must fall back
//!    further (never loop, never leak a count), and the resumed
//!    traversal must still observe every continuously-present cell
//!    (invariant I10).
//!
//! Run with:
//! `RUSTFLAGS="--cfg loom" cargo test -p valois-core --test loom_models`
#![cfg(loom)]

use std::ptr;
use std::sync::Arc;

use valois_core::List;
use valois_mem::{Arena, ArenaConfig, Link, Managed, NodeHeader, ReclaimedLinks};
use valois_sync::shim::atomic::{AtomicUsize, Ordering};
use valois_sync::shim::{thread, Builder};

/// Tag values tracking a slot's life cycle for the reader model.
const TAG_FREE: usize = 0;
const TAG_CELL: usize = 1;
const TAG_RETYPED: usize = 2;

/// Minimal managed node: one drainable link (doubles as the free-list
/// link, exactly like the paper's cells) and an observable `tag` that
/// reclamation resets to [`TAG_FREE`].
#[derive(Default)]
struct Slot {
    header: NodeHeader,
    link: Link<Slot>,
    tag: AtomicUsize,
}

impl Managed for Slot {
    fn header(&self) -> &NodeHeader {
        &self.header
    }
    fn free_link(&self) -> &Link<Self> {
        &self.link
    }
    fn drain_links(&self) -> ReclaimedLinks<Self> {
        let mut links = ReclaimedLinks::new();
        links.push(self.link.swap(ptr::null_mut()));
        // The slot is dead: anyone who can still see a non-FREE tag is
        // holding a pointer the protocol should have protected.
        self.tag.store(TAG_FREE, Ordering::Release);
        links
    }
    fn reset_for_alloc(&self) {
        self.link.write(ptr::null_mut());
    }
}

struct SlotCtx {
    arena: Arena<Slot>,
    root: Link<Slot>,
}

fn capped_slot_arena(cap: usize) -> Arena<Slot> {
    let arena = Arena::with_config(ArenaConfig::new().initial_capacity(cap).max_nodes(cap));
    // Force the (mutex-guarded) initial segment growth here, while the
    // model is still single-threaded: the threads below must contend on
    // the lock-free protocol paths only.
    let warm = arena.alloc().expect("warm-up alloc within cap");
    unsafe { arena.release(warm) };
    arena
}

/// Model 1 — SafeRead vs. unlink + reclaim + re-allocation.
///
/// Thread A SafeReads the shared root; thread B swings the root to null
/// (dropping the root's count) and then tries to re-allocate the cell
/// and retype it. On every interleaving, if A's SafeRead returns the
/// cell, the cell must still carry [`TAG_CELL`] for as long as A holds
/// its counted reference: B's alloc can only succeed after the count
/// reaches zero, which requires A's Release. A claim bit that is set
/// while A holds the node would mean reclamation overtook a live
/// reference — the exact bug class Figs. 15-16 exist to prevent.
#[test]
fn safe_read_never_observes_reclaimed_cell() {
    let explored = Builder::new().check(|| {
        let ctx = Arc::new(SlotCtx {
            arena: capped_slot_arena(1),
            root: Link::null(),
        });
        // Publish one live cell through the root.
        let x = ctx.arena.alloc().expect("capacity 1");
        unsafe {
            (*x).tag.store(TAG_CELL, Ordering::Release);
            ctx.arena.store_link(&ctx.root, x);
            ctx.arena.release(x);
        }

        let reader = {
            let ctx = Arc::clone(&ctx);
            thread::spawn(move || unsafe {
                let p = ctx.arena.safe_read(&ctx.root);
                if !p.is_null() {
                    // While we hold a counted reference the cell cannot be
                    // freed (tag -> FREE) or recycled (tag -> RETYPED).
                    let t1 = (*p).tag.load(Ordering::Acquire);
                    assert_eq!(t1, TAG_CELL, "reader observed a dead cell");
                    assert!(
                        !(*p).header.claim_is_set(),
                        "claim bit set under a live reference"
                    );
                    let t2 = (*p).tag.load(Ordering::Acquire);
                    assert_eq!(t2, TAG_CELL, "cell recycled under a live reference");
                    ctx.arena.release(p);
                }
            })
        };

        let deleter = {
            let ctx = Arc::clone(&ctx);
            thread::spawn(move || unsafe {
                // Unlink the cell from the root (releases the root's count).
                let x = ctx.arena.safe_read(&ctx.root);
                if !x.is_null() {
                    let swung = ctx.arena.swing(&ctx.root, x, ptr::null_mut());
                    assert!(swung, "only writer of the root");
                    ctx.arena.release(x);
                }
                // Recycle attempt: succeeds only once every counted
                // reference is gone. Failure means the reader still holds
                // the sole cell — equally legal.
                if let Ok(q) = ctx.arena.alloc() {
                    (*q).tag.store(TAG_RETYPED, Ordering::Release);
                    ctx.arena.release(q);
                }
            })
        };

        reader.join().unwrap();
        deleter.join().unwrap();

        // Conservation: all references released, so the single cell is
        // allocatable again and arrives reset.
        let q = ctx.arena.alloc().expect("cell returned to the free list");
        unsafe {
            assert_eq!((*q).tag.load(Ordering::Acquire), TAG_FREE);
            ctx.arena.release(q);
        }
        assert_eq!(ctx.arena.live_nodes(), 0);
    });
    assert!(explored > 1, "model must branch, explored {explored}");
}

/// Model 2 — free-list Alloc/Reclaim: no double-alloc, no lost cells.
///
/// Two threads pop from a two-cell free list, brand their cell, verify
/// the brand survives (a double allocation would let the other thread
/// overwrite it), and push it back. Afterwards the pool must hold
/// exactly two distinct cells — none lost, none duplicated.
#[test]
fn freelist_alloc_reclaim_conserves_cells() {
    let explored = Builder::new().check(|| {
        let ctx = Arc::new(SlotCtx {
            arena: capped_slot_arena(2),
            root: Link::null(),
        });

        let mut handles = Vec::new();
        for id in 1..=2usize {
            let ctx = Arc::clone(&ctx);
            handles.push(thread::spawn(move || unsafe {
                let p = ctx.arena.alloc().expect("two cells for two threads");
                (*p).tag.store(id, Ordering::Release);
                let seen = (*p).tag.load(Ordering::Acquire);
                assert_eq!(seen, id, "double allocation: cell branded by both threads");
                ctx.arena.release(p);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        // Conservation: exactly two distinct cells remain allocatable.
        let a = ctx.arena.alloc().expect("first cell conserved");
        let b = ctx.arena.alloc().expect("second cell conserved");
        assert_ne!(a, b, "free list duplicated a cell");
        assert!(ctx.arena.alloc().is_err(), "free list grew a phantom cell");
        unsafe {
            ctx.arena.release(a);
            ctx.arena.release(b);
        }
        assert_eq!(ctx.arena.live_nodes(), 0);
    });
    assert!(explored > 1, "model must branch, explored {explored}");
}

/// Model 3 — TryInsert racing TryDelete through auxiliary nodes.
///
/// The list starts as `[10]`. Thread A inserts `5` at the first
/// position; thread B deletes the cell `10` — the same neighbourhood, so
/// the Fig. 9 insertion CAS and the Fig. 10 deletion CAS contend for
/// `pre_aux^.next`. On every interleaving the final list must be exactly
/// `[5]`, the §3 invariant chain (strict cell/aux alternation between
/// the dummies) must hold, and the refcounts must be exact.
#[test]
fn try_insert_vs_try_delete_preserves_invariant_chain() {
    let explored = Builder::new().preemption_bound(2).check(|| {
        let list: Arc<List<u64>> = Arc::new(List::with_config(
            ArenaConfig::new().initial_capacity(16).max_nodes(16),
        ));
        list.cursor().insert(10).expect("seed cell");

        let inserter = {
            let list = Arc::clone(&list);
            thread::spawn(move || {
                // Fig. 12 retry loop: prepare once, CAS until it lands.
                list.cursor().insert(5).expect("pool sized for both ops");
            })
        };

        let deleter = {
            let list = Arc::clone(&list);
            thread::spawn(move || {
                let mut c = list.cursor();
                loop {
                    match c.get() {
                        Some(&10) => {
                            // Fig. 13 retry: a failed TryDelete means a
                            // concurrent op invalidated the cursor.
                            if c.try_delete() {
                                break;
                            }
                            c.update();
                        }
                        Some(_) => {
                            // The inserter only adds cells *before* 10, so
                            // walking forward must reach it.
                            assert!(c.next(), "walked past cell 10");
                        }
                        None => panic!("cell 10 vanished without our delete"),
                    }
                }
            })
        };

        inserter.join().unwrap();
        deleter.join().unwrap();

        let mut list = Arc::try_unwrap(list).expect("all threads joined");
        if let Err(e) = list.check_structure() {
            panic!("§3 invariant chain: {e}\nchain: {}", list.dump_chain());
        }
        list.audit_refcounts().expect("exact counts");
        assert_eq!(list.iter().collect::<Vec<u64>>(), vec![5]);
        // After collecting the deleted cell's residue the arena must hold
        // exactly the quiescent shape: 3 dummies/roots + 2 per live cell.
        list.quiescent_collect();
        list.check_structure()
            .expect("§3 invariant chain after collect");
        assert_eq!(list.mem_stats().live_nodes(), 3 + 2);
    });
    assert!(explored > 1, "model must branch, explored {explored}");
}

/// Model 4 — resume-from-backlink with the resumed-to predecessor itself
/// deleted mid-resume.
///
/// The list starts as `[10, 20, 30]`. Thread A deletes `20` (its cursor
/// anchored at `10`), thread B deletes `10` — so A's retry/recovery
/// back-walk can land on a predecessor that B deletes under it. Thread C
/// advances a cursor to `30` (anchor `20`, soon deleted by A), calls
/// `resume`, and must still reach `30`: it is continuously present, so
/// by I10 no interleaving of the back-walks may skip it, loop, or leak
/// a count (the post-join audit checks exactness).
#[test]
fn resume_survives_predecessor_deleted_mid_resume() {
    let explored = Builder::new().preemption_bound(2).check(|| {
        let list: Arc<List<u64>> = Arc::new(List::with_config(
            ArenaConfig::new().initial_capacity(16).max_nodes(16),
        ));
        for k in [30, 20, 10] {
            list.cursor().insert(k).expect("seed cells");
        }

        let delete = |key: u64| {
            let list = Arc::clone(&list);
            thread::spawn(move || {
                let mut c = list.cursor();
                loop {
                    match c.get() {
                        Some(&k) if k == key => {
                            if c.try_delete() {
                                break;
                            }
                            // The other deleter may have removed our
                            // anchor: back_link-guided retry.
                            c.resume();
                        }
                        Some(_) => assert!(c.next(), "walked past the key"),
                        // Only this thread deletes `key`, so by I10 the
                        // walk cannot reach the end without finding it.
                        None => panic!("cell {key} vanished without our delete"),
                    }
                }
            })
        };
        let deleter_20 = delete(20);
        let deleter_10 = delete(10);

        let resumer = {
            let list = Arc::clone(&list);
            thread::spawn(move || {
                let mut c = list.cursor();
                // Position at 30 (anchor: whatever precedes it right now).
                while c.get() != Some(&30) {
                    assert!(c.next(), "30 is never deleted");
                }
                // Resume after the anchor may have died — and keep
                // resuming: 30 stays continuously present, so every
                // re-walk must find it again (I10).
                for _ in 0..2 {
                    c.resume();
                    while c.get() != Some(&30) {
                        assert!(c.next(), "resumed cursor lost cell 30");
                    }
                }
            })
        };

        deleter_20.join().unwrap();
        deleter_10.join().unwrap();
        resumer.join().unwrap();

        let mut list = Arc::try_unwrap(list).expect("all threads joined");
        if let Err(e) = list.check_structure() {
            panic!("§3 invariant chain: {e}\nchain: {}", list.dump_chain());
        }
        list.audit_refcounts()
            .expect("exact counts — no leaked resume");
        assert_eq!(list.iter().collect::<Vec<u64>>(), vec![30]);
        list.quiescent_collect();
        list.check_structure()
            .expect("§3 invariant chain after collect");
        assert_eq!(list.mem_stats().live_nodes(), 3 + 2);
    });
    assert!(explored > 1, "model must branch, explored {explored}");
}
