//! Concurrent behaviour of the §3 list: the Fig. 2/Fig. 3 hazards must not
//! occur, the §3 auxiliary-chain theorem must hold at quiescence, and the
//! §5 memory protocol must keep counts exact under churn.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use valois_core::{ArenaConfig, List};

fn thread_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().clamp(4, 8))
        .unwrap_or(4)
}

#[test]
fn concurrent_inserts_lose_nothing() {
    // The Fig. 2 hazard: an insert concurrent with structural changes being
    // lost. Every inserted value must be present afterwards.
    let mut list: List<u64> = List::new();
    let threads = thread_count() as u64;
    let per_thread = 500u64;
    std::thread::scope(|s| {
        let list = &list;
        for t in 0..threads {
            s.spawn(move || {
                let mut cur = list.cursor();
                for i in 0..per_thread {
                    cur.insert(t * per_thread + i).unwrap();
                    cur.update();
                }
            });
        }
    });
    let mut items: Vec<u64> = list.iter().collect();
    items.sort_unstable();
    let expected: Vec<u64> = (0..threads * per_thread).collect();
    assert_eq!(items, expected, "no insert may be lost (Fig. 2 hazard)");
    list.check_structure().unwrap();
}

#[test]
fn concurrent_adjacent_deletes_do_not_undo_each_other() {
    // The Fig. 3 hazard: concurrent deletion of adjacent cells resurrecting
    // one of them. Threads repeatedly delete the first item; every item
    // must be deleted exactly once, and nothing may reappear.
    for _ in 0..20 {
        let n = 64u64;
        let mut list: List<u64> = (0..n).collect();
        let deleted = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let list = &list;
            let deleted = &deleted;
            let done = &done;
            for _ in 0..4 {
                s.spawn(move || {
                    let mut cur = list.cursor();
                    loop {
                        cur.seek_first();
                        if cur.is_at_end() {
                            break;
                        }
                        if cur.try_delete() {
                            deleted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    done.store(true, Ordering::Release);
                });
            }
            // Live checker: the instantaneous §3/§5 invariants must hold
            // at every sampled moment of the delete storm.
            s.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    list.check_invariants().expect("invariants mid-deletes");
                }
            });
        });
        assert_eq!(
            deleted.load(Ordering::Relaxed),
            n,
            "every item deleted exactly once (Fig. 3 hazard)"
        );
        assert!(list.is_empty());
        list.check_structure().unwrap();
    }
}

#[test]
fn interleaved_insert_delete_churn_is_conserved() {
    // Mixed workload: inserters append values, deleters remove from the
    // front. inserted == deleted + remaining at the end.
    let mut list: List<u64> = List::new();
    let inserted = AtomicU64::new(0);
    let deleted = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let rounds = 2_000u64;
    std::thread::scope(|s| {
        let list = &list;
        let inserted = &inserted;
        let deleted = &deleted;
        let done = &done;
        for t in 0..3u64 {
            s.spawn(move || {
                let mut cur = list.cursor();
                for i in 0..rounds {
                    cur.insert(t * rounds + i).unwrap();
                    inserted.fetch_add(1, Ordering::Relaxed);
                    cur.update();
                }
                done.store(true, Ordering::Release);
            });
        }
        for _ in 0..2 {
            s.spawn(move || {
                let mut cur = list.cursor();
                for _ in 0..rounds {
                    cur.seek_first();
                    if !cur.is_at_end() && cur.try_delete() {
                        deleted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // Live checker: sample the instantaneous §3/§5 invariants while
        // the insert/delete churn is in full flight.
        s.spawn(move || {
            while !done.load(Ordering::Acquire) {
                list.check_invariants().expect("invariants mid-churn");
            }
        });
    });
    let remaining = list.len() as u64;
    assert_eq!(
        inserted.load(Ordering::Relaxed),
        deleted.load(Ordering::Relaxed) + remaining,
        "conservation: inserted = deleted + remaining"
    );
    list.check_structure().unwrap();
}

#[test]
fn aux_chain_theorem_holds_at_quiescence() {
    // §3 theorem: chains of ≥2 auxiliary nodes exist only while a TryDelete
    // is in progress. After all threads join, no chains may remain.
    for _ in 0..10 {
        let mut list: List<u64> = (0..128).collect();
        std::thread::scope(|s| {
            let list = &list;
            for t in 0..4u64 {
                s.spawn(move || {
                    let mut cur = list.cursor();
                    // Delete every item we can reach with parity t%2 to
                    // force adjacent concurrent deletions.
                    loop {
                        let mut deleted_any = false;
                        cur.seek_first();
                        loop {
                            let at = cur.get().copied();
                            match at {
                                Some(v) if v % 4 == t => {
                                    if cur.try_delete() {
                                        deleted_any = true;
                                    }
                                    cur.update();
                                }
                                Some(_) => {
                                    if !cur.next() {
                                        break;
                                    }
                                }
                                None => break,
                            }
                        }
                        if !deleted_any {
                            break;
                        }
                    }
                });
            }
        });
        assert!(list.is_empty(), "all items parity-deleted");
        let report = list.aux_chain_report();
        assert_eq!(
            report.runs_ge2, 0,
            "no auxiliary chains after deletions complete (§3 theorem)"
        );
        assert_eq!(report.aux, 1, "empty list has exactly one auxiliary node");
        list.check_structure().unwrap();
    }
}

#[test]
fn reference_counts_are_exact_after_churn() {
    // After a heavy mixed run with all cursors dropped, every remaining
    // node is either a live list node or free; quiescent_collect must find
    // little-or-no cycle garbage, and dropping the list must reclaim
    // every node (checked via live_nodes()==0 on a fresh re-check).
    let mut list: List<u64> = List::with_config(ArenaConfig::new().initial_capacity(4096));
    std::thread::scope(|s| {
        let list = &list;
        for t in 0..thread_count() as u64 {
            s.spawn(move || {
                let mut cur = list.cursor();
                for i in 0..2_000u64 {
                    match i % 3 {
                        0 | 1 => {
                            cur.insert(t * 10_000 + i).unwrap();
                            cur.update();
                        }
                        _ => {
                            cur.seek_first();
                            if !cur.is_at_end() {
                                cur.try_delete();
                            }
                        }
                    }
                }
            });
        }
    });
    let live_items = list.len() as u64;
    let collected = list.quiescent_collect();
    // Live nodes = dummies(2) + one aux per item + cells + trailing aux
    // structure; exactly: 3 + 2*items after collection.
    assert_eq!(
        list.mem_stats().live_nodes(),
        3 + 2 * live_items,
        "after cycle collection ({collected} collected), live nodes must \
         be exactly the reachable structure"
    );
    list.check_structure().unwrap();
    list.audit_refcounts()
        .expect("every node's count equals its in-degree after churn");
}

#[test]
fn nodes_return_to_free_list_with_exact_counts() {
    // The leak test for the batching layers: after mixed
    // insert/delete/traverse stress, deleting everything and flushing the
    // per-thread magazines must return EVERY node to the free structure
    // with a count of exactly 1 — the free list's single incoming-link
    // count. A node parked forever in a magazine, an undrained deferred
    // release, or a leaked/double count all fail the audit.
    let mut list: List<u64> = List::with_config(ArenaConfig::new().initial_capacity(512));
    std::thread::scope(|s| {
        let list = &list;
        for t in 0..thread_count() as u64 {
            s.spawn(move || {
                let mut cur = list.cursor();
                for i in 0..1_500u64 {
                    match i % 4 {
                        0 | 1 => {
                            cur.insert(t * 10_000 + i).unwrap();
                            cur.update();
                        }
                        2 => {
                            // Traverse a stretch (exercises the deferred
                            // hop-release path).
                            let mut hops = 0;
                            while cur.next() && hops < 32 {
                                hops += 1;
                            }
                            cur.seek_first();
                        }
                        _ => {
                            if !cur.is_at_end() {
                                cur.try_delete();
                            }
                            cur.update();
                        }
                    }
                }
                // Cursor drop drains its deferred buffer and flushes its
                // tallies.
            });
        }
    });
    // Drain the structure completely, then collect back-link cycle garbage.
    list.retain(|_| false);
    assert_eq!(list.len(), 0);
    list.quiescent_collect();
    // Pull every node parked in thread magazines back to the global list.
    list.flush_node_caches();
    assert_eq!(
        list.mem_stats().live_nodes(),
        3,
        "only the empty skeleton (2 dummies + 1 aux) stays checked out"
    );
    list.check_structure().unwrap();
    list.check_invariants_now().unwrap();
    list.audit_refcounts().expect(
        "every free node must carry exactly its free-structure \
         incoming-link count",
    );
}

#[test]
fn concurrent_readers_never_see_torn_values() {
    // Values are (x, !x) pairs; any torn read or use-after-free would break
    // the invariant.
    let list: List<(u64, u64)> = List::new();
    let stop = AtomicU64::new(0);
    std::thread::scope(|s| {
        let list = &list;
        let stop = &stop;
        for t in 0..2u64 {
            s.spawn(move || {
                let mut cur = list.cursor();
                for i in 0..3_000u64 {
                    let v = t * 3_000 + i;
                    cur.insert((v, !v)).unwrap();
                    cur.update();
                    // Keep the list small: delete from the front.
                    if i % 2 == 0 {
                        cur.seek_first();
                        if !cur.is_at_end() {
                            cur.try_delete();
                        }
                    }
                }
                stop.fetch_add(1, Ordering::Release);
            });
        }
        for _ in 0..3 {
            s.spawn(move || {
                while stop.load(Ordering::Acquire) < 2 {
                    list.for_each(|&(a, b)| {
                        assert_eq!(b, !a, "torn or dangling value observed");
                    });
                }
            });
        }
    });
}

#[test]
fn many_cursors_on_same_position() {
    // All cursors are clones targeting the same cell (created before any
    // thread runs); exactly one try_delete may win.
    for _ in 0..50 {
        let list: List<u64> = (0..4).collect();
        let wins = AtomicU64::new(0);
        let shared = list.cursor();
        let cursors: Vec<_> = (0..6).map(|_| shared.clone()).collect();
        drop(shared);
        std::thread::scope(|s| {
            let wins = &wins;
            for mut cur in cursors {
                s.spawn(move || {
                    if cur.try_delete() {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 1, "exactly one deleter wins");
        assert_eq!(list.len(), 3);
    }
}

#[test]
fn capped_pool_under_concurrency_never_over_allocates() {
    let list: List<u64> = List::with_config(ArenaConfig::new().initial_capacity(64).max_nodes(64));
    std::thread::scope(|s| {
        let list = &list;
        for _ in 0..4 {
            s.spawn(move || {
                let mut cur = list.cursor();
                for i in 0..1_000u64 {
                    if cur.insert(i).is_ok() {
                        cur.update();
                    }
                    cur.seek_first();
                    if !cur.is_at_end() {
                        cur.try_delete();
                    }
                }
            });
        }
    });
    assert_eq!(list.node_capacity(), 64, "capped pool must not grow");
}

#[test]
fn drop_with_leftover_items_reclaims_everything() {
    use std::sync::atomic::AtomicUsize;
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Probe;
    impl Drop for Probe {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::Relaxed);
        }
    }
    let total = Arc::new(AtomicUsize::new(0));
    {
        let list: List<Probe> = List::new();
        std::thread::scope(|s| {
            let list = &list;
            for _ in 0..4 {
                let total = Arc::clone(&total);
                s.spawn(move || {
                    let mut cur = list.cursor();
                    for i in 0..500 {
                        cur.insert(Probe).unwrap();
                        total.fetch_add(1, Ordering::Relaxed);
                        cur.update();
                        if i % 3 == 0 {
                            cur.seek_first();
                            if cur.try_delete() {
                                // deletion drops when the cell is reclaimed
                            }
                        }
                    }
                });
            }
        });
    }
    assert_eq!(
        DROPS.load(Ordering::Relaxed),
        total.load(Ordering::Relaxed),
        "every value dropped exactly once after list drop"
    );
}
