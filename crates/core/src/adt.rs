//! Building-block ADTs over the list (paper §1: "a linked list is also
//! useful as a building block for other concurrent objects").
//!
//! Two classic objects fall out of the §3 operations directly:
//!
//! * [`Stack`] — LIFO at the list head (push = insert at first position,
//!   pop = delete first). The §5.2 free list is itself this shape.
//! * [`PriorityQueue`] — the sorted-list priority queue the paper's §2.1
//!   cites (Huang & Weihl \[15\]): ordered insertion, delete-min at the
//!   head. Duplicate priorities are allowed (unlike the §4 dictionary).
//!
//! Both inherit the list's non-blocking guarantee: a stalled thread cannot
//! prevent pushes or pops by others.

use std::fmt;

use valois_mem::AllocError;

use crate::list::List;

/// A lock-free LIFO stack over the §3 list.
///
/// # Example
///
/// ```
/// use valois_core::adt::Stack;
///
/// let s: Stack<u32> = Stack::new();
/// s.push(1).unwrap();
/// s.push(2).unwrap();
/// assert_eq!(s.pop(), Some(2));
/// assert_eq!(s.pop(), Some(1));
/// assert_eq!(s.pop(), None);
/// ```
pub struct Stack<T: Send + Sync + Clone> {
    list: List<T>,
}

impl<T: Send + Sync + Clone> Stack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self { list: List::new() }
    }

    /// Pushes a value.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when a capped node pool is exhausted.
    pub fn push(&self, value: T) -> Result<(), AllocError> {
        self.list.push_front(value)
    }

    /// Pops the most recently pushed value still present.
    pub fn pop(&self) -> Option<T> {
        let mut cursor = self.list.cursor();
        loop {
            if cursor.is_at_end() {
                return None;
            }
            // Read first (cells are immutable; persistence makes the read
            // stable), then claim the cell with the deletion CAS.
            let value = cursor.get().cloned();
            if cursor.try_delete() {
                return value;
            }
            // Lost a race; revalidate and retry on the new first item.
            cursor.update();
        }
    }

    /// Reads the current top without removing it.
    pub fn peek(&self) -> Option<T> {
        self.list.cursor().get().cloned()
    }

    /// Whether the stack is empty right now.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Number of items (O(n) snapshot).
    pub fn len(&self) -> usize {
        self.list.len()
    }
}

impl<T: Send + Sync + Clone> Default for Stack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + Sync + Clone + fmt::Debug> fmt::Debug for Stack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stack").field("len", &self.len()).finish()
    }
}

/// A lock-free priority queue over the sorted §3 list (smallest first).
///
/// Duplicate priorities are permitted; ties pop in insertion-race order.
///
/// # Example
///
/// ```
/// use valois_core::adt::PriorityQueue;
///
/// let q: PriorityQueue<u32> = PriorityQueue::new();
/// q.insert(5).unwrap();
/// q.insert(1).unwrap();
/// q.insert(3).unwrap();
/// assert_eq!(q.pop_min(), Some(1));
/// assert_eq!(q.pop_min(), Some(3));
/// assert_eq!(q.pop_min(), Some(5));
/// ```
pub struct PriorityQueue<T: Ord + Send + Sync + Clone> {
    list: List<T>,
}

impl<T: Ord + Send + Sync + Clone> PriorityQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self { list: List::new() }
    }

    /// Inserts a value at its priority position.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when a capped node pool is exhausted.
    pub fn insert(&self, value: T) -> Result<(), AllocError> {
        let mut cursor = self.list.cursor();
        let mut prepared = self.list.prepare_insert(value)?;
        loop {
            // Position before the first item >= value (keeps the list
            // sorted; FindFrom's positioning contract, Fig. 11).
            while let Some(existing) = cursor.get() {
                if existing >= prepared.value() {
                    break;
                }
                if !cursor.next() {
                    break;
                }
            }
            match cursor.try_insert(prepared) {
                Ok(()) => return Ok(()),
                Err(back) => {
                    prepared = back;
                    cursor.update();
                }
            }
        }
    }

    /// Removes and returns the smallest value.
    pub fn pop_min(&self) -> Option<T> {
        let mut cursor = self.list.cursor();
        loop {
            if cursor.is_at_end() {
                return None;
            }
            let value = cursor.get().cloned();
            if cursor.try_delete() {
                return value;
            }
            cursor.update();
        }
    }

    /// Reads the smallest value without removing it.
    pub fn peek_min(&self) -> Option<T> {
        self.list.cursor().get().cloned()
    }

    /// Whether the queue is empty right now.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Number of items (O(n) snapshot).
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// All items in priority order (snapshot).
    pub fn to_sorted_vec(&self) -> Vec<T> {
        self.list.iter().collect()
    }
}

impl<T: Ord + Send + Sync + Clone> Default for PriorityQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Send + Sync + Clone + fmt::Debug> fmt::Debug for PriorityQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PriorityQueue")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valois_sync::shim::atomic::{AtomicU64, Ordering};

    #[test]
    fn stack_lifo_order() {
        let s: Stack<u32> = Stack::new();
        for i in 0..10 {
            s.push(i).unwrap();
        }
        for i in (0..10).rev() {
            assert_eq!(s.pop(), Some(i));
        }
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn stack_peek_does_not_remove() {
        let s: Stack<u32> = Stack::new();
        s.push(7).unwrap();
        assert_eq!(s.peek(), Some(7));
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop(), Some(7));
    }

    #[test]
    fn stack_concurrent_conservation() {
        let s: Stack<u64> = Stack::new();
        let popped_sum = AtomicU64::new(0);
        let popped_n = AtomicU64::new(0);
        let pushed_sum = AtomicU64::new(0);
        std::thread::scope(|scope| {
            let s = &s;
            let popped_sum = &popped_sum;
            let popped_n = &popped_n;
            let pushed_sum = &pushed_sum;
            for t in 0..3u64 {
                scope.spawn(move || {
                    for i in 0..2_000 {
                        let v = t * 10_000 + i;
                        s.push(v).unwrap();
                        pushed_sum.fetch_add(v, Ordering::Relaxed);
                    }
                });
            }
            for _ in 0..2 {
                scope.spawn(move || {
                    for _ in 0..2_000 {
                        if let Some(v) = s.pop() {
                            popped_sum.fetch_add(v, Ordering::Relaxed);
                            popped_n.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        // Drain the rest.
        let mut rest_sum = 0u64;
        let mut rest_n = 0u64;
        while let Some(v) = s.pop() {
            rest_sum += v;
            rest_n += 1;
        }
        assert_eq!(popped_n.load(Ordering::Relaxed) + rest_n, 6_000);
        assert_eq!(
            popped_sum.load(Ordering::Relaxed) + rest_sum,
            pushed_sum.load(Ordering::Relaxed),
            "every pushed value popped exactly once"
        );
    }

    #[test]
    fn pqueue_orders_across_interleaved_inserts() {
        let q: PriorityQueue<i32> = PriorityQueue::new();
        for v in [5, -1, 3, 3, 0, 9, -7] {
            q.insert(v).unwrap();
        }
        assert_eq!(q.to_sorted_vec(), vec![-7, -1, 0, 3, 3, 5, 9]);
        assert_eq!(q.peek_min(), Some(-7));
        let mut drained = Vec::new();
        while let Some(v) = q.pop_min() {
            drained.push(v);
        }
        assert_eq!(drained, vec![-7, -1, 0, 3, 3, 5, 9]);
    }

    #[test]
    fn pqueue_duplicates_allowed() {
        let q: PriorityQueue<u32> = PriorityQueue::new();
        for _ in 0..5 {
            q.insert(1).unwrap();
        }
        assert_eq!(q.len(), 5);
        for _ in 0..5 {
            assert_eq!(q.pop_min(), Some(1));
        }
        assert_eq!(q.pop_min(), None);
    }

    #[test]
    fn pqueue_concurrent_pop_min_is_exactly_once() {
        for _ in 0..20 {
            let q: PriorityQueue<u64> = PriorityQueue::new();
            for v in 0..64 {
                q.insert(v).unwrap();
            }
            let popped = std::sync::Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                let q = &q;
                let popped = &popped;
                for _ in 0..4 {
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        while let Some(v) = q.pop_min() {
                            local.push(v);
                        }
                        popped.lock().unwrap().extend(local);
                    });
                }
            });
            let mut all = popped.into_inner().unwrap();
            all.sort_unstable();
            assert_eq!(all, (0..64).collect::<Vec<u64>>(), "each value once");
        }
    }

    #[test]
    fn pqueue_concurrent_insert_stays_sorted() {
        let q: PriorityQueue<u64> = PriorityQueue::new();
        std::thread::scope(|scope| {
            let q = &q;
            for t in 0..4u64 {
                scope.spawn(move || {
                    let mut x = t * 2_654_435_761 + 1;
                    for _ in 0..500 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        q.insert(x % 1000).unwrap();
                    }
                });
            }
        });
        let v = q.to_sorted_vec();
        assert_eq!(v.len(), 2_000);
        assert!(v.windows(2).all(|w| w[0] <= w[1]), "sorted with duplicates");
    }
}
