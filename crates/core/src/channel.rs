//! An MPMC channel composed from the lock-free FIFO queue — the kind of
//! higher-level object §1 positions the list as a building block for
//! (Massalin & Pu's lock-free kernel built its message passing the same
//! way).
//!
//! Any number of [`Sender`]s and [`Receiver`]s; values flow FIFO; when
//! either side fully disconnects the other observes it. All data-path
//! operations are non-blocking ([`Receiver::recv`] *waits* by
//! spinning/yielding, but on a lock-free queue: a stalled peer can delay
//! it only by not producing, never by corrupting or blocking the
//! structure).

use std::fmt;
use std::sync::Arc;
use valois_sync::shim::atomic::{AtomicUsize, Ordering};

use crate::queue::FifoQueue;

/// Creates an unbounded MPMC channel.
///
/// # Example
///
/// ```
/// let (tx, rx) = valois_core::channel::channel::<u32>();
/// tx.send(1).unwrap();
/// tx.send(2).unwrap();
/// assert_eq!(rx.try_recv(), Ok(1));
/// assert_eq!(rx.try_recv(), Ok(2));
/// drop(tx);
/// assert_eq!(rx.try_recv(), Err(valois_core::channel::TryRecvError::Disconnected));
/// ```
pub fn channel<T: Send + Sync>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: FifoQueue::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

struct Shared<T: Send + Sync> {
    queue: FifoQueue<T>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Error returned by [`Sender::send`] when every receiver is gone;
/// hands the value back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a channel with no receivers")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No value currently queued (senders still connected).
    Empty,
    /// No value queued and every sender is gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => f.write_str("channel empty"),
            Self::Disconnected => f.write_str("channel empty and senders disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// The sending half; clonable (multi-producer).
pub struct Sender<T: Send + Sync> {
    shared: Arc<Shared<T>>,
}

impl<T: Send + Sync> Sender<T> {
    /// Enqueues `value`, failing (and returning it) if every receiver has
    /// been dropped.
    ///
    /// # Errors
    ///
    /// [`SendError`] carrying the value back when no receivers remain.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        self.shared
            .queue
            .enqueue(value)
            .expect("channel queue arena grows on demand");
        Ok(())
    }

    /// Number of values currently queued (O(n) snapshot).
    pub fn queued(&self) -> usize {
        self.shared.queue.len()
    }
}

impl<T: Send + Sync> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: Send + Sync> Drop for Sender<T> {
    fn drop(&mut self) {
        self.shared.senders.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<T: Send + Sync> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half; clonable (multi-consumer — each value is delivered
/// to exactly one receiver).
pub struct Receiver<T: Send + Sync> {
    shared: Arc<Shared<T>>,
}

impl<T: Send + Sync> Receiver<T> {
    /// Dequeues the oldest value if one is ready.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued yet;
    /// [`TryRecvError::Disconnected`] when nothing is queued and every
    /// sender has been dropped.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        // Read the sender count *before* the dequeue attempt: if a racing
        // sender enqueues then disconnects between our dequeue miss and a
        // later count read, the next try_recv still sees the value.
        let senders = self.shared.senders.load(Ordering::Acquire);
        match self.shared.queue.dequeue() {
            Some(v) => Ok(v),
            None if senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Waits (spin + yield) for the next value; `None` when the channel is
    /// drained and every sender is gone.
    pub fn recv(&self) -> Option<T> {
        loop {
            match self.try_recv() {
                Ok(v) => return Some(v),
                Err(TryRecvError::Disconnected) => return None,
                Err(TryRecvError::Empty) => std::thread::yield_now(),
            }
        }
    }

    /// Iterates until the channel is drained and disconnected.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.recv())
    }
}

impl<T: Send + Sync> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: Send + Sync> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<T: Send + Sync> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fifo() {
        let (tx, rx) = channel::<u32>();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.try_recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn sender_disconnect_observed_after_drain() {
        let (tx, rx) = channel::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(1), "queued value survives disconnect");
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn receiver_disconnect_fails_send_with_value_back() {
        let (tx, rx) = channel::<String>();
        drop(rx);
        let err = tx.send("hello".into()).unwrap_err();
        assert_eq!(err.0, "hello");
    }

    #[test]
    fn clones_keep_channel_alive() {
        let (tx, rx) = channel::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(5).unwrap();
        let rx2 = rx.clone();
        drop(rx);
        assert_eq!(rx2.recv(), Some(5));
        drop(tx2);
        assert_eq!(rx2.recv(), None);
    }

    #[test]
    fn mpmc_each_value_delivered_once() {
        let (tx, rx) = channel::<u64>();
        let total: u64 = 4 * 5_000;
        let received = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for p in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..5_000 {
                        tx.send(p * 5_000 + i).unwrap();
                    }
                });
            }
            drop(tx); // workers hold their clones
            for _ in 0..3 {
                let rx = rx.clone();
                let received = &received;
                s.spawn(move || {
                    let mut local = Vec::new();
                    while let Some(v) = rx.recv() {
                        local.push(v);
                    }
                    received.lock().unwrap().extend(local);
                });
            }
            drop(rx);
        });
        let mut all = received.into_inner().unwrap();
        assert_eq!(all.len() as u64, total);
        all.sort_unstable();
        assert_eq!(all, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn iter_drains_until_disconnect() {
        let (tx, rx) = channel::<u32>();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.iter().collect();
            assert_eq!(got.len(), 100);
        });
    }
}
