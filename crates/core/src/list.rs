//! The lock-free singly-linked list (paper §3).
//!
//! A [`List`] owns a type-stable node arena and the two root pointers
//! `First` and `Last`. An empty list is two dummy cells separated by one
//! auxiliary node (Fig. 4):
//!
//! ```text
//! First ──▶ [first dummy] ──▶ (aux) ──▶ [last dummy] ◀── Last
//! ```
//!
//! All access goes through [`Cursor`]s (§2.1): traversal, insertion before
//! the cursor's position, and deletion of the visited item.

use std::fmt;

use valois_mem::{AllocError, Arena, ArenaConfig, Managed, MemStats, Reclaimer, RefCount};

use crate::cursor::Cursor;
use crate::node::{Node, NodeKind};
use crate::stats::{ListCounters, ListStats, ListTally};

/// A lock-free singly-linked list of `T` (Valois, PODC 1995, §3).
///
/// Any number of threads may concurrently traverse, insert, and delete at
/// arbitrary positions through [`Cursor`]s; all operations are non-blocking
/// (a stalled thread cannot prevent others from completing).
///
/// # Example
///
/// ```
/// use valois_core::List;
///
/// let list: List<i32> = List::new();
/// let mut cur = list.cursor();
/// cur.insert(2).unwrap();
/// cur.insert(1).unwrap(); // inserts before the cursor position
/// let collected: Vec<i32> = list.iter().collect();
/// assert_eq!(collected, vec![1, 2]);
/// ```
///
/// # Reclamation backends
///
/// The second type parameter selects the memory-reclamation backend
/// (see [`valois_mem::Reclaimer`]): the paper-faithful counted
/// [`RefCount`] default, or [`valois_mem::Epoch`], under which cursor
/// traversal takes no shared-memory RMWs per hop — the cursor pins an
/// epoch for its lifetime instead. The list algorithms are identical;
/// only the protection of *process* references changes. Link counts
/// (the structure's own `next`/`back_link`/root counts) are maintained
/// under both backends.
///
/// ```
/// use valois_core::List;
/// use valois_mem::Epoch;
///
/// let list: List<i32, Epoch> = List::new();
/// list.push_front(1).unwrap();
/// assert_eq!(list.iter().collect::<Vec<_>>(), vec![1]);
/// ```
pub struct List<T: Send + Sync, R: Reclaimer = RefCount> {
    arena: Arena<Node<T>, R>,
    /// `First` root (counted): points at the first dummy cell, immutable
    /// after construction.
    first_root: valois_mem::Link<Node<T>>,
    /// `Last` root (counted): points at the last dummy cell.
    last_root: valois_mem::Link<Node<T>>,
    /// Stable raw copies for pointer comparisons (the dummies are never
    /// reclaimed while the list lives — the roots hold counts).
    first: *mut Node<T>,
    last: *mut Node<T>,
    counters: ListCounters,
}

// SAFETY: all shared state is managed through the arena protocol and
// atomics; raw pointer fields are immutable after construction.
unsafe impl<T: Send + Sync, R: Reclaimer> Send for List<T, R> {}
// SAFETY: as above — shared access goes through the same protocol paths.
unsafe impl<T: Send + Sync, R: Reclaimer> Sync for List<T, R> {}

impl<T: Send + Sync, R: Reclaimer> List<T, R> {
    /// Creates an empty list with the default arena configuration.
    pub fn new() -> Self {
        Self::with_config(ArenaConfig::default())
    }

    /// Creates an empty list with `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` caps the pool below the 3 nodes an empty list
    /// needs (Fig. 4).
    pub fn with_config(config: ArenaConfig) -> Self {
        let config = ArenaConfig {
            initial_capacity: config.initial_capacity.max(8),
            ..config
        };
        let arena: Arena<Node<T>, R> = Arena::with_config(config);
        let first = arena.alloc().expect("pool too small for an empty list");
        let aux = arena.alloc().expect("pool too small for an empty list");
        let last = arena.alloc().expect("pool too small for an empty list");
        let list = Self {
            arena,
            first_root: valois_mem::Link::null(),
            last_root: valois_mem::Link::null(),
            first,
            last,
            counters: ListCounters::default(),
        };
        // SAFETY: construction is single-threaded; the nodes are fresh and
        // exclusively owned until `list` is returned.
        unsafe {
            (*first).set_kind(NodeKind::FirstDummy);
            (*aux).set_kind(NodeKind::Aux);
            (*last).set_kind(NodeKind::LastDummy);
            list.arena.store_link(&list.first_root, first);
            list.arena.store_link(&list.last_root, last);
            list.arena.store_link(&(*first).next, aux);
            list.arena.store_link(&(*aux).next, last);
            // Drop the allocation references; counts are now exactly the
            // incoming links: first=1 (root), aux=1 (first.next),
            // last=2 (root + aux.next).
            list.arena.release(first);
            list.arena.release(aux);
            list.arena.release(last);
        }
        list
    }

    /// Opens a cursor visiting the first item (Fig. 6), or the end position
    /// if the list is empty.
    pub fn cursor(&self) -> Cursor<'_, T, R> {
        Cursor::at_first(self)
    }

    /// Operation-scoped cursor access: opens a cursor at the first
    /// position, runs `f`, and drops the cursor before returning — the
    /// protection window (refcounts, or the epoch pin under
    /// [`valois_mem::Epoch`]) opens and closes *inside* the call.
    ///
    /// This is the API service layers should reach for:
    /// `Cursor<'_, T, Epoch>` is deliberately `!Send` (its pin lives in
    /// the creating thread's epoch slot), so a worker thread must open
    /// and close cursors locally rather than receive them from
    /// elsewhere. `with_cursor` makes that pattern a one-liner and makes
    /// it impossible to park a pinned cursor across requests — the
    /// stall that `epoch_pin_lag` exists to catch.
    ///
    /// ```
    /// use valois_core::List;
    /// use valois_mem::Epoch;
    ///
    /// let list: List<u64, Epoch> = (0..8).collect();
    /// let sum = list.with_cursor(|cur| {
    ///     let mut sum = 0;
    ///     while let Some(&v) = cur.get() {
    ///         sum += v;
    ///         if !cur.next() {
    ///             break;
    ///         }
    ///     }
    ///     sum
    /// });
    /// assert_eq!(sum, 28);
    /// ```
    ///
    /// The `!Send` contract itself is pinned by a compile-fail test: an
    /// epoch cursor cannot cross threads…
    ///
    /// ```compile_fail,E0277
    /// use valois_core::List;
    /// use valois_mem::Epoch;
    ///
    /// fn assert_send<T: Send>(_: T) {}
    /// let list: List<u64, Epoch> = List::new();
    /// assert_send(list.cursor()); // ERROR: `Cursor<'_, u64, Epoch>` is `!Send`
    /// ```
    ///
    /// …while the paper-faithful refcount cursor still can:
    ///
    /// ```
    /// use valois_core::List;
    ///
    /// fn assert_send<T: Send>(_: T) {}
    /// let list: List<u64> = List::new();
    /// assert_send(list.cursor()); // RefCount cursors are Send
    /// ```
    pub fn with_cursor<O>(&self, f: impl FnOnce(&mut Cursor<'_, T, R>) -> O) -> O {
        let mut cursor = self.cursor();
        f(&mut cursor)
    }

    /// Allocates and initializes a cell + auxiliary node pair ready for
    /// [`Cursor::try_insert`]. The pair can be retried across cursor
    /// updates without reallocation (as the paper's `Insert`, Fig. 12,
    /// allocates once outside its retry loop).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when the node pool is exhausted and capped.
    pub fn prepare_insert(&self, value: T) -> Result<PreparedInsert<'_, T, R>, AllocError> {
        self.try_prepare_insert(value).map_err(|(_, e)| e)
    }

    /// [`List::prepare_insert`] that hands the value back on failure, so
    /// callers holding reclaimable references (a cursor with parked
    /// deferred releases, a cached-cursor slot pinning an anchor) can
    /// free nodes and retry without losing it.
    ///
    /// # Errors
    ///
    /// Returns the value together with the [`AllocError`] when the node
    /// pool is exhausted and capped.
    // COUNT: the two fresh Alloc counts transfer into the returned
    // `PreparedInsert { cell, aux }`; its Drop (abandon) or publication
    // (try_insert) consumes them.
    pub fn try_prepare_insert(
        &self,
        value: T,
    ) -> Result<PreparedInsert<'_, T, R>, (T, AllocError)> {
        let cell = match self.arena.alloc() {
            Ok(cell) => cell,
            Err(e) => return Err((value, e)),
        };
        let aux = match self.arena.alloc() {
            Ok(aux) => aux,
            Err(e) => {
                // SAFETY: `cell` is fresh and exclusively owned.
                unsafe { self.arena.release(cell) };
                return Err((value, e));
            }
        };
        // SAFETY: both nodes fresh, unpublished.
        unsafe {
            (*cell).init_value(value);
            (*aux).set_kind(NodeKind::Aux);
        }
        Ok(PreparedInsert {
            list: self,
            cell,
            aux,
        })
    }

    /// Inserts `value` at the front of the list.
    ///
    /// # Example
    ///
    /// ```
    /// use valois_core::List;
    /// let list: List<u32> = List::new();
    /// list.push_front(2)?;
    /// list.push_front(1)?;
    /// assert_eq!(list.iter().collect::<Vec<_>>(), vec![1, 2]);
    /// # Ok::<(), valois_core::AllocError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when the node pool is exhausted and capped.
    pub fn push_front(&self, value: T) -> Result<(), AllocError> {
        let mut cursor = self.cursor();
        cursor.insert(value)
    }

    /// Visits every item currently reachable, front to back.
    ///
    /// Under concurrency this is a linearizable traversal in the paper's
    /// sense: each step is atomic, but the sequence reflects the list as it
    /// evolves.
    pub fn for_each(&self, mut f: impl FnMut(&T)) {
        let mut cursor = self.cursor();
        while !cursor.is_at_end() {
            if let Some(v) = cursor.get() {
                f(v);
            }
            if !cursor.next() {
                break;
            }
        }
    }

    /// Visits every item **without** `SafeRead` protection — a raw pointer
    /// walk over the same memory layout. Requires `&mut self`, so the
    /// borrow checker provides the quiescence that the §5 protocol
    /// otherwise would. This is the experiment E8 ablation handle: the
    /// throughput difference between this and [`List::for_each`] is the
    /// cost of `SafeRead`/`Release`, which §6 calls "the most time
    /// consuming operation".
    pub fn for_each_unprotected(&mut self, mut f: impl FnMut(&T)) {
        // SAFETY: &mut self — no concurrent operations; nodes are alive
        // for the arena's lifetime.
        unsafe {
            let mut p = self.first;
            loop {
                let n = (*p).next.read();
                if n.is_null() {
                    break;
                }
                p = n;
                match (*p).kind() {
                    NodeKind::Cell => f((*p).value()),
                    NodeKind::LastDummy => break,
                    _ => {}
                }
            }
        }
    }

    /// Iterates over cloned items, front to back.
    pub fn iter(&self) -> Iter<'_, T, R>
    where
        T: Clone,
    {
        Iter {
            cursor: self.cursor(),
            done: false,
        }
    }

    /// Deletes every item for which `pred` returns `false`, concurrently
    /// safe (each deletion is an independent `TryDelete` with the standard
    /// retry discipline). Returns the number of items removed by *this*
    /// call.
    ///
    /// # Example
    ///
    /// ```
    /// use valois_core::List;
    /// let list: List<u32> = (0..10).collect();
    /// assert_eq!(list.retain(|v| v % 2 == 0), 5);
    /// assert_eq!(list.iter().collect::<Vec<_>>(), vec![0, 2, 4, 6, 8]);
    /// ```
    pub fn retain(&self, mut pred: impl FnMut(&T) -> bool) -> usize {
        let mut removed = 0;
        let mut cursor = self.cursor();
        loop {
            let keep = match cursor.get() {
                None => {
                    if cursor.is_at_end() {
                        break;
                    }
                    true
                }
                Some(v) => pred(v),
            };
            if keep {
                if !cursor.next() {
                    break;
                }
            } else if cursor.try_delete() {
                removed += 1;
                cursor.update();
            } else {
                cursor.update();
            }
        }
        removed
    }

    /// Counts the items currently in the list. O(n); under concurrency the
    /// result is a snapshot-ish approximation (as any concurrent size is).
    pub fn len(&self) -> usize {
        let mut n = 0;
        self.for_each(|_| n += 1);
        n
    }

    /// Whether the list currently has no items.
    pub fn is_empty(&self) -> bool {
        let cursor = self.cursor();
        cursor.is_at_end()
    }

    /// Snapshot of list-operation counters (retries, auxiliary-node
    /// overhead — the §4.1 "extra work" quantities).
    ///
    /// Cursors batch their events and fold them in when dropped; a
    /// still-live cursor's recent operations may not be visible yet
    /// (see [`Cursor::flush_stats`]).
    pub fn stats(&self) -> ListStats {
        self.counters.snapshot()
    }

    /// Snapshot of the underlying memory-protocol counters (§5 traffic).
    /// Subject to the same cursor-batching caveat as [`List::stats`].
    pub fn mem_stats(&self) -> MemStats {
        self.arena.stats()
    }

    /// Total nodes owned by the backing arena (free + live).
    pub fn node_capacity(&self) -> usize {
        self.arena.capacity()
    }

    /// Flushes every per-thread free-node magazine back to the arena's
    /// global free list and returns the number of nodes moved. At
    /// quiescence, after this call every free node is reachable from the
    /// global free head — the leak tests use it before auditing counts.
    pub fn flush_node_caches(&self) -> usize {
        self.arena.flush_thread_caches()
    }

    /// Memory-pressure shed: flushes every lockable per-thread magazine
    /// back to the global free list and, under the epoch backend, runs
    /// bounded advance+sweep rounds over the limbo list. Returns nodes
    /// made allocatable. The retry contract for a capped pool: on
    /// [`AllocError`](valois_mem::AllocError), drop every live cursor
    /// (their epoch pins block the grace period), `shed_memory`, retry
    /// once — see [`Arena::shed_memory`](valois_mem::Arena::shed_memory).
    pub fn shed_memory(&self) -> usize {
        self.arena.shed_memory()
    }

    /// Walks the list and reports auxiliary-node structure: the §3 theorem
    /// says chains of ≥ 2 auxiliary nodes exist **only while a `TryDelete`
    /// is in progress**, so after all operations complete
    /// [`AuxChainReport::runs_ge2`] must be 0 (verified by the
    /// `aux_quiescence` tests and experiment E7).
    ///
    /// Safe to call concurrently (the walk is a protected traversal); the
    /// report is then a live sample rather than a ground truth.
    pub fn aux_chain_report(&self) -> AuxChainReport {
        let mut report = AuxChainReport::default();
        // The guard is the epoch backend's protection for the whole walk
        // (no-op under refcount, where the safe_read counts protect).
        let _pin = self.arena.pin();
        // SAFETY: roots and held-node fields are counted links of our arena.
        unsafe {
            let mut p = self.arena.safe_read(&self.first_root);
            let mut run = 0usize;
            loop {
                let n = self.arena.safe_read(&(*p).next);
                self.arena.unprotect(p);
                if n.is_null() {
                    // Fell off past the last dummy (shouldn't happen from
                    // first_root, but a concurrent drop-race tolerant exit).
                    // `p`'s reference was already given up above — releasing
                    // it again here would double-release (I11 violation found
                    // by the protection-window pass).
                    return report;
                }
                p = n;
                match (*p).kind() {
                    NodeKind::Aux => {
                        report.aux += 1;
                        run += 1;
                    }
                    kind => {
                        if run >= 2 {
                            report.runs_ge2 += 1;
                        }
                        report.max_run = report.max_run.max(run);
                        run = 0;
                        if kind == NodeKind::Cell {
                            report.cells += 1;
                        }
                        if kind == NodeKind::LastDummy {
                            break;
                        }
                    }
                }
            }
            self.arena.unprotect(p);
        }
        report
    }

    /// Concurrency-safe invariant walker, intended for `debug_assertions`
    /// builds (in release builds it is a no-op returning `Ok(())`, so
    /// stress tests can call it unconditionally without perturbing
    /// benchmarked paths). See [`List::check_invariants_now`] for the
    /// checks performed.
    pub fn check_invariants(&self) -> Result<(), String> {
        if cfg!(debug_assertions) {
            self.check_invariants_now()
        } else {
            Ok(())
        }
    }

    /// The walker behind [`List::check_invariants`], compiled in every
    /// profile (verification tools want it in release builds too).
    ///
    /// Unlike [`List::check_structure`] — which demands the strict
    /// quiescent shape and therefore `&mut self` — this uses a protected
    /// (counted) traversal and checks only the invariants that hold at
    /// *every* instant, even mid-operation:
    ///
    /// 1. the chain from the first dummy reaches the last dummy in a
    ///    bounded number of hops (connectivity, no cycles);
    /// 2. no reachable node is `Free`: a free node under a protected
    ///    reference means reclamation overtook a live link — the §5 bug
    ///    class the claim bit (and the epoch grace period) exists to
    ///    prevent;
    /// 3. under the refcount backend, every reachable node's reference
    ///    count is ≥ 1 (at minimum ours); under the epoch backend our
    ///    reference is uncounted and a just-unlinked node legitimately
    ///    reads 0 mid-retirement, so the check is skipped;
    /// 4. a normal cell's successor is an auxiliary node (§3 invariant;
    ///    auxiliary runs of length ≥ 2 are legal mid-`TryDelete`).
    pub fn check_invariants_now(&self) -> Result<(), String> {
        // Concurrent inserts may lengthen the chain under our feet; the
        // bound exists only to turn a corruption cycle into an error.
        let max_hops = self.arena.capacity() * 8 + 64;
        // Epoch backend: the pin is the walk's protection window.
        let _pin = self.arena.pin();
        // SAFETY: the root and held-node `next` fields are counted links
        // of this arena; every protected node is unprotected exactly once.
        unsafe {
            let mut p = self.arena.safe_read(&self.first_root);
            if p.is_null() {
                return Err("first root is null".into());
            }
            for _ in 0..max_hops {
                let kind = (*p).kind();
                let refct = (*p).header().refcount();
                if kind == NodeKind::Free {
                    let e = format!("node {p:p} is Free under a protected reference");
                    self.arena.unprotect(p);
                    return Err(e);
                }
                if R::COUNTED_READS && refct < 1 {
                    let e = format!("{kind:?} node {p:p} has count {refct} while referenced");
                    self.arena.unprotect(p);
                    return Err(e);
                }
                if kind == NodeKind::LastDummy {
                    self.arena.unprotect(p);
                    return Ok(());
                }
                let n = self.arena.safe_read(&(*p).next);
                if n.is_null() {
                    let e =
                        format!("{kind:?} node {p:p} has a null successor before the last dummy");
                    self.arena.unprotect(p);
                    return Err(e);
                }
                if kind != NodeKind::Aux && (*n).kind() != NodeKind::Aux {
                    let e = format!(
                        "§3 violation: {kind:?} node {p:p} is followed by {:?} {n:p} (expected Aux)",
                        (*n).kind()
                    );
                    self.arena.unprotect(p);
                    self.arena.unprotect(n);
                    return Err(e);
                }
                self.arena.unprotect(p);
                p = n;
            }
            self.arena.unprotect(p);
            Err(format!(
                "chain did not reach the last dummy within {max_hops} hops (cycle?)"
            ))
        }
    }

    /// Renders the quiescent chain (and each node's header state) for
    /// failure diagnostics: `kind@addr[refct,claim]` hops from the first
    /// dummy, bounded so a corrupted cyclic chain still terminates.
    ///
    /// Requires `&mut self` so the borrow checker guarantees quiescence.
    pub fn dump_chain(&mut self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        // SAFETY: &mut self guarantees quiescence; raw walks are exclusive.
        unsafe {
            let mut p = self.first;
            for hop in 0..64 {
                if hop > 0 {
                    out.push_str(" -> ");
                }
                if p.is_null() {
                    out.push_str("NULL");
                    break;
                }
                let _ = write!(
                    out,
                    "{:?}@{:#x}[rc={},claim={}]",
                    (*p).kind(),
                    p as usize,
                    (*p).header().refcount(),
                    (*p).header().claim_is_set(),
                );
                if (*p).kind() == NodeKind::LastDummy {
                    break;
                }
                p = (*p).next.read();
            }
        }
        out
    }

    /// Verifies the §3 structural invariants at quiescence (test helper):
    /// the list must be `FirstDummy (Aux Cell)* Aux LastDummy` — every
    /// normal cell with an auxiliary node as predecessor and successor, and
    /// no chains of auxiliary nodes.
    ///
    /// Requires `&mut self` so the borrow checker guarantees no live
    /// cursors or concurrent operations.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_structure(&mut self) -> Result<(), String> {
        // SAFETY: &mut self guarantees quiescence; raw walks are exclusive.
        unsafe {
            let mut p = self.first;
            if (*p).kind() != NodeKind::FirstDummy {
                return Err("First root does not point at the first dummy".into());
            }
            let mut expect_aux = true;
            loop {
                let n = (*p).next.read();
                if n.is_null() {
                    return Err(format!("unexpected null next after kind {:?}", (*p).kind()));
                }
                match (*n).kind() {
                    NodeKind::Aux => {
                        if !expect_aux {
                            return Err("chain of two auxiliary nodes at quiescence".into());
                        }
                        expect_aux = false;
                    }
                    NodeKind::Cell => {
                        if expect_aux {
                            return Err("cell without auxiliary predecessor".into());
                        }
                        expect_aux = true;
                    }
                    NodeKind::LastDummy => {
                        if expect_aux {
                            return Err("last dummy without auxiliary predecessor".into());
                        }
                        return Ok(());
                    }
                    k => return Err(format!("unexpected node kind {k:?} in list")),
                }
                p = n;
            }
        }
    }

    /// Quiescent reference-count audit: recomputes every node's expected
    /// count — its in-degree over `next`/`back_link` links of occupied
    /// nodes plus the root pointers — and compares with the live `refct`.
    /// At quiescence (`&mut self`: no cursors, no operations in flight)
    /// any mismatch is a protocol bug: a leaked or double-released
    /// reference somewhere in the §5 implementation.
    ///
    /// Free-list nodes are validated separately: each must carry exactly
    /// the one count its in-list predecessor (or the free-list head) holds.
    ///
    /// # Errors
    ///
    /// Describes the first mismatching node.
    pub fn audit_refcounts(&mut self) -> Result<(), String> {
        self.audit_refcounts_extra(&[])
    }

    /// [`List::audit_refcounts`] with additional expected counts: one per
    /// pointer in `extra` (structure roots outside the list — published
    /// entry roots — whose counts the in-list sweep cannot see).
    pub(crate) fn audit_refcounts_extra(&mut self, extra: &[*mut Node<T>]) -> Result<(), String> {
        use std::collections::HashMap;
        let mut expected: HashMap<usize, u64> = HashMap::new();
        // Roots contribute one count each.
        *expected.entry(self.first as usize).or_insert(0) += 1;
        *expected.entry(self.last as usize).or_insert(0) += 1;
        for &p in extra {
            *expected.entry(p as usize).or_insert(0) += 1;
        }
        // SAFETY: &mut self guarantees quiescence for all raw reads.
        unsafe {
            // Occupied nodes' links contribute counts; free nodes' `next`
            // is the free-list link (counted by its predecessor), handled
            // in the same sweep because the free head is not a field we
            // can see here — instead, free nodes are counted by whoever
            // points at them, and the head's count is accounted by the
            // arena below via the observed total.
            let mut frees = 0u64;
            self.arena.for_each_node(|p| {
                if (*p).kind() == NodeKind::Free {
                    frees += 1;
                }
                for link in [(*p).next.read(), (*p).back_link.read()] {
                    if !link.is_null() {
                        *expected.entry(link as usize).or_insert(0) += 1;
                    }
                }
            });
            // One free node (the head) is counted by the arena's free-list
            // root rather than by another node; add that count by checking
            // which free node nobody points at... simpler: validate totals.
            let mut result = Ok(());
            self.arena.for_each_node(|p| {
                if result.is_err() {
                    return;
                }
                let actual = (*p).header().refcount() as u64;
                let expect = expected.get(&(p as usize)).copied().unwrap_or(0);
                let kind = (*p).kind();
                // The free-list head has one count from the arena root that
                // this sweep cannot see; tolerate exactly +1 on free nodes
                // whose computed in-degree is zero (the head).
                let ok = if kind == NodeKind::Free && expect == 0 {
                    actual == 1
                } else {
                    actual == expect
                };
                if !ok {
                    result = Err(format!(
                        "refcount drift on {kind:?} node {:p}: actual {actual}, expected {expect}",
                        p
                    ));
                }
            });
            result
        }
    }

    /// Quiescent cycle collection (see DESIGN.md §1 note 3).
    ///
    /// Deleted cells keep their `next` intact and gain a `back_link`, so a
    /// group of cells deleted close together can form a reference cycle
    /// that pure counting never frees. With `&mut self` (no cursors, no
    /// concurrent operations) this sweep finds every node that is occupied
    /// yet unreachable from the roots and returns it to the free list.
    /// Returns the number of nodes collected.
    ///
    /// Epoch backend: with no pins outstanding (`&mut self`), first ages
    /// all acyclic limbo garbage out through its grace period, then
    /// detaches what remains — cyclic, already-claimed garbage — so the
    /// same mark-sweep below reclaims it.
    pub fn quiescent_collect(&mut self) -> usize {
        use std::collections::HashSet;
        self.arena.quiescent_collect_epoch();
        // Remaining limbo nodes are claimed, unreachable cycle members;
        // take them off the limbo chain so the sweep's reclaim cannot
        // race a later epoch collection over the same nodes. (Empty vec
        // under refcount.)
        let limbo: HashSet<usize> = self
            .arena
            .take_limbo_quiescent()
            .into_iter()
            .map(|p| p as usize)
            .collect();
        // Mark: everything reachable from the roots via next/back_link.
        let mut reachable: HashSet<usize> = HashSet::new();
        let mut stack: Vec<*mut Node<T>> = vec![self.first, self.last];
        // SAFETY: &mut self guarantees quiescence throughout.
        unsafe {
            while let Some(p) = stack.pop() {
                if p.is_null() || !reachable.insert(p as usize) {
                    continue;
                }
                stack.push((*p).next.read());
                stack.push((*p).back_link.read());
            }
            // Sweep: occupied, unreachable nodes are back-link-cycle garbage.
            let mut garbage: Vec<*mut Node<T>> = Vec::new();
            self.arena.for_each_node(|p| {
                if (*p).kind() != NodeKind::Free && !reachable.contains(&(p as usize)) {
                    garbage.push(p);
                }
            });
            let garbage_set: HashSet<usize> = garbage.iter().map(|p| *p as usize).collect();
            // Claim each first so no cascade can race our manual drain.
            // Nodes pulled off the epoch limbo chain were claimed by their
            // retirer already; everything else must be unclaimed.
            for &g in &garbage {
                let lost = (*g).header().set_claim();
                debug_assert!(
                    !lost || limbo.contains(&(g as usize)),
                    "garbage node already claimed at quiescence"
                );
            }
            for &g in &garbage {
                let links = (*g).drain_links();
                for t in links.iter() {
                    if garbage_set.contains(&(t as usize)) {
                        // Internal cycle edge: drop the count manually; the
                        // target is reclaimed by this sweep, not by cascade.
                        (*t).header().decr_ref();
                    } else {
                        self.arena.release(t);
                    }
                }
            }
            for &g in &garbage {
                debug_assert_eq!(
                    (*g).header().refcount(),
                    0,
                    "cycle garbage should end with zero count"
                );
                self.arena.reclaim_detached(g);
            }
            garbage.len()
        }
    }

    // ------------------------------------------------------------------
    // Crate-internal accessors for Cursor / PreparedInsert.
    // ------------------------------------------------------------------

    pub(crate) fn arena(&self) -> &Arena<Node<T>, R> {
        &self.arena
    }

    pub(crate) fn first_root(&self) -> &valois_mem::Link<Node<T>> {
        &self.first_root
    }

    pub(crate) fn last_ptr(&self) -> *mut Node<T> {
        self.last
    }

    pub(crate) fn absorb(&self, tally: &mut ListTally) {
        if !tally.is_empty() {
            self.counters.absorb(tally);
        }
    }
}

impl<T: Send + Sync, R: Reclaimer> Default for List<T, R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + Sync, R: Reclaimer> Drop for List<T, R> {
    fn drop(&mut self) {
        // Release the root counts; the cascade reclaims the whole chain.
        // SAFETY: &mut self (drop) guarantees no cursors or operations.
        unsafe {
            let f = self.first_root.swap(std::ptr::null_mut());
            let l = self.last_root.swap(std::ptr::null_mut());
            self.arena.release(f);
            self.arena.release(l);
        }
        // Back-link cycles among deleted cells survive the cascade; sweep
        // them so every value's Drop runs before the arena frees segments.
        self.quiescent_collect();
    }
}

impl<T: Send + Sync + fmt::Debug, R: Reclaimer> fmt::Debug for List<T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("List")
            .field("len", &self.len())
            .field("node_capacity", &self.node_capacity())
            .finish()
    }
}

impl<T: Send + Sync, R: Reclaimer> FromIterator<T> for List<T, R> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let list = List::<T, R>::new();
        let mut cursor = list.cursor();
        // Insert each item before the end position, preserving order.
        while cursor.next() {}
        for item in iter {
            cursor
                .insert(item)
                .expect("default arena config grows on demand");
            cursor.update();
            while cursor.next() {}
        }
        drop(cursor);
        list
    }
}

impl<'a, T: Send + Sync + Clone, R: Reclaimer> IntoIterator for &'a List<T, R> {
    type Item = T;
    type IntoIter = Iter<'a, T, R>;

    fn into_iter(self) -> Iter<'a, T, R> {
        self.iter()
    }
}

/// Iterator over cloned items of a [`List`] (see [`List::iter`]).
pub struct Iter<'a, T: Send + Sync + Clone, R: Reclaimer = RefCount> {
    cursor: Cursor<'a, T, R>,
    done: bool,
}

impl<T: Send + Sync + Clone, R: Reclaimer> Iterator for Iter<'_, T, R> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        loop {
            if self.done || self.cursor.is_at_end() {
                return None;
            }
            let value = self.cursor.get().cloned();
            if !self.cursor.next() {
                self.done = true;
            }
            if value.is_some() {
                return value;
            }
        }
    }
}

impl<T: Send + Sync + Clone, R: Reclaimer> fmt::Debug for Iter<'_, T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Iter { .. }")
    }
}

/// Auxiliary-node structure report (see [`List::aux_chain_report`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuxChainReport {
    /// Normal (item) cells encountered.
    pub cells: usize,
    /// Auxiliary nodes encountered.
    pub aux: usize,
    /// Length of the longest run of consecutive auxiliary nodes.
    pub max_run: usize,
    /// Number of runs of length ≥ 2 (must be 0 at quiescence — §3 theorem).
    pub runs_ge2: usize,
}

/// A cell + auxiliary node pair prepared for insertion (Fig. 8's two new
/// nodes), reusable across [`Cursor::try_insert`] retries.
///
/// Dropping an unconsumed pair returns both nodes (and the value) to the
/// pool.
pub struct PreparedInsert<'a, T: Send + Sync, R: Reclaimer = RefCount> {
    pub(crate) list: &'a List<T, R>,
    pub(crate) cell: *mut Node<T>,
    pub(crate) aux: *mut Node<T>,
}

// SAFETY: the pair is exclusively owned (unpublished nodes reachable only
// through this value) and the list handle is Sync, so moving a prepared
// insertion to another thread is sound.
unsafe impl<T: Send + Sync, R: Reclaimer> Send for PreparedInsert<'_, T, R> {}

impl<'a, T: Send + Sync, R: Reclaimer> PreparedInsert<'a, T, R> {
    /// Reads back the prepared value.
    pub fn value(&self) -> &T {
        // SAFETY: we hold the allocation reference; the node is a Cell.
        unsafe { (*self.cell).value() }
    }

    pub(crate) fn consume(mut self) {
        // Successful publication: the list's links now count both nodes;
        // give up the allocation references.
        // SAFETY: pointers originate from this list's arena.
        unsafe {
            self.list.arena.release(self.cell);
            self.list.arena.release(self.aux);
        }
        self.cell = std::ptr::null_mut();
        self.aux = std::ptr::null_mut();
    }
}

impl<T: Send + Sync, R: Reclaimer> Drop for PreparedInsert<'_, T, R> {
    fn drop(&mut self) {
        if !self.cell.is_null() {
            // Unpublished: releasing the cell cascades into the aux via
            // q.next if try_insert ever linked them; release both
            // allocation references.
            // SAFETY: we exclusively own the unpublished nodes.
            unsafe {
                self.list.arena.release(self.cell);
                self.list.arena.release(self.aux);
            }
        }
    }
}

impl<T: Send + Sync, R: Reclaimer> fmt::Debug for PreparedInsert<'_, T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("PreparedInsert { .. }")
    }
}
