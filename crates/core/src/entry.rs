//! Interior entry points: published counted shortcuts into a [`List`].
//!
//! §4.2 structures (hash tables) want to start a traversal in the middle
//! of a list instead of at `First`. An [`EntryRoot`] is a *structure
//! root* in the §5 sense — a counted link owned by the enclosing data
//! structure — that, once published, points at a designated cell (a
//! bucket sentinel). Opening a cursor from it ([`List::cursor_at`]) is
//! Fig. 6 `First` with the entry cell in the role of the first dummy.
//!
//! The lifecycle mirrors the lazy bucket initialization of split-ordered
//! hash tables:
//!
//! 1. the root starts null (unpublished);
//! 2. an initializer inserts (or finds) the designated cell and calls
//!    [`List::publish_entry`] — a counted CAS (`swing`) from null, so
//!    when several initializers race, **exactly one** publication wins
//!    and every loser's prospective count is released by the failed
//!    swing (no leak, no double-link);
//! 3. readers open cursors through [`List::cursor_at`];
//! 4. the owner calls [`List::retire_entry`] before dropping the list,
//!    returning the root's count.
//!
//! The caller must guarantee the entry cell is never deleted while the
//! root is published; sentinels that are never removed satisfy this by
//! construction. (A deleted entry cell would not be unsafe — the count
//! keeps it readable, cell persistence — but cursors opened from it
//! could start before list structure they can no longer reach.)

use std::fmt;

use valois_mem::{Link, Reclaimer};

use crate::cursor::Cursor;
use crate::list::List;
use crate::node::{Node, NodeKind};

/// A published, counted shortcut into a [`List`] (see the module docs).
///
/// Starts unpublished (null). Publication is a one-shot counted CAS via
/// [`List::publish_entry`]; the root then owns one count on the entry
/// cell until [`List::retire_entry`]. Dropping a still-published root
/// without retiring it leaks that count (the root itself cannot release
/// — it has no arena handle), so owners retire every root on teardown.
pub struct EntryRoot<T: Send + Sync> {
    pub(crate) link: Link<Node<T>>,
}

impl<T: Send + Sync> EntryRoot<T> {
    /// A fresh, unpublished root.
    pub fn new() -> Self {
        Self { link: Link::null() }
    }

    /// Whether a publication has landed (a relaxed peek — a false
    /// `false` only means the caller should take the initialization
    /// path, which re-checks through the CAS).
    pub fn is_published(&self) -> bool {
        !self.link.read().is_null()
    }
}

impl<T: Send + Sync> Default for EntryRoot<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + Sync> fmt::Debug for EntryRoot<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EntryRoot")
            .field("published", &self.is_published())
            .finish()
    }
}

impl<T: Send + Sync, R: Reclaimer> List<T, R> {
    /// Opens a cursor at the first position **after** the cell `root`
    /// points at, or `None` if the root is unpublished.
    pub fn cursor_at<'a>(&'a self, root: &EntryRoot<T>) -> Option<Cursor<'a, T, R>> {
        Cursor::at_entry(self, &root.link)
    }

    /// Publishes the cell `cursor` is visiting as `root`'s entry cell:
    /// a counted CAS from null. Returns `true` if this call's
    /// publication won; on `false` another publication was already in
    /// place and this call's prospective count has been released (the
    /// loser-releases discipline of the lazy-initialization race).
    ///
    /// # Panics
    ///
    /// Panics if `cursor` belongs to a different list or does not visit
    /// a normal cell (the end position and dummies are not publishable).
    pub fn publish_entry(&self, root: &EntryRoot<T>, cursor: &Cursor<'_, T, R>) -> bool {
        assert!(
            std::ptr::eq(self, cursor.list()),
            "cursor of a different list"
        );
        let target = cursor.target_ptr();
        // SAFETY: the cursor holds a counted reference on `target`, so
        // inspecting its kind is protected.
        let is_cell = !target.is_null() && unsafe { (*target).kind() == NodeKind::Cell };
        assert!(is_cell, "entry roots must point at a normal cell");
        // SAFETY: `root.link` is a counted link of this arena; the cursor
        // holds `target` so swing's increment targets a live node.
        // COUNT: on success the root's link owns one count on `target`
        // (released by `retire_entry`); on failure swing released the
        // prospective count itself.
        unsafe { self.arena().swing(&root.link, std::ptr::null_mut(), target) }
    }

    /// Re-points `root` at the cursor's current anchor (`pre_cell`) — the
    /// Träff & Pöter cached-cursor pattern: a per-thread slot remembers
    /// the last visited neighbourhood so the next operation can start
    /// there instead of at `First`. Returns `false` (slot untouched) when
    /// the anchor is a dummy, i.e. the cursor sits at the start of the
    /// list and caching would buy nothing.
    ///
    /// Unlike [`List::publish_entry`] this *overwrites*: the slot's
    /// previous count is released after the swap. Unlike bucket
    /// sentinels, a cached anchor **may be deleted** while the slot
    /// points at it — cell persistence keeps it (and its `back_link`
    /// chain) readable, and a cursor reopened from the slot must call
    /// [`Cursor::resume`] before use so it re-enters the live list at an
    /// undeleted predecessor (invariant I10 in docs/PROTOCOL.md).
    // INVARIANT: I10
    pub fn cache_entry(&self, root: &EntryRoot<T>, cursor: &Cursor<'_, T, R>) -> bool {
        assert!(
            std::ptr::eq(self, cursor.list()),
            "cursor of a different list"
        );
        let anchor = cursor.pre_cell_ptr();
        // SAFETY: the cursor holds a counted reference on its `pre_cell`,
        // so inspecting its kind is protected.
        if anchor.is_null() || unsafe { (*anchor).kind() } != NodeKind::Cell {
            return false;
        }
        // SAFETY: `anchor` is held by the cursor, so incr_ref targets a
        // live node; the link's previous count transfers to us on the
        // swap and releasing it is the transfer's obligation.
        // COUNT: the incr_ref's count transfers to the slot's link
        // (released by the next `cache_entry`/`retire_entry`).
        unsafe {
            self.arena().incr_ref(anchor);
            let old = root.link.swap(anchor);
            self.arena().release(old);
        }
        true
    }

    /// Reads the entry cell's value under protection, or `None` if the
    /// root is unpublished.
    pub fn with_entry<O>(&self, root: &EntryRoot<T>, f: impl FnOnce(&T) -> O) -> Option<O> {
        // Epoch backend: the guard is the read's protection window.
        let _pin = self.arena().pin();
        // SAFETY: `root.link` is a counted link of this arena.
        let p = unsafe { self.arena().safe_read(&root.link) };
        if p.is_null() {
            return None;
        }
        // SAFETY: `p` is held (protected); only publishable cells reach a
        // root (enforced by `publish_entry`), and cells carry values.
        let out = unsafe {
            let out = f((*p).value());
            self.arena().unprotect(p);
            out
        };
        Some(out)
    }

    /// Unpublishes `root` and returns its count. Idempotent; the owner's
    /// teardown path (called before dropping the list so the root's
    /// count does not keep the entry cell — and everything it links —
    /// alive past the cascade).
    pub fn retire_entry(&self, root: &EntryRoot<T>) {
        let old = root.link.swap(std::ptr::null_mut());
        // SAFETY: the link's count transfers to us on the swap; releasing
        // it is the transfer's obligation. Null (never/already retired)
        // is a no-op.
        unsafe { self.arena().release(old) };
    }

    /// [`List::audit_refcounts`] for lists with published entry roots:
    /// each published root legitimately holds one count on its entry
    /// cell that the in-list sweep cannot see, so it is added to the
    /// expected in-degree before comparing.
    ///
    /// # Errors
    ///
    /// Describes the first mismatching node.
    pub fn audit_refcounts_with_entries<'r>(
        &mut self,
        roots: impl IntoIterator<Item = &'r EntryRoot<T>>,
    ) -> Result<(), String>
    where
        T: 'r,
    {
        let extra: Vec<*mut Node<T>> = roots
            .into_iter()
            .map(|r| r.link.read())
            .filter(|p| !p.is_null())
            .collect();
        self.audit_refcounts_extra(&extra)
    }
}
