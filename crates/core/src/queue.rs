//! The lock-free FIFO queue from the paper's companion work
//! (Valois, *"Implementing Lock-Free Queues"*, PDCS 1994 — reference
//! \[27\]; §2 of the PODC paper frames the queue as the most-studied
//! lock-free type).
//!
//! The queue is a singly-linked chain with a *dummy head*: `head` points at
//! the dummy, the first value lives in the dummy's successor, and `tail` is
//! a **hint** that may lag behind the true last node. Enqueue CASes the
//! last node's `next` from null to the new cell, then opportunistically
//! swings the tail hint; dequeue CASes `head` forward, and the winner
//! uniquely consumes the value of the node that just became the new dummy.
//!
//! The §5 memory manager is what makes the design work — the same property
//! the list exploits: a dequeued dummy keeps its `next` intact (*cell
//! persistence*), so a stale tail hint can always walk forward to the true
//! tail, and reference counting prevents the classic ABA on the head CAS.

use std::fmt;

use valois_mem::{AllocError, Arena, ArenaConfig, Link, MemStats};

use crate::node::{Node, NodeKind};

/// A lock-free multi-producer multi-consumer FIFO queue (\[27\]).
///
/// # Example
///
/// ```
/// use valois_core::queue::FifoQueue;
///
/// let q: FifoQueue<u32> = FifoQueue::new();
/// q.enqueue(1).unwrap();
/// q.enqueue(2).unwrap();
/// assert_eq!(q.dequeue(), Some(1));
/// assert_eq!(q.dequeue(), Some(2));
/// assert_eq!(q.dequeue(), None);
/// ```
pub struct FifoQueue<T: Send + Sync> {
    arena: Arena<Node<T>>,
    /// Counted root: the current dummy node.
    head: Link<Node<T>>,
    /// Counted root: a node from which the true last node is reachable
    /// (may lag).
    tail: Link<Node<T>>,
}

// SAFETY: all shared state flows through the arena protocol and the two
// counted roots.
unsafe impl<T: Send + Sync> Send for FifoQueue<T> {}
// SAFETY: as above — the roots arbitrate all shared mutation via CAS.
unsafe impl<T: Send + Sync> Sync for FifoQueue<T> {}

impl<T: Send + Sync> FifoQueue<T> {
    /// Creates an empty queue with the default arena configuration.
    pub fn new() -> Self {
        Self::with_config(ArenaConfig::default())
    }

    /// Creates an empty queue with `config`.
    pub fn with_config(config: ArenaConfig) -> Self {
        let config = ArenaConfig {
            initial_capacity: config.initial_capacity.max(8),
            ..config
        };
        let arena: Arena<Node<T>> = Arena::with_config(config);
        let dummy = arena.alloc().expect("pool too small for a queue");
        let queue = Self {
            arena,
            head: Link::null(),
            tail: Link::null(),
        };
        // SAFETY: single-threaded construction, fresh exclusive node.
        unsafe {
            (*dummy).set_kind(NodeKind::FirstDummy);
            queue.arena.store_link(&queue.head, dummy);
            queue.arena.store_link(&queue.tail, dummy);
            queue.arena.release(dummy);
        }
        queue
    }

    /// Appends `value` at the tail.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when a capped node pool is exhausted (the
    /// value is returned inside the error path by dropping it — use an
    /// uncapped arena to avoid this).
    pub fn enqueue(&self, value: T) -> Result<(), AllocError> {
        let q = self.arena.alloc()?;
        // SAFETY: protocol invariants: every dereferenced pointer below is
        // counted; head/tail are counted roots of this arena.
        unsafe {
            (*q).init_value(value);
            let mut t = self.arena.safe_read(&self.tail);
            // WAIT-FREE: the append CAS fails only when another enqueuer
            // linked its node first (system-wide progress); the re-walk
            // resumes from the current position, not from the head.
            loop {
                // Walk to the true last node (the tail hint may lag; a
                // dequeued dummy's next persists, so the walk always
                // reaches the live chain).
                loop {
                    let next = self.arena.safe_read(&(*t).next);
                    if next.is_null() {
                        break;
                    }
                    self.arena.release(t);
                    t = next;
                }
                // The linearization point: CAS the last node's next.
                if self.arena.swing(&(*t).next, std::ptr::null_mut(), q) {
                    break;
                }
                // Someone else appended first; re-walk from where we are.
            }
            // Fix the tail hint: swing it from whatever it currently holds
            // to our freshly-linked node (best effort — a failed CAS means
            // another enqueuer advanced it). Without this the hint would
            // stick forever once it lagged, every enqueue would walk the
            // whole dequeued backlog, and the hint's counted reference
            // would keep that backlog alive.
            let hint = self.arena.safe_read(&self.tail);
            if hint != q {
                let _ = self.arena.swing(&self.tail, hint, q);
            }
            self.arena.release(hint);
            self.arena.release(t);
            self.arena.release(q);
        }
        Ok(())
    }

    /// Removes and returns the oldest value, or `None` if the queue is
    /// empty at the linearization point.
    pub fn dequeue(&self) -> Option<T> {
        // SAFETY: protocol invariants as in `enqueue`.
        unsafe {
            // WAIT-FREE: the head CAS fails only when another dequeuer won
            // (system-wide progress); each retry re-reads a fresh head.
            loop {
                let h = self.arena.safe_read(&self.head);
                let next = self.arena.safe_read(&(*h).next);
                if next.is_null() {
                    self.arena.release(h);
                    return None; // empty (head is the dummy)
                }
                // The linearization point: advance head. The winner gains
                // unique consume rights over `next`'s value (it becomes
                // the new dummy).
                if self.arena.swing(&self.head, h, next) {
                    let value = (*next).take_value();
                    self.arena.release(h);
                    self.arena.release(next);
                    return Some(value);
                }
                self.arena.release(h);
                self.arena.release(next);
            }
        }
    }

    /// Whether the queue appears empty right now.
    pub fn is_empty(&self) -> bool {
        // SAFETY: head is a counted root; h is held during the read.
        unsafe {
            let h = self.arena.safe_read(&self.head);
            let empty = (*h).next.read().is_null();
            self.arena.release(h);
            empty
        }
    }

    /// Number of queued values (O(n) snapshot).
    pub fn len(&self) -> usize {
        let mut n = 0;
        // SAFETY: protected walk over counted links.
        unsafe {
            let mut p = self.arena.safe_read(&self.head);
            loop {
                let next = self.arena.safe_read(&(*p).next);
                self.arena.release(p);
                if next.is_null() {
                    break;
                }
                p = next;
                if (*p).kind() == NodeKind::Cell {
                    n += 1;
                }
            }
        }
        n
    }

    /// Memory-protocol counters (§5 traffic).
    pub fn mem_stats(&self) -> MemStats {
        self.arena.stats()
    }
}

impl<T: Send + Sync> Default for FifoQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + Sync> Drop for FifoQueue<T> {
    fn drop(&mut self) {
        // SAFETY: &mut self — quiescent; release the roots and cascade.
        unsafe {
            let h = self.head.swap(std::ptr::null_mut());
            let t = self.tail.swap(std::ptr::null_mut());
            self.arena.release(h);
            self.arena.release(t);
        }
        debug_assert_eq!(self.arena.live_nodes(), 0, "queue chain is acyclic");
    }
}

impl<T: Send + Sync> fmt::Debug for FifoQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FifoQueue")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valois_sync::shim::atomic::{AtomicU64, Ordering};

    #[test]
    fn fifo_order_single_thread() {
        let q: FifoQueue<u32> = FifoQueue::new();
        assert!(q.is_empty());
        for i in 0..100 {
            q.enqueue(i).unwrap();
        }
        assert_eq!(q.len(), 100);
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_enqueue_dequeue() {
        let q: FifoQueue<u32> = FifoQueue::new();
        q.enqueue(1).unwrap();
        q.enqueue(2).unwrap();
        assert_eq!(q.dequeue(), Some(1));
        q.enqueue(3).unwrap();
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), None);
        q.enqueue(4).unwrap();
        assert_eq!(q.dequeue(), Some(4));
    }

    #[test]
    fn nodes_recycle_through_small_pool() {
        let q: FifoQueue<u32> =
            FifoQueue::with_config(ArenaConfig::new().initial_capacity(8).max_nodes(8));
        for round in 0..200 {
            q.enqueue(round).unwrap();
            assert_eq!(q.dequeue(), Some(round));
        }
        assert_eq!(q.mem_stats().allocs, 201); // dummy + 200 cells
    }

    #[test]
    fn single_producer_order_preserved_under_concurrent_consumers() {
        let q: FifoQueue<u64> = FifoQueue::new();
        let consumed = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            let q = &q;
            let consumed = &consumed;
            s.spawn(move || {
                for i in 0..10_000u64 {
                    q.enqueue(i).unwrap();
                }
            });
            for _ in 0..3 {
                s.spawn(move || {
                    let mut local = Vec::new();
                    let mut misses = 0;
                    while misses < 10_000 {
                        match q.dequeue() {
                            Some(v) => {
                                misses = 0;
                                local.push(v);
                            }
                            None => {
                                misses += 1;
                                std::thread::yield_now();
                            }
                        }
                        if local.len() + consumed.lock().unwrap().len() >= 10_000 {
                            break;
                        }
                    }
                    consumed.lock().unwrap().extend(local);
                });
            }
        });
        // Drain leftovers.
        let mut all = consumed.into_inner().unwrap();
        while let Some(v) = q.dequeue() {
            all.push(v);
        }
        assert_eq!(all.len(), 10_000, "every value dequeued exactly once");
        all.sort_unstable();
        assert_eq!(all, (0..10_000).collect::<Vec<u64>>());
    }

    #[test]
    fn mpmc_conservation_and_exactly_once() {
        let q: FifoQueue<u64> = FifoQueue::new();
        let dequeued_sum = AtomicU64::new(0);
        let dequeued_n = AtomicU64::new(0);
        let producers = 4u64;
        let per = 5_000u64;
        std::thread::scope(|s| {
            let q = &q;
            let dequeued_sum = &dequeued_sum;
            let dequeued_n = &dequeued_n;
            for p in 0..producers {
                s.spawn(move || {
                    for i in 0..per {
                        q.enqueue(p * per + i).unwrap();
                    }
                });
            }
            for _ in 0..3 {
                s.spawn(move || loop {
                    match q.dequeue() {
                        Some(v) => {
                            dequeued_sum.fetch_add(v, Ordering::Relaxed);
                            dequeued_n.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            if dequeued_n.load(Ordering::Relaxed) >= producers * per {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        while let Some(v) = q.dequeue() {
            dequeued_sum.fetch_add(v, Ordering::Relaxed);
            dequeued_n.fetch_add(1, Ordering::Relaxed);
        }
        let n = producers * per;
        assert_eq!(dequeued_n.load(Ordering::Relaxed), n);
        assert_eq!(dequeued_sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn per_producer_subsequence_order() {
        // FIFO linearizability implies each producer's values come out in
        // its insertion order.
        let q: FifoQueue<(u8, u32)> = FifoQueue::new();
        let drained = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            let q = &q;
            for p in 0..4u8 {
                s.spawn(move || {
                    for i in 0..2_000u32 {
                        q.enqueue((p, i)).unwrap();
                    }
                });
            }
            let drained = &drained;
            s.spawn(move || {
                let mut got = 0;
                let mut local = Vec::new();
                while got < 8_000 {
                    if let Some(v) = q.dequeue() {
                        got += 1;
                        local.push(v);
                    } else {
                        std::thread::yield_now();
                    }
                }
                drained.lock().unwrap().extend(local);
            });
        });
        let all = drained.into_inner().unwrap();
        assert_eq!(all.len(), 8_000);
        let mut last = [None::<u32>; 4];
        for (p, i) in all {
            if let Some(prev) = last[p as usize] {
                assert!(i > prev, "producer {p} order violated: {i} after {prev}");
            }
            last[p as usize] = Some(i);
        }
    }

    #[test]
    fn drop_with_queued_values_releases_them() {
        use valois_sync::shim::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let q: FifoQueue<Probe> = FifoQueue::new();
            for _ in 0..10 {
                q.enqueue(Probe).unwrap();
            }
            drop(q.dequeue()); // one consumed
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 10, "9 queued + 1 consumed");
    }

    #[test]
    fn tail_hint_recovers_after_lag() {
        // Force tail lag: enqueue from many threads (hint CAS failures
        // leave the hint behind) and verify the walk always recovers.
        let q: FifoQueue<u64> = FifoQueue::new();
        std::thread::scope(|s| {
            let q = &q;
            for t in 0..6u64 {
                s.spawn(move || {
                    for i in 0..2_000 {
                        q.enqueue(t * 10_000 + i).unwrap();
                    }
                });
            }
        });
        assert_eq!(q.len(), 12_000);
        let mut n = 0;
        while q.dequeue().is_some() {
            n += 1;
        }
        assert_eq!(n, 12_000);
    }
}
