//! The list's node type: normal cells, auxiliary nodes, and the two
//! dummy cells (paper §3, Fig. 4).
//!
//! The paper distinguishes *normal cells* (carrying an item) from
//! *auxiliary nodes* ("a cell that contains only a `next` field"). Both are
//! backed by the same arena node type here — the §5.2 free list requires
//! all cells of one size class to be interchangeable — discriminated by a
//! kind tag set between `Alloc` and publication.

use std::mem::MaybeUninit;
use valois_sync::shim::atomic::{AtomicU8, Ordering};
use valois_sync::shim::cell::UnsafeCell;

use valois_mem::{Link, Managed, NodeHeader, ReclaimedLinks};

/// Node discriminant. Stored as an atomic so invariant checkers may inspect
/// nodes at any time; it is only *written* while the writer has exclusive
/// ownership (post-alloc, pre-publish, or at reclamation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum NodeKind {
    /// On the free list (or drained, awaiting push).
    Free = 0,
    /// Auxiliary node: only the `next` field is meaningful.
    Aux = 1,
    /// Normal cell carrying a value.
    Cell = 2,
    /// The first dummy cell (pointed at by the `First` root).
    FirstDummy = 3,
    /// The last dummy cell (pointed at by the `Last` root).
    LastDummy = 4,
}

impl NodeKind {
    fn from_u8(raw: u8) -> Self {
        match raw {
            1 => Self::Aux,
            2 => Self::Cell,
            3 => Self::FirstDummy,
            4 => Self::LastDummy,
            _ => Self::Free,
        }
    }

    /// "Normal cell" in the paper's sense: an item cell or a dummy —
    /// anything that is *not* an auxiliary node. (§3: "the list also
    /// contains two dummy cells as the first and last normal cells".)
    pub(crate) fn is_normal_cell(self) -> bool {
        matches!(self, Self::Cell | Self::FirstDummy | Self::LastDummy)
    }
}

/// A list node: either a normal cell, an auxiliary node, or a dummy.
///
/// Layout follows §2.1/§3: a `next` link, a `back_link` (added by §3 for
/// `TryDelete`'s recovery walk), the §5.1 header (`refct` + `claim`), and
/// an inline value slot used only by `Cell` nodes.
pub(crate) struct Node<T> {
    header: NodeHeader,
    kind: AtomicU8,
    /// Counted link to the successor. Doubles as the free-list link when
    /// the node is free (Fig. 18 line 2 reuses `next`).
    pub(crate) next: Link<Node<T>>,
    /// Counted link set by `TryDelete` (Fig. 10 line 6) to the cell that
    /// preceded this one when it was deleted.
    pub(crate) back_link: Link<Node<T>>,
    value: UnsafeCell<MaybeUninit<T>>,
}

// SAFETY: the value slot is only accessed under the protocol's ownership
// rules (exclusive at init/drop; shared reads only while the reader holds a
// counted reference and the node is a Cell), so a Node is as thread-safe as
// T itself.
unsafe impl<T: Send + Sync> Send for Node<T> {}
// SAFETY: as above — shared reads require a counted reference.
unsafe impl<T: Send + Sync> Sync for Node<T> {}

impl<T> Default for Node<T> {
    fn default() -> Self {
        Self {
            header: NodeHeader::new_free(),
            kind: AtomicU8::new(NodeKind::Free as u8),
            next: Link::null(),
            back_link: Link::null(),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }
}

impl<T> Node<T> {
    pub(crate) fn kind(&self) -> NodeKind {
        // ORDER: Acquire — pairs with `set_kind`'s Release so a reader
        // that observes a kind also observes the initialization (value
        // write, link resets) that preceded the kind's publication.
        NodeKind::from_u8(self.kind.load(Ordering::Acquire))
    }

    /// Sets the discriminant. Caller must have exclusive logical ownership
    /// (freshly allocated, unpublished).
    pub(crate) fn set_kind(&self, kind: NodeKind) {
        // ORDER: Release — the discriminant is the last word written
        // during init (and the first during drain); it must publish every
        // prior field write to `kind()`'s Acquire load.
        self.kind.store(kind as u8, Ordering::Release);
    }

    pub(crate) fn is_aux(&self) -> bool {
        self.kind() == NodeKind::Aux
    }

    pub(crate) fn is_normal_cell(&self) -> bool {
        self.kind().is_normal_cell()
    }

    /// Writes the value slot and marks the node a `Cell`.
    ///
    /// # Safety
    ///
    /// Caller must have exclusive ownership (unpublished) and the slot must
    /// be vacant.
    pub(crate) unsafe fn init_value(&self, value: T) {
        debug_assert_eq!(self.kind(), NodeKind::Free);
        (*self.value.get()).write(value);
        self.set_kind(NodeKind::Cell);
    }

    /// Reads the value of a `Cell`.
    ///
    /// # Safety
    ///
    /// Caller must hold a counted reference (so the value cannot be dropped
    /// concurrently) and the node must be a `Cell`. Cell persistence (§2.2)
    /// makes this legal even after the cell is deleted from the list.
    pub(crate) unsafe fn value(&self) -> &T {
        debug_assert_eq!(self.kind(), NodeKind::Cell);
        (*self.value.get()).assume_init_ref()
    }

    /// Moves the value out of a `Cell`, demoting it to a dummy (used by the
    /// queue's dequeue, where the winner of the head CAS gains the unique
    /// right to consume the cell's value).
    ///
    /// # Safety
    ///
    /// Caller must hold a counted reference, the node must be a `Cell`, and
    /// the caller must have won unique consume rights (no other process
    /// will ever read this cell's value slot).
    pub(crate) unsafe fn take_value(&self) -> T {
        debug_assert_eq!(self.kind(), NodeKind::Cell);
        // Demote first so a (protocol-violating) racer would read the kind
        // change before the moved-out slot.
        self.set_kind(NodeKind::FirstDummy);
        (*self.value.get()).assume_init_read()
    }
}

impl<T: Send + Sync> Managed for Node<T> {
    fn header(&self) -> &NodeHeader {
        &self.header
    }

    fn free_link(&self) -> &Link<Self> {
        &self.next
    }

    fn drain_links(&self) -> ReclaimedLinks<Self> {
        // Exclusive: we are the claim winner at count zero.
        let mut links = ReclaimedLinks::new();
        links.push(self.next.swap(std::ptr::null_mut()));
        links.push(self.back_link.swap(std::ptr::null_mut()));
        if self.kind() == NodeKind::Cell {
            // SAFETY: exclusive ownership; the slot was initialized when the
            // node became a Cell and is dropped exactly once here.
            unsafe { (*self.value.get()).assume_init_drop() };
        }
        self.set_kind(NodeKind::Free);
        links
    }

    fn reset_for_alloc(&self) {
        // `next` held the free-list link whose count was transferred to the
        // free-list head at pop: null it *without* releasing.
        self.next.write(std::ptr::null_mut());
        self.back_link.write(std::ptr::null_mut());
        debug_assert_eq!(self.kind(), NodeKind::Free);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valois_mem::{Arena, ArenaConfig};

    #[test]
    fn kind_roundtrip() {
        let n: Node<u32> = Node::default();
        assert_eq!(n.kind(), NodeKind::Free);
        n.set_kind(NodeKind::Aux);
        assert!(n.is_aux());
        assert!(!n.is_normal_cell());
        n.set_kind(NodeKind::Cell);
        assert!(n.is_normal_cell());
    }

    #[test]
    fn dummies_are_normal_cells() {
        assert!(NodeKind::FirstDummy.is_normal_cell());
        assert!(NodeKind::LastDummy.is_normal_cell());
        assert!(!NodeKind::Aux.is_normal_cell());
        assert!(!NodeKind::Free.is_normal_cell());
    }

    #[test]
    fn value_lifecycle_drops_exactly_once() {
        use valois_sync::shim::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        // SAFETY in test: single-threaded exclusive use.
        unsafe impl Send for Probe {}
        unsafe impl Sync for Probe {}

        let arena: Arena<Node<Probe>> =
            Arena::with_config(ArenaConfig::new().initial_capacity(2).max_nodes(2));
        let p = arena.alloc().unwrap();
        unsafe {
            (*p).init_value(Probe);
            assert_eq!((*p).kind(), NodeKind::Cell);
            arena.release(p);
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 1, "reclaim drops the value");
        // Recycle as an aux node: no second drop.
        let q = arena.alloc().unwrap();
        assert_eq!(q, p);
        unsafe {
            (*q).set_kind(NodeKind::Aux);
            arena.release(q);
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drain_reports_both_links() {
        let arena: Arena<Node<u32>> =
            Arena::with_config(ArenaConfig::new().initial_capacity(4).max_nodes(4));
        let a = arena.alloc().unwrap();
        let b = arena.alloc().unwrap();
        let c = arena.alloc().unwrap();
        unsafe {
            (*a).set_kind(NodeKind::Aux);
            arena.store_link(&(*a).next, b);
            arena.store_link(&(*a).back_link, c);
            arena.release(b);
            arena.release(c);
            // b and c are now held alive solely by a's links.
            arena.release(a);
        }
        assert_eq!(
            arena.live_nodes(),
            0,
            "drain must release both link targets"
        );
    }
}
