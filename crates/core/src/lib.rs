//! The lock-free singly-linked list of Valois, *"Lock-Free Linked Lists
//! Using Compare-and-Swap"* (PODC 1995) — paper §3.
//!
//! This crate implements the paper's primary contribution: a singly-linked
//! list that any number of threads may traverse, insert into, and delete
//! from at arbitrary positions, **without mutual exclusion**, using only
//! single-word `Compare&Swap` (plus `Test&Set`/`Fetch&Add`, themselves
//! CAS-expressible). The two classic two-word hazards — an insert adjacent
//! to a concurrent delete being lost (Fig. 2) and adjacent deletes undoing
//! each other (Fig. 3) — are defeated by *auxiliary nodes*: every normal
//! cell has an auxiliary node as predecessor and successor, so insertion
//! and deletion CAS distinct words.
//!
//! Memory is managed by `valois-mem` (the paper's §5 `SafeRead`/`Release`
//! protocol), which also solves the ABA problem and *cell persistence*
//! (deleted cells stay readable through cursors that still visit them).
//!
//! # Example
//!
//! ```
//! use valois_core::List;
//!
//! let list: List<u64> = List::new();
//! std::thread::scope(|s| {
//!     let list = &list;
//!     for t in 0..4u64 {
//!         s.spawn(move || {
//!             let mut cur = list.cursor();
//!             cur.insert(t).unwrap();
//!         });
//!     }
//! });
//! assert_eq!(list.len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adt;
pub mod channel;
pub mod cursor;
pub mod entry;
pub mod list;
mod node;
pub mod queue;
mod stats;

pub use adt::{PriorityQueue, Stack};
pub use cursor::Cursor;
pub use entry::EntryRoot;
pub use list::{AuxChainReport, Iter, List, PreparedInsert};
pub use queue::FifoQueue;
pub use stats::ListStats;
pub use valois_mem::{AllocError, ArenaConfig, Epoch, MemStats, Reclaimer, RefCount};
