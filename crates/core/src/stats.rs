//! List-level operation statistics (experiments E3 and E7).

use std::fmt;
use valois_sync::shim::atomic::{AtomicU64, Ordering};

/// Live counters owned by a [`List`](crate::List).
#[derive(Default)]
pub(crate) struct ListCounters {
    pub(crate) updates: AtomicU64,
    pub(crate) aux_unlinked: AtomicU64,
    pub(crate) aux_skipped: AtomicU64,
    pub(crate) next_steps: AtomicU64,
    pub(crate) insert_attempts: AtomicU64,
    pub(crate) insert_successes: AtomicU64,
    pub(crate) delete_attempts: AtomicU64,
    pub(crate) delete_successes: AtomicU64,
    pub(crate) backlink_hops: AtomicU64,
    pub(crate) chain_cleanup_retries: AtomicU64,
}

impl ListCounters {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ListStats {
        ListStats {
            updates: self.updates.load(Ordering::Relaxed),
            aux_unlinked: self.aux_unlinked.load(Ordering::Relaxed),
            aux_skipped: self.aux_skipped.load(Ordering::Relaxed),
            next_steps: self.next_steps.load(Ordering::Relaxed),
            insert_attempts: self.insert_attempts.load(Ordering::Relaxed),
            insert_successes: self.insert_successes.load(Ordering::Relaxed),
            delete_attempts: self.delete_attempts.load(Ordering::Relaxed),
            delete_successes: self.delete_successes.load(Ordering::Relaxed),
            backlink_hops: self.backlink_hops.load(Ordering::Relaxed),
            chain_cleanup_retries: self.chain_cleanup_retries.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for ListCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// Point-in-time snapshot of a list's operation counters.
///
/// The "extra work" quantities of the §4.1 amortized analysis are directly
/// observable here: failed `TryInsert`/`TryDelete` attempts
/// ([`ListStats::insert_retries`], [`ListStats::delete_retries`]) and
/// auxiliary-node traversal overhead ([`ListStats::aux_skipped`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ListStats {
    /// Cursor `Update` calls (Fig. 5).
    pub updates: u64,
    /// Adjacent auxiliary nodes removed by `Update` line 7.
    pub aux_unlinked: u64,
    /// Auxiliary nodes stepped over during `Update`.
    pub aux_skipped: u64,
    /// Successful `Next` steps (Fig. 7).
    pub next_steps: u64,
    /// `TryInsert` attempts (Fig. 9).
    pub insert_attempts: u64,
    /// `TryInsert` successes.
    pub insert_successes: u64,
    /// `TryDelete` attempts (Fig. 10).
    pub delete_attempts: u64,
    /// `TryDelete` successes.
    pub delete_successes: u64,
    /// Back-link hops performed during `TryDelete` recovery (Fig. 10
    /// lines 8–11).
    pub backlink_hops: u64,
    /// CAS retries in `TryDelete`'s auxiliary-chain cleanup loop
    /// (Fig. 10 lines 17–21).
    pub chain_cleanup_retries: u64,
}

impl ListStats {
    /// Failed `TryInsert` attempts (the §4.1 retry count).
    pub fn insert_retries(&self) -> u64 {
        self.insert_attempts.saturating_sub(self.insert_successes)
    }

    /// Failed `TryDelete` attempts.
    pub fn delete_retries(&self) -> u64 {
        self.delete_attempts.saturating_sub(self.delete_successes)
    }

    /// Component-wise difference (`self - earlier`), saturating at zero.
    pub fn since(&self, earlier: &ListStats) -> ListStats {
        ListStats {
            updates: self.updates.saturating_sub(earlier.updates),
            aux_unlinked: self.aux_unlinked.saturating_sub(earlier.aux_unlinked),
            aux_skipped: self.aux_skipped.saturating_sub(earlier.aux_skipped),
            next_steps: self.next_steps.saturating_sub(earlier.next_steps),
            insert_attempts: self.insert_attempts.saturating_sub(earlier.insert_attempts),
            insert_successes: self
                .insert_successes
                .saturating_sub(earlier.insert_successes),
            delete_attempts: self.delete_attempts.saturating_sub(earlier.delete_attempts),
            delete_successes: self
                .delete_successes
                .saturating_sub(earlier.delete_successes),
            backlink_hops: self.backlink_hops.saturating_sub(earlier.backlink_hops),
            chain_cleanup_retries: self
                .chain_cleanup_retries
                .saturating_sub(earlier.chain_cleanup_retries),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retries_are_attempts_minus_successes() {
        let s = ListStats {
            insert_attempts: 10,
            insert_successes: 7,
            delete_attempts: 5,
            delete_successes: 5,
            ..ListStats::default()
        };
        assert_eq!(s.insert_retries(), 3);
        assert_eq!(s.delete_retries(), 0);
    }

    #[test]
    fn since_subtracts() {
        let a = ListStats {
            updates: 10,
            aux_skipped: 4,
            ..ListStats::default()
        };
        let b = ListStats {
            updates: 6,
            aux_skipped: 4,
            ..ListStats::default()
        };
        let d = a.since(&b);
        assert_eq!(d.updates, 4);
        assert_eq!(d.aux_skipped, 0);
    }

    #[test]
    fn counters_snapshot() {
        let c = ListCounters::default();
        ListCounters::bump(&c.updates);
        ListCounters::bump(&c.insert_attempts);
        ListCounters::bump(&c.insert_successes);
        let s = c.snapshot();
        assert_eq!(s.updates, 1);
        assert_eq!(s.insert_retries(), 0);
    }
}
