//! List-level operation statistics (experiments E3 and E7).
//!
//! Like the memory-protocol counters in `valois-mem`, the list counters
//! used to be a single set of relaxed atomics — one shared cache line that
//! every `Update`/`Next` on every thread bumped, a measurable fraction of
//! the per-hop cost in experiment E8. They are now [`Sharded`]
//! (cache-line-padded per-shard atomics, summed at snapshot time), and the
//! cursor batches its events in a plain-integer [`ListTally`] folded into
//! the shards when the cursor drops.

use std::fmt;
use valois_sync::sharded::Sharded;
use valois_sync::shim::atomic::{AtomicU64, Ordering};

/// One shard of the list's counters (all twelve live on one padded line).
#[derive(Default)]
pub(crate) struct ListShard {
    pub(crate) updates: AtomicU64,
    pub(crate) aux_unlinked: AtomicU64,
    pub(crate) aux_skipped: AtomicU64,
    pub(crate) next_steps: AtomicU64,
    pub(crate) insert_attempts: AtomicU64,
    pub(crate) insert_successes: AtomicU64,
    pub(crate) delete_attempts: AtomicU64,
    pub(crate) delete_successes: AtomicU64,
    pub(crate) backlink_hops: AtomicU64,
    pub(crate) chain_cleanup_retries: AtomicU64,
    pub(crate) resumes: AtomicU64,
    pub(crate) resume_hops: AtomicU64,
}

/// Sharded live counters owned by a [`List`](crate::List).
pub(crate) struct ListCounters {
    shards: Sharded<ListShard>,
}

impl Default for ListCounters {
    fn default() -> Self {
        Self {
            shards: Sharded::new(),
        }
    }
}

impl ListCounters {
    /// Adds 1 to one counter on the current thread's shard. Production
    /// paths batch through [`ListTally`] + [`ListCounters::absorb`]
    /// instead; this direct hook remains for tests.
    #[cfg(test)]
    pub(crate) fn bump(&self, pick: impl FnOnce(&ListShard) -> &AtomicU64) {
        pick(self.shards.get()).fetch_add(1, Ordering::Relaxed);
    }

    /// Folds a cursor's batched events into the current thread's shard and
    /// clears the tally. One `fetch_add` per non-zero field.
    pub(crate) fn absorb(&self, tally: &mut ListTally) {
        let shard = self.shards.get();
        for (count, counter) in [
            (tally.updates, &shard.updates),
            (tally.aux_unlinked, &shard.aux_unlinked),
            (tally.aux_skipped, &shard.aux_skipped),
            (tally.next_steps, &shard.next_steps),
            (tally.insert_attempts, &shard.insert_attempts),
            (tally.insert_successes, &shard.insert_successes),
            (tally.delete_attempts, &shard.delete_attempts),
            (tally.delete_successes, &shard.delete_successes),
            (tally.backlink_hops, &shard.backlink_hops),
            (tally.chain_cleanup_retries, &shard.chain_cleanup_retries),
            (tally.resumes, &shard.resumes),
            (tally.resume_hops, &shard.resume_hops),
        ] {
            if count != 0 {
                counter.fetch_add(count, Ordering::Relaxed);
            }
        }
        *tally = ListTally::default();
    }

    /// Takes a point-in-time snapshot (sums every shard).
    pub(crate) fn snapshot(&self) -> ListStats {
        let mut s = ListStats::default();
        for shard in self.shards.shards() {
            s.updates += shard.updates.load(Ordering::Relaxed);
            s.aux_unlinked += shard.aux_unlinked.load(Ordering::Relaxed);
            s.aux_skipped += shard.aux_skipped.load(Ordering::Relaxed);
            s.next_steps += shard.next_steps.load(Ordering::Relaxed);
            s.insert_attempts += shard.insert_attempts.load(Ordering::Relaxed);
            s.insert_successes += shard.insert_successes.load(Ordering::Relaxed);
            s.delete_attempts += shard.delete_attempts.load(Ordering::Relaxed);
            s.delete_successes += shard.delete_successes.load(Ordering::Relaxed);
            s.backlink_hops += shard.backlink_hops.load(Ordering::Relaxed);
            s.chain_cleanup_retries += shard.chain_cleanup_retries.load(Ordering::Relaxed);
            s.resumes += shard.resumes.load(Ordering::Relaxed);
            s.resume_hops += shard.resume_hops.load(Ordering::Relaxed);
        }
        s
    }
}

impl fmt::Debug for ListCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// A cursor-private batch of list-operation events: plain integer adds on
/// the hot path, folded into the sharded counters when the cursor drops
/// (or via `Cursor::flush_stats`). Until then the events are invisible to
/// [`List::stats`](crate::List::stats).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ListTally {
    pub(crate) updates: u64,
    pub(crate) aux_unlinked: u64,
    pub(crate) aux_skipped: u64,
    pub(crate) next_steps: u64,
    pub(crate) insert_attempts: u64,
    pub(crate) insert_successes: u64,
    pub(crate) delete_attempts: u64,
    pub(crate) delete_successes: u64,
    pub(crate) backlink_hops: u64,
    pub(crate) chain_cleanup_retries: u64,
    pub(crate) resumes: u64,
    pub(crate) resume_hops: u64,
}

impl ListTally {
    pub(crate) fn is_empty(&self) -> bool {
        let Self {
            updates,
            aux_unlinked,
            aux_skipped,
            next_steps,
            insert_attempts,
            insert_successes,
            delete_attempts,
            delete_successes,
            backlink_hops,
            chain_cleanup_retries,
            resumes,
            resume_hops,
        } = *self;
        updates
            | aux_unlinked
            | aux_skipped
            | next_steps
            | insert_attempts
            | insert_successes
            | delete_attempts
            | delete_successes
            | backlink_hops
            | chain_cleanup_retries
            | resumes
            | resume_hops
            == 0
    }
}

/// Point-in-time snapshot of a list's operation counters.
///
/// The "extra work" quantities of the §4.1 amortized analysis are directly
/// observable here: failed `TryInsert`/`TryDelete` attempts
/// ([`ListStats::insert_retries`], [`ListStats::delete_retries`]) and
/// auxiliary-node traversal overhead ([`ListStats::aux_skipped`]).
///
/// Cursors batch their events thread-locally and fold them in when dropped,
/// so a still-live cursor's recent operations may not be visible yet (call
/// `Cursor::flush_stats` to force them out).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ListStats {
    /// Cursor `Update` calls (Fig. 5).
    pub updates: u64,
    /// Adjacent auxiliary nodes removed by `Update` line 7.
    pub aux_unlinked: u64,
    /// Auxiliary nodes stepped over during `Update`.
    pub aux_skipped: u64,
    /// Successful `Next` steps (Fig. 7).
    pub next_steps: u64,
    /// `TryInsert` attempts (Fig. 9).
    pub insert_attempts: u64,
    /// `TryInsert` successes.
    pub insert_successes: u64,
    /// `TryDelete` attempts (Fig. 10).
    pub delete_attempts: u64,
    /// `TryDelete` successes.
    pub delete_successes: u64,
    /// Back-link hops performed during `TryDelete` recovery (Fig. 10
    /// lines 8–11).
    pub backlink_hops: u64,
    /// CAS retries in `TryDelete`'s auxiliary-chain cleanup loop
    /// (Fig. 10 lines 17–21).
    pub chain_cleanup_retries: u64,
    /// [`Cursor::resume`](crate::Cursor::resume) calls that actually
    /// found a deleted predecessor and back-walked (cheap revalidations
    /// that fell through to `Update` are not counted).
    pub resumes: u64,
    /// Back-link hops performed by [`Cursor::resume`](crate::Cursor::resume)
    /// — the "resume distance". `resume_hops / resumes` is the mean
    /// distance-to-conflict, the quantity that replaces O(n)
    /// restart-from-head walks.
    pub resume_hops: u64,
}

impl ListStats {
    /// Failed `TryInsert` attempts (the §4.1 retry count).
    pub fn insert_retries(&self) -> u64 {
        self.insert_attempts.saturating_sub(self.insert_successes)
    }

    /// Failed `TryDelete` attempts.
    pub fn delete_retries(&self) -> u64 {
        self.delete_attempts.saturating_sub(self.delete_successes)
    }

    /// Component-wise difference (`self - earlier`), saturating at zero.
    pub fn since(&self, earlier: &ListStats) -> ListStats {
        ListStats {
            updates: self.updates.saturating_sub(earlier.updates),
            aux_unlinked: self.aux_unlinked.saturating_sub(earlier.aux_unlinked),
            aux_skipped: self.aux_skipped.saturating_sub(earlier.aux_skipped),
            next_steps: self.next_steps.saturating_sub(earlier.next_steps),
            insert_attempts: self.insert_attempts.saturating_sub(earlier.insert_attempts),
            insert_successes: self
                .insert_successes
                .saturating_sub(earlier.insert_successes),
            delete_attempts: self.delete_attempts.saturating_sub(earlier.delete_attempts),
            delete_successes: self
                .delete_successes
                .saturating_sub(earlier.delete_successes),
            backlink_hops: self.backlink_hops.saturating_sub(earlier.backlink_hops),
            chain_cleanup_retries: self
                .chain_cleanup_retries
                .saturating_sub(earlier.chain_cleanup_retries),
            resumes: self.resumes.saturating_sub(earlier.resumes),
            resume_hops: self.resume_hops.saturating_sub(earlier.resume_hops),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retries_are_attempts_minus_successes() {
        let s = ListStats {
            insert_attempts: 10,
            insert_successes: 7,
            delete_attempts: 5,
            delete_successes: 5,
            ..ListStats::default()
        };
        assert_eq!(s.insert_retries(), 3);
        assert_eq!(s.delete_retries(), 0);
    }

    #[test]
    fn since_subtracts() {
        let a = ListStats {
            updates: 10,
            aux_skipped: 4,
            ..ListStats::default()
        };
        let b = ListStats {
            updates: 6,
            aux_skipped: 4,
            ..ListStats::default()
        };
        let d = a.since(&b);
        assert_eq!(d.updates, 4);
        assert_eq!(d.aux_skipped, 0);
    }

    #[test]
    fn counters_snapshot() {
        let c = ListCounters::default();
        c.bump(|s| &s.updates);
        c.bump(|s| &s.insert_attempts);
        c.bump(|s| &s.insert_successes);
        let s = c.snapshot();
        assert_eq!(s.updates, 1);
        assert_eq!(s.insert_retries(), 0);
    }

    #[test]
    fn absorb_folds_and_clears_a_tally() {
        let c = ListCounters::default();
        let mut t = ListTally {
            updates: 4,
            next_steps: 3,
            backlink_hops: 1,
            ..ListTally::default()
        };
        assert!(!t.is_empty());
        c.absorb(&mut t);
        assert!(t.is_empty(), "absorb must clear the tally");
        let s = c.snapshot();
        assert_eq!(s.updates, 4);
        assert_eq!(s.next_steps, 3);
        assert_eq!(s.backlink_hops, 1);
    }

    #[test]
    fn snapshot_sums_across_threads() {
        let c = std::sync::Arc::new(ListCounters::default());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..500 {
                        c.bump(|s| &s.next_steps);
                    }
                });
            }
        });
        assert_eq!(c.snapshot().next_steps, 2000);
    }
}
