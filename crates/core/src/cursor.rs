//! Cursors: the paper's access abstraction (§2.1) and the §3 algorithms.
//!
//! A cursor is three counted pointers into the list (§3):
//!
//! * `target` — the cell at the visited position (`Last` dummy = the
//!   end-of-list position),
//! * `pre_aux` — an auxiliary node; the cursor is **valid** iff
//!   `pre_aux^.next == target`,
//! * `pre_cell` — the nearest preceding normal cell (used by `TryDelete`).
//!
//! | Paper figure | Method |
//! |---|---|
//! | Fig. 5 `Update`    | [`Cursor::update`] |
//! | Fig. 6 `First`     | [`Cursor::seek_first`] / [`List::cursor`] |
//! | Fig. 7 `Next`      | [`Cursor::next`] |
//! | Fig. 9 `TryInsert` | [`Cursor::try_insert`] |
//! | Fig. 10 `TryDelete`| [`Cursor::try_delete`] |

use std::fmt;

use valois_mem::{AllocError, DeferredReleases, MemTally, Reclaimer, RefCount};

/// Race-window widener: under `--features race-amplify`, yields the CPU at
/// the algorithms' critical interleaving points so stress tests on few
/// cores explore adversarial schedules. Compiles to nothing otherwise.
#[inline(always)]
fn amplify() {
    #[cfg(feature = "race-amplify")]
    {
        use std::cell::Cell;
        thread_local! {
            static COIN: Cell<u32> = const { Cell::new(0x9E3779B9) };
        }
        // Yield ~1/4 of the time: constant yields would serialize threads
        // into lockstep and hide races rather than expose them.
        let flip = COIN.with(|c| {
            let mut x = c.get();
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            c.set(x);
            x & 3 == 0
        });
        if flip {
            valois_sync::shim::thread::yield_now();
        }
    }
}

use crate::list::{List, PreparedInsert};
use crate::node::Node;
use crate::stats::ListTally;

/// Live-stats freshness bound: a cursor publishes its batched tallies to
/// the shared counters at least every this many `Update` calls (every
/// operation revalidates through `Update`, so this bounds staleness in
/// *operations*, not wall time). Keeps the hot path at one integer
/// compare per op while a monitoring thread sampling
/// [`List::stats`]/[`List::mem_stats`] once a second sees a long-lived
/// cursor's progress instead of counters frozen until cursor drop.
const STATS_FLUSH_EVERY: u32 = 256;

/// A cursor visiting one position of a [`List`] (§2.1).
///
/// Cursors are cheap to clone (three count increments) and release their
/// protected nodes on drop. A cursor whose vicinity was changed by another
/// process becomes *invalid*; every operation revalidates via
/// [`Cursor::update`] exactly where the paper's algorithms do, and the
/// `try_*` operations report `false` so callers can re-examine the list
/// before retrying (the paper's non-blocking retry discipline).
///
/// # Example
///
/// ```
/// use valois_core::List;
///
/// let list: List<u32> = (0..3).collect();
/// let mut cur = list.cursor();
/// assert_eq!(cur.get(), Some(&0));
/// assert!(cur.next());
/// assert_eq!(cur.get(), Some(&1));
/// assert!(cur.try_delete());
/// cur.update();
/// assert_eq!(cur.get(), Some(&2));
/// ```
///
/// # Reclamation backends
///
/// Under the default [`RefCount`] backend the three position pointers are
/// counted references (`SafeRead`/`Release` per hop). Under
/// [`valois_mem::Epoch`] the cursor instead *pins an epoch for its
/// lifetime* (taken at construction, dropped with the cursor): hops are
/// plain loads, and the pin keeps every node the cursor can still reach
/// out of reclamation (invariant I12). A long-parked pinned cursor
/// therefore holds up reclamation globally — prefer short-lived cursors
/// under the epoch backend (the `epoch_pin_lag` gauge in
/// [`List::mem_stats`] reports offenders).
pub struct Cursor<'a, T: Send + Sync, R: Reclaimer = RefCount> {
    list: &'a List<T, R>,
    target: *mut Node<T>,
    pre_aux: *mut Node<T>,
    pre_cell: *mut Node<T>,
    /// Parked `Release`s from the hop loop (drained in batches, and fully
    /// on drop): deferring a decrement only delays reclamation, never
    /// anticipates it, so protection is unaffected.
    defer: DeferredReleases<Node<T>>,
    /// Batched §5 protocol events (folded into the arena's sharded
    /// counters on drop / [`Cursor::flush_stats`]).
    tally: MemTally,
    /// Batched list-operation events (same lifecycle).
    ops: ListTally,
    /// `Update` calls since the last tally publish; at
    /// [`STATS_FLUSH_EVERY`] the batches auto-flush so live monitoring
    /// reads fresh counters (the stale-live-stats fix).
    unflushed: u32,
}

// SAFETY: a refcount cursor is three counted references plus a shared
// list handle; counted references are not thread-bound (the §5 protocol
// is fully shared-memory), so moving one to another thread is sound.
// Epoch cursors are deliberately NOT Send: their protection is a pin in
// the *creating thread's* epoch slot, and `Drop` must unpin that same
// slot. Shared (&Cursor) access is read-only (`get`, `is_at_end`,
// `is_valid`) and the owner's pin protects those reads under either
// backend, so Sync is sound for both.
unsafe impl<T: Send + Sync> Send for Cursor<'_, T, RefCount> {}
// SAFETY: as above — the shared-reference surface is read-only.
unsafe impl<T: Send + Sync, R: Reclaimer> Sync for Cursor<'_, T, R> {}

impl<'a, T: Send + Sync, R: Reclaimer> Cursor<'a, T, R> {
    /// Fig. 6 `First`: a cursor visiting the first item (or the end
    /// position of an empty list).
    pub(crate) fn at_first(list: &'a List<T, R>) -> Self {
        // Epoch backend: the cursor's protection window opens here and
        // closes in `Drop` (matched `pin_exit`). No-op under refcount.
        list.arena().pin_enter();
        let mut cursor = Self {
            list,
            target: std::ptr::null_mut(),
            pre_aux: std::ptr::null_mut(),
            pre_cell: std::ptr::null_mut(),
            defer: DeferredReleases::new(),
            tally: MemTally::new(),
            ops: ListTally::default(),
            unflushed: 0,
        };
        cursor.seek_first_inner();
        cursor
    }

    /// A cursor visiting the first position **after** the cell a published
    /// entry root points at (the §4.2 shortcut pattern: start an ordered
    /// traversal from an interior cell instead of `First`). Returns `None`
    /// if the root is unpublished (null).
    ///
    /// The entry cell plays the role the first dummy plays for
    /// [`Cursor::at_first`]: it becomes `pre_cell` and the cursor is
    /// updated to the first normal cell after it. The caller must
    /// guarantee the entry cell is never deleted while the root is
    /// published (bucket sentinels satisfy this by construction).
    // COUNT: both SafeRead counts are transferred into the cursor's
    // `pre_cell`/`pre_aux` fields; `Drop` releases them.
    pub(crate) fn at_entry(list: &'a List<T, R>, root: &valois_mem::Link<Node<T>>) -> Option<Self> {
        // Epoch backend: pin before the first read; the early-return None
        // path drops the cursor, whose Drop unpins.
        list.arena().pin_enter();
        let mut cursor = Self {
            list,
            target: std::ptr::null_mut(),
            pre_aux: std::ptr::null_mut(),
            pre_cell: std::ptr::null_mut(),
            defer: DeferredReleases::new(),
            tally: MemTally::new(),
            ops: ListTally::default(),
            unflushed: 0,
        };
        let arena = list.arena();
        // SAFETY: `root` is a counted link of this list's arena;
        // `pre_cell` is held while its `next` is read (as Fig. 6 does for
        // the `First` root).
        unsafe {
            cursor.pre_cell = arena.safe_read_tallied(root, &mut cursor.tally);
            if cursor.pre_cell.is_null() {
                return None; // unpublished; cursor drop handles the nulls
            }
            cursor.pre_aux = arena.safe_read_tallied(&(*cursor.pre_cell).next, &mut cursor.tally);
            debug_assert!(
                !cursor.pre_aux.is_null(),
                "published entry cells always have a successor"
            );
        }
        cursor.update();
        Some(cursor)
    }

    /// The raw target pointer (for [`List::publish_entry`]'s count
    /// transfer; crate-internal).
    pub(crate) fn target_ptr(&self) -> *mut Node<T> {
        self.target
    }

    /// The raw `pre_cell` pointer (for [`List::cache_entry`]'s count
    /// transfer; crate-internal).
    pub(crate) fn pre_cell_ptr(&self) -> *mut Node<T> {
        self.pre_cell
    }

    /// Reads the value of the cursor's *anchor* — the nearest preceding
    /// normal cell (`pre_cell`) — or `None` when the anchor is a dummy
    /// (the cursor is at the start of the list).
    ///
    /// The anchor may have been deleted by a concurrent operation; cell
    /// persistence (§2.2) keeps its value readable either way. Dictionary
    /// layers use this to decide whether a cached cursor's position is
    /// at-or-before a search key without re-walking the list.
    pub fn with_anchor<O>(&self, f: impl FnOnce(&T) -> O) -> Option<O> {
        if self.pre_cell.is_null() {
            return None;
        }
        // SAFETY: `pre_cell` is a held counted reference; only Cell nodes
        // carry values.
        unsafe {
            if (*self.pre_cell).kind() == crate::node::NodeKind::Cell {
                Some(f((*self.pre_cell).value()))
            } else {
                None
            }
        }
    }

    // COUNT: both SafeRead counts are transferred into the cursor's
    // `pre_cell`/`pre_aux` fields; `Drop`/`seek_first` release them.
    fn seek_first_inner(&mut self) {
        let arena = self.list.arena();
        // SAFETY: the roots are counted links; `pre_cell` is held while its
        // `next` is read (Fig. 6 lines 1-2).
        unsafe {
            self.pre_cell = arena.safe_read_tallied(self.list.first_root(), &mut self.tally);
            self.pre_aux = arena.safe_read_tallied(&(*self.pre_cell).next, &mut self.tally);
        }
        self.target = std::ptr::null_mut(); // Fig. 6 line 3
        self.update(); // Fig. 6 line 4
    }

    /// Re-positions this cursor at the first item (Fig. 6 on an existing
    /// cursor).
    pub fn seek_first(&mut self) {
        let arena = self.list.arena();
        // SAFETY: all three fields hold protected references (or null);
        // parking them in the defer buffer keeps them counted until a
        // drain (refcount) or simply drops the window (epoch — the pin
        // still covers the new position).
        unsafe {
            arena.unprotect_deferred(&mut self.defer, self.pre_cell);
            arena.unprotect_deferred(&mut self.defer, self.pre_aux);
            arena.unprotect_deferred(&mut self.defer, self.target);
        }
        self.seek_first_inner();
    }

    /// Folds this cursor's batched statistics (list events and §5 protocol
    /// events) into the shared counters now instead of at drop, and drains
    /// any deferred releases. Call before reading
    /// [`List::stats`]/[`List::mem_stats`] while the cursor stays alive.
    pub fn flush_stats(&mut self) {
        let arena = self.list.arena();
        // SAFETY: the defer buffer holds counted references of this
        // cursor's arena.
        unsafe { arena.drain_deferred(&mut self.defer) };
        arena.flush_tally(&mut self.tally);
        self.list.absorb(&mut self.ops);
        self.unflushed = 0;
    }

    /// The periodic half of the stale-live-stats fix: publish the batched
    /// tallies every [`STATS_FLUSH_EVERY`] updates so counters advance
    /// *mid-operation* for live readers. Deliberately does **not** drain
    /// the deferred-release buffer — that is reclamation policy with its
    /// own batching, and stats freshness must not change it.
    #[inline]
    fn maybe_autoflush(&mut self) {
        self.unflushed += 1;
        if self.unflushed >= STATS_FLUSH_EVERY {
            self.unflushed = 0;
            self.list.arena().flush_tally(&mut self.tally);
            self.list.absorb(&mut self.ops);
        }
    }

    /// Fig. 5 `Update`: makes the cursor valid again after concurrent
    /// structural changes, skipping (and opportunistically unlinking)
    /// auxiliary-node chains.
    pub fn update(&mut self) {
        self.ops.updates += 1;
        self.maybe_autoflush();
        let arena = self.list.arena();
        // SAFETY: `pre_aux`/`pre_cell` hold counted references; every
        // pointer read below is a counted link of a held node.
        unsafe {
            // Fig. 5 line 1: already valid?
            if (*self.pre_aux).next.read() == self.target {
                return;
            }
            // Fig. 5 lines 3-5.
            let mut p = self.pre_aux; // take over the cursor's reference
            amplify();
            let mut n = arena.safe_read_tallied(&(*p).next, &mut self.tally);
            arena.unprotect_deferred(&mut self.defer, self.target);
            // Fig. 5 lines 6-10: skip auxiliary nodes (dummies and cells
            // are "normal"), unlinking one of each adjacent pair.
            // WAIT-FREE: bounded by the aux-chain length; the CSW below is
            // one-shot per hop (a failure is not retried — someone else
            // already unlinked), so no backoff is needed.
            while !n.is_null() && (*n).is_aux() {
                self.ops.aux_skipped += 1;
                // Fig. 5 line 7: CSW(pre_cell^.next, p, n). Failure just
                // means someone else already cleaned up or moved on.
                if arena.swing(&(*self.pre_cell).next, p, n) {
                    self.ops.aux_unlinked += 1;
                }
                arena.unprotect_deferred(&mut self.defer, p);
                p = n;
                n = arena.safe_read_tallied(&(*p).next, &mut self.tally);
            }
            debug_assert!(!n.is_null(), "aux nodes always have a successor");
            // Fig. 5 lines 11-12.
            self.pre_aux = p;
            self.target = n;
        }
    }

    /// Fig. 10 lines 7-11, promoted to a shared primitive: walks
    /// `back_link`s from `from` to the nearest cell that has not itself
    /// been deleted (as of each link read) and returns it.
    ///
    /// # Safety
    ///
    /// `from` must carry a protected reference owned by the caller (a
    /// count under refcount; coverage by this cursor's pin under epoch).
    // GUARD: from — caller holds a protected reference when calling; the
    // walk hands it off hop by hop (consumed here, replaced by the
    // returned cell's).
    // COUNT: consumes the caller's reference on `from`; the returned
    // pointer carries one protected reference that transfers to the
    // caller.
    unsafe fn backtrack(&mut self, from: *mut Node<T>) -> *mut Node<T> {
        let arena = self.list.arena();
        let mut p = from;
        while !(*p).back_link.read().is_null() {
            let q = arena.safe_read(&(*p).back_link);
            if q.is_null() {
                break; // back_links are never cleared while p is held
            }
            self.ops.backlink_hops += 1;
            arena.unprotect(p);
            p = q;
        }
        p
    }

    /// Backlink-guided retry resumption (the Fomitchev–Ruppert search
    /// pattern over the paper's §3 `back_link`s): if the cursor's anchor
    /// cell (`pre_cell`) was deleted by a concurrent operation, walk its
    /// `back_link` chain to the nearest predecessor that had not itself
    /// been deleted, re-enter the list there, and revalidate with
    /// [`Cursor::update`].
    ///
    /// This is the public retry protocol: after a failed
    /// [`Cursor::try_insert`]/[`Cursor::try_delete`] — or when reopening
    /// a cached cursor whose neighbourhood may have changed — call
    /// `resume()` instead of discarding the cursor and restarting from
    /// `First`. The cost is O(distance-to-conflict) back-link hops
    /// instead of an O(n) walk from the head; when the anchor is still
    /// live this is exactly an `update()` (no extra cost).
    ///
    /// Landing on a back-walked predecessor is consistent: the resumed
    /// position is at-or-before every position the cursor could need,
    /// and the forward revalidation cannot skip a concurrently present
    /// cell.
    // INVARIANT: I10
    pub fn resume(&mut self) {
        // SAFETY: `pre_cell` is a held counted reference; its `back_link`
        // is written exactly once (by the winning deleter, after the
        // deletion CAS) and never cleared while the cell is held, so a
        // non-null read is a stable "this anchor was deleted" signal.
        let deleted = unsafe { !(*self.pre_cell).back_link.read().is_null() };
        if !deleted {
            // Anchor still undeleted: plain Fig. 5 revalidation suffices.
            self.update();
            return;
        }
        self.ops.resumes += 1;
        let before = self.ops.backlink_hops;
        let arena = self.list.arena();
        // SAFETY: all three fields hold counted references; the back-walk
        // takes over `pre_cell`'s count and hands back one count on the
        // landing cell, and the superseded `pre_aux`/`target` counts are
        // parked for a deferred drain (delaying a decrement never
        // anticipates reclamation).
        // COUNT: `backtrack` consumes the count on the old `pre_cell` and
        // its returned count is stored into `pre_cell` (released on
        // `Drop`); the SafeRead count lands in `pre_aux` likewise.
        unsafe {
            let p = self.backtrack(self.pre_cell);
            self.pre_cell = p;
            arena.unprotect_deferred(&mut self.defer, self.pre_aux);
            self.pre_aux = arena.safe_read_tallied(&(*p).next, &mut self.tally);
            arena.unprotect_deferred(&mut self.defer, self.target);
            self.target = std::ptr::null_mut();
        }
        let hops = self.ops.backlink_hops - before;
        self.ops.resume_hops += hops;
        valois_trace::probe!(CursorResume, hops as usize, self.pre_cell as usize);
        self.update();
    }

    /// Fig. 7 `Next`: advances to the next position. Returns `false` when
    /// already at the end-of-list position.
    ///
    /// (Named after the paper's operation; a cursor is not an `Iterator` —
    /// use [`List::iter`](crate::List::iter) for iteration.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> bool {
        // Fig. 7 lines 1-2.
        if self.target == self.list.last_ptr() {
            return false;
        }
        let arena = self.list.arena();
        // SAFETY: `target` is held; its count *transfers* to `pre_cell`
        // (where the paper SafeReads a private cursor field, lines 3-6, we
        // move the reference we already hold and null `target`, saving an
        // increment/release pair per hop); reading the held node's `next`
        // is protected.
        unsafe {
            arena.unprotect_deferred(&mut self.defer, self.pre_cell);
            self.pre_cell = self.target;
            self.target = std::ptr::null_mut(); // reference moved to pre_cell
            arena.unprotect_deferred(&mut self.defer, self.pre_aux);
            self.pre_aux = arena.safe_read_tallied(&(*self.pre_cell).next, &mut self.tally);
        }
        self.update(); // Fig. 7 line 7
        self.ops.next_steps += 1;
        valois_trace::probe!(CursorHop, self.pre_cell as usize, self.target as usize);
        true
    }

    /// Whether the cursor is at the end-of-list position (visiting no
    /// item).
    pub fn is_at_end(&self) -> bool {
        self.target == self.list.last_ptr()
    }

    /// Whether the cursor is currently valid (`pre_aux^.next == target`).
    /// Purely informational — operations revalidate internally.
    pub fn is_valid(&self) -> bool {
        // SAFETY: `pre_aux` is held.
        unsafe { (*self.pre_aux).next.read() == self.target }
    }

    /// The item at the cursor's position, or `None` at the end position.
    ///
    /// *Cell persistence* (§2.2): if the visited cell was deleted by
    /// another process, the cursor still reads its value until repositioned.
    pub fn get(&self) -> Option<&T> {
        if self.target.is_null() || self.is_at_end() {
            return None;
        }
        // SAFETY: `target` is held (counted), so the value cannot be
        // dropped; only Cell nodes carry values.
        unsafe {
            if (*self.target).kind() == crate::node::NodeKind::Cell {
                Some((*self.target).value())
            } else {
                None
            }
        }
    }

    /// Fig. 9 `TryInsert`: attempts to insert the prepared cell (and its
    /// auxiliary node) immediately **before** the cursor's position.
    ///
    /// On success the pair is consumed and `Ok(())` returned; the cursor is
    /// left invalid (call [`Cursor::update`] — it will then visit the new
    /// cell). On failure — the cursor was invalidated by a concurrent
    /// operation — the pair is handed back for a retry after the caller
    /// re-examines the list (Fig. 12's pattern).
    ///
    /// # Panics
    ///
    /// Panics if `prepared` was prepared by a different list.
    pub fn try_insert(
        &mut self,
        prepared: PreparedInsert<'a, T, R>,
    ) -> Result<(), PreparedInsert<'a, T, R>> {
        assert!(
            std::ptr::eq(self.list, prepared.list),
            "PreparedInsert used with a cursor of a different list"
        );
        self.ops.insert_attempts += 1;
        let arena = self.list.arena();
        let q = prepared.cell;
        let a = prepared.aux;
        // SAFETY: q/a are exclusively owned (unpublished); `target` and
        // `pre_aux` are held counted references.
        unsafe {
            // Fig. 9 lines 1-2. store_link installs a count on the new
            // target and releases the previous one, so counts stay exact
            // across retries.
            arena.store_link(&(*q).next, a);
            arena.store_link(&(*a).next, self.target);
            // Fig. 9 line 3: CSW(pre_aux^.next, target, q).
            amplify();
            if arena.swing(&(*self.pre_aux).next, self.target, q) {
                self.ops.insert_successes += 1;
                valois_trace::probe!(TryInsertOk, self.pre_aux as usize, q as usize);
                prepared.consume();
                Ok(())
            } else {
                valois_trace::probe!(TryInsertFail, self.pre_aux as usize, q as usize);
                Err(prepared)
            }
        }
    }

    /// Convenience retry loop around [`Cursor::try_insert`]: prepares the
    /// pair once and retries with [`Cursor::update`] until the insertion
    /// lands (cannot livelock: a failure means some other operation
    /// succeeded — the non-blocking progress argument).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when the node pool is exhausted and capped.
    pub fn insert(&mut self, value: T) -> Result<(), AllocError> {
        let mut prepared = match self.list.try_prepare_insert(value) {
            Ok(prepared) => prepared,
            Err((value, e)) => {
                // The pool may only look exhausted because our own defer
                // buffer parks the last references to reclaimable nodes:
                // drain it and retry once before giving up.
                if self.defer.is_empty() {
                    return Err(e);
                }
                // SAFETY: the buffer holds counted references of this
                // cursor's arena.
                unsafe { self.list.arena().drain_deferred(&mut self.defer) };
                match self.list.try_prepare_insert(value) {
                    Ok(prepared) => prepared,
                    Err((_, e)) => return Err(e),
                }
            }
        };
        loop {
            match self.try_insert(prepared) {
                Ok(()) => return Ok(()),
                Err(back) => {
                    prepared = back;
                    self.update();
                }
            }
        }
    }

    /// Fig. 10 `TryDelete`: attempts to delete the cell the cursor is
    /// visiting.
    ///
    /// Returns `false` if the cursor is at the end position or was
    /// invalidated by a concurrent operation (caller should
    /// [`Cursor::update`] and re-examine, as Fig. 13 does). On success the
    /// cursor still *visits the deleted cell* — its value stays readable
    /// (cell persistence) — until the next `update`/`next` repositions it.
    pub fn try_delete(&mut self) -> bool {
        if self.is_at_end() {
            return false;
        }
        self.ops.delete_attempts += 1;
        let arena = self.list.arena();
        // SAFETY: every dereference below is of a node we hold a counted
        // reference on; links are counted links of this arena.
        unsafe {
            // Fig. 10 lines 1-2. The paper reads target^.next plainly; we
            // SafeRead so the subsequent swing holds a count on `n`
            // (required for the count-transfer protocol).
            let d = self.target;
            let n = arena.safe_read(&(*d).next);
            debug_assert!(!n.is_null(), "cells always have a successor");
            amplify();
            // Fig. 10 line 3: the deletion CAS — unlink d.
            if !arena.swing(&(*self.pre_aux).next, d, n) {
                // Fig. 10 lines 4-5.
                arena.unprotect(n);
                valois_trace::probe!(TryDeleteFail, self.pre_aux as usize, d as usize);
                return false;
            }
            self.ops.delete_successes += 1;
            valois_trace::probe!(TryDeleteOk, self.pre_aux as usize, d as usize);
            amplify();
            // Fig. 10 line 6: record the back link. We won the deletion
            // CAS, so we are the unique writer of d's back_link. This is a
            // *link* count — installed under both backends (the back_link
            // chain must keep its targets out of reclamation even after
            // every pin drops).
            debug_assert!((*d).back_link.read().is_null());
            arena.incr_ref(self.pre_cell);
            (*d).back_link.write(self.pre_cell);
            // Fig. 10 lines 7-11: walk back links to the nearest cell that
            // has not itself been deleted (shared with `resume`).
            // COUNT: the duplicated process reference is consumed by
            // `backtrack`, which hands back one reference on `p` (given up
            // at the end).
            arena.protect_dup(self.pre_cell);
            let p = self.backtrack(self.pre_cell);
            // Fig. 10 line 12.
            let mut s = arena.safe_read(&(*p).next);
            // Fig. 10 lines 13-16: advance n to the end of the auxiliary
            // chain (until the node after n is a normal cell).
            let mut n = n;
            loop {
                let nn = arena.safe_read(&(*n).next);
                debug_assert!(!nn.is_null());
                let chain_continues = !(*nn).is_normal_cell();
                if !chain_continues {
                    arena.unprotect(nn);
                    break;
                }
                arena.unprotect(n);
                n = nn;
            }
            // Fig. 10 lines 17-21: swing p^.next over the whole chain,
            // giving up if p gets deleted or the chain gets extended
            // (another deleter has taken over the cleanup obligation).
            // WAIT-FREE: a failed swing means another operation changed
            // p^.next (system-wide progress); the loop then either
            // re-reads once or hands the cleanup obligation off and
            // exits, so it cannot spin against an unchanged word.
            loop {
                amplify();
                if arena.swing(&(*p).next, s, n) {
                    break;
                }
                self.ops.chain_cleanup_retries += 1;
                arena.unprotect(s);
                s = arena.safe_read(&(*p).next);
                if !(*p).back_link.read().is_null() {
                    break; // p itself was deleted
                }
                let nn = arena.safe_read(&(*n).next);
                let extended = !(*nn).is_normal_cell();
                arena.unprotect(nn);
                if extended {
                    break; // chain extended: successor deleter cleans up
                }
            }
            // Fig. 10 lines 22-24.
            arena.unprotect(p);
            arena.unprotect(s);
            arena.unprotect(n);
            true
        }
    }

    /// The list this cursor traverses.
    pub fn list(&self) -> &'a List<T, R> {
        self.list
    }
}

impl<T: Send + Sync, R: Reclaimer> Clone for Cursor<'_, T, R> {
    fn clone(&self) -> Self {
        let arena = self.list.arena();
        // The clone protects its position independently: its own pin
        // under epoch (no-op under refcount)...
        arena.pin_enter();
        // SAFETY: we hold protected references on all three; duplicating
        // a held reference is protect_dup's contract. (...and its own
        // counts under refcount — no-ops under epoch.)
        unsafe {
            arena.protect_dup(self.target);
            arena.protect_dup(self.pre_aux);
            arena.protect_dup(self.pre_cell);
        }
        Self {
            list: self.list,
            target: self.target,
            pre_aux: self.pre_aux,
            pre_cell: self.pre_cell,
            // Batches are per-cursor state, not position: the clone starts
            // with empty buffers of its own.
            defer: DeferredReleases::new(),
            tally: MemTally::new(),
            ops: ListTally::default(),
            unflushed: 0,
        }
    }
}

impl<T: Send + Sync, R: Reclaimer> Drop for Cursor<'_, T, R> {
    fn drop(&mut self) {
        let arena = self.list.arena();
        // SAFETY: the cursor's fields are protected references (or null),
        // and the defer buffer holds counted references of this arena.
        unsafe {
            arena.unprotect_deferred(&mut self.defer, self.target);
            arena.unprotect_deferred(&mut self.defer, self.pre_aux);
            arena.unprotect_deferred(&mut self.defer, self.pre_cell);
            arena.drain_deferred(&mut self.defer);
        }
        arena.flush_tally(&mut self.tally);
        self.list.absorb(&mut self.ops);
        // Epoch backend: the protection window taken at construction
        // closes last, after every field access above.
        arena.pin_exit();
    }
}

impl<T: Send + Sync, R: Reclaimer> fmt::Debug for Cursor<'_, T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cursor")
            .field("at_end", &self.is_at_end())
            .field("valid", &self.is_valid())
            .finish()
    }
}
