//! Repository automation. `cargo xtask analyze` runs two protocol-specific
//! lints over the workspace's library sources (`crates/*/src`, `src`):
//!
//! 1. **Shim discipline** — atomics must be imported through
//!    `valois_sync::shim`, never straight from `std::sync::atomic` (or
//!    `core::sync::atomic`). The shim is what lets `--cfg loom` swap every
//!    atomic for its model-checked equivalent; one stray direct import
//!    silently removes that code from the model checker's view. The shim
//!    itself (`crates/sync/src/shim/`) is the single allowed exception.
//!
//! 2. **Ordering discipline** — `Ordering::Relaxed` on a pointer-valued
//!    atomic is almost always a protocol bug (the §5 counted-link protocol
//!    hangs correctness on acquire/release pairs around pointer
//!    publication). Any relaxed pointer operation must carry an adjacent
//!    `// ORDER:` comment justifying it.
//!
//! Tests and benches are exempt by scope: they use `std` atomics for
//! harness bookkeeping (result counters, stop flags) that deliberately
//! stays outside the model-checked protocol surface.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// A single lint finding.
#[derive(Debug, PartialEq, Eq)]
struct Violation {
    file: String,
    line: usize,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

/// True for lines that are only commentary — doc comments and plain
/// comments may *mention* `std::sync::atomic` freely.
fn is_comment_line(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("//!") || t.starts_with("///")
}

/// Lint 1: direct atomic imports. `label` is the path reported in
/// findings; `content` the file's text.
fn scan_atomic_imports(label: &str, content: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, line) in content.lines().enumerate() {
        if is_comment_line(line) {
            continue;
        }
        // Catch both `use std::sync::atomic::...` and inline qualified
        // paths like `std::sync::atomic::AtomicUsize::new(..)`.
        if line.contains("std::sync::atomic") || line.contains("core::sync::atomic") {
            out.push(Violation {
                file: label.to_string(),
                line: idx + 1,
                message: "direct std/core::sync::atomic use; import through \
                          valois_sync::shim so `--cfg loom` can instrument it"
                    .to_string(),
            });
        }
    }
    out
}

/// Identifiers of fields declared with an `AtomicPtr` type in `content`.
/// A line like `ptr: AtomicPtr<T>,` (struct field) or
/// `let head: AtomicPtr<T>` contributes `ptr` / `head`.
fn pointer_atomic_idents(content: &str) -> Vec<String> {
    let mut idents = Vec::new();
    for line in content.lines() {
        if is_comment_line(line) {
            continue;
        }
        let Some(decl_pos) = line.find(": AtomicPtr<") else {
            continue;
        };
        let head = &line[..decl_pos];
        let ident: String = head
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        if !ident.is_empty() && !idents.contains(&ident) {
            idents.push(ident);
        }
    }
    idents
}

/// Whether `line` touches a pointer-valued atomic: it names `AtomicPtr`
/// directly, or dereferences a field this file declared as `AtomicPtr`.
fn touches_pointer_atomic(line: &str, ptr_idents: &[String]) -> bool {
    if line.contains("AtomicPtr") {
        return true;
    }
    ptr_idents
        .iter()
        .any(|id| line.contains(&format!(".{id}.")) || line.contains(&format!("self.{id}")))
}

/// Lint 2: `Ordering::Relaxed` on pointer-valued atomics without an
/// adjacent `// ORDER:` justification (same line or either of the two
/// preceding lines).
fn scan_relaxed_pointer_orderings(label: &str, content: &str) -> Vec<Violation> {
    let lines: Vec<&str> = content.lines().collect();
    let ptr_idents = pointer_atomic_idents(content);
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if is_comment_line(line) || !line.contains("Ordering::Relaxed") {
            continue;
        }
        if !touches_pointer_atomic(line, &ptr_idents) {
            continue;
        }
        let justified = (idx.saturating_sub(2)..=idx).any(|i| lines[i].contains("// ORDER:"));
        if !justified {
            out.push(Violation {
                file: label.to_string(),
                line: idx + 1,
                message: "Ordering::Relaxed on a pointer-valued atomic without an \
                          adjacent `// ORDER:` justification"
                    .to_string(),
            });
        }
    }
    out
}

/// Library source roots to lint, relative to the workspace root.
fn source_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut roots: Vec<PathBuf> = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            // The linter necessarily names the patterns it rejects; it
            // cannot lint itself.
            if e.file_name() == "xtask" {
                continue;
            }
            roots.push(e.path().join("src"));
        }
    }
    while let Some(dir) = roots.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                roots.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                files.push(p);
            }
        }
    }
    files.sort();
    files
}

/// The one directory allowed to name `std::sync::atomic`: the shim that
/// re-exports (or model-checks) it.
fn is_shim_path(path: &Path) -> bool {
    path.components().collect::<Vec<_>>().windows(3).any(|w| {
        w[0].as_os_str() == "sync" && w[1].as_os_str() == "src" && w[2].as_os_str() == "shim"
    })
}

fn analyze(root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();
    for file in source_files(root) {
        let Ok(content) = std::fs::read_to_string(&file) else {
            continue;
        };
        let label = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .display()
            .to_string();
        if !is_shim_path(&file) {
            violations.extend(scan_atomic_imports(&label, &content));
        }
        violations.extend(scan_relaxed_pointer_orderings(&label, &content));
    }
    violations
}

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = <root>/crates/xtask at compile time.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => {
            let root = workspace_root();
            let violations = analyze(&root);
            if violations.is_empty() {
                println!("xtask analyze: OK (shim discipline + pointer-ordering discipline)");
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    eprintln!("error: {v}");
                }
                eprintln!("xtask analyze: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo xtask analyze");
            eprintln!();
            eprintln!("  analyze   lint library sources for direct std::sync::atomic");
            eprintln!("            imports (outside valois_sync::shim) and for");
            eprintln!("            Ordering::Relaxed on pointer-valued atomics that");
            eprintln!("            lack an adjacent `// ORDER:` comment");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_seeded_direct_atomic_import() {
        let bad = "use std::sync::atomic::{AtomicUsize, Ordering};\n";
        let v = scan_atomic_imports("seeded.rs", bad);
        assert_eq!(v.len(), 1, "must reject a direct import: {v:?}");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn flags_seeded_inline_qualified_atomic_path() {
        let bad = "let x = std::sync::atomic::AtomicUsize::new(0);\n";
        let v = scan_atomic_imports("seeded.rs", bad);
        assert_eq!(v.len(), 1, "must reject inline qualified paths: {v:?}");
    }

    #[test]
    fn allows_shim_import_and_comments() {
        let good = "//! mentions std::sync::atomic in docs\n\
                    /// and std::sync::atomic here too\n\
                    use valois_sync::shim::atomic::{AtomicUsize, Ordering};\n";
        assert!(scan_atomic_imports("ok.rs", good).is_empty());
    }

    #[test]
    fn flags_seeded_relaxed_pointer_ordering() {
        let bad = "struct S { head: AtomicPtr<u8> }\n\
                   fn f(s: &S) {\n\
                   let p = s.head.load(Ordering::Relaxed);\n\
                   }\n";
        let v = scan_relaxed_pointer_orderings("seeded.rs", bad);
        assert_eq!(v.len(), 1, "must reject relaxed ptr load: {v:?}");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn order_comment_justifies_relaxed_pointer_ordering() {
        let good = "struct S { head: AtomicPtr<u8> }\n\
                    fn f(s: &S) {\n\
                    // ORDER: read-only statistics sample; staleness is fine.\n\
                    let p = s.head.load(Ordering::Relaxed);\n\
                    }\n";
        assert!(scan_relaxed_pointer_orderings("ok.rs", good).is_empty());
    }

    #[test]
    fn relaxed_on_plain_counter_is_allowed() {
        let good = "static HITS: AtomicU64 = AtomicU64::new(0);\n\
                    fn bump() { HITS.fetch_add(1, Ordering::Relaxed); }\n";
        assert!(scan_relaxed_pointer_orderings("ok.rs", good).is_empty());
    }

    #[test]
    fn pointer_field_idents_are_discovered() {
        let src = "struct S { ptr: AtomicPtr<T>, n: AtomicUsize }\n";
        assert_eq!(pointer_atomic_idents(src), vec!["ptr".to_string()]);
    }

    #[test]
    fn workspace_is_clean() {
        // The repository must pass its own lints; a regression here means
        // someone bypassed the shim or relaxed a pointer ordering.
        let violations = analyze(&workspace_root());
        assert!(
            violations.is_empty(),
            "workspace lint violations:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
