//! Repository automation.
//!
//! `cargo xtask analyze` runs the `valois-analyze` syntax-aware protocol
//! linter over the workspace's library sources (`crates/*/src`, `src/`) —
//! see `crates/analyze` for the passes and `docs/ANALYSIS.md` for the
//! comment contracts they enforce (`SAFETY:` / `ORDER:` / `COUNT:` /
//! `WAIT-FREE:`).
//!
//! ```text
//! cargo xtask analyze [--format text|json|sarif] [--deny warn] [--output PATH] [--stats]
//! cargo xtask analyze --explain <rule-id>
//! ```
//!
//! * `--format` — findings as human-readable text (default), compact JSON,
//!   or SARIF 2.1.0 (what CI uploads for PR annotations);
//! * `--deny warn` — treat warnings as errors (the CI setting; the clean
//!   tree passes it);
//! * `--output` — write the report to a file instead of stdout (the
//!   human-readable summary still goes to stderr);
//! * `--stats` — print per-pass wall-clock timings to stderr so analyzer
//!   cost stays visible as the engine grows;
//! * `--explain` — print a rule's rationale plus a minimal violating and
//!   fixed example, then exit (no analysis runs).
//!
//! `cargo xtask trace-dump <file.vtrace>` renders a flight-recorder
//! post-mortem (written by `valois_trace::dump` when an invariant fails
//! under `--features trace`) as a human-readable, time-ordered event log
//! plus the counter summary — see `docs/OBSERVABILITY.md`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use valois_analyze::{
    analyze_workspace_timed, render_explain, render_json, render_sarif, render_text, should_fail,
    Severity, RULES,
};

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = <root>/crates/xtask at compile time.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask analyze [--format text|json|sarif] [--deny warn] [--output PATH] \
         [--stats]"
    );
    eprintln!("       cargo xtask analyze --explain <rule-id>");
    eprintln!("       cargo xtask trace-dump <file.vtrace>");
    eprintln!();
    eprintln!("  analyze     run the valois-analyze protocol linter over library");
    eprintln!("              sources: shim discipline, pointer-ordering discipline,");
    eprintln!("              unsafe/SAFETY audit, refcount pairing + dataflow balance,");
    eprintln!("              CAS-loop progress, probe discipline, spinlock-guard");
    eprintln!("              hygiene, the acquire/release ordering graph, protection");
    eprintln!("              windows + GUARD contracts, and PROTOCOL.md invariant");
    eprintln!("              cross-references (see docs/ANALYSIS.md)");
    eprintln!();
    eprintln!("  --format    output format (default: text)");
    eprintln!("  --deny      'warn' promotes warnings to failures (CI runs this)");
    eprintln!("  --output    write the report to PATH instead of stdout");
    eprintln!("  --stats     print per-pass timings to stderr");
    eprintln!("  --explain   print a rule's rationale and examples, then exit");
    eprintln!();
    eprintln!("  trace-dump  render a flight-recorder post-mortem (*.vtrace) as a");
    eprintln!("              merged, time-ordered event log (see docs/OBSERVABILITY.md)");
    ExitCode::FAILURE
}

/// Renders one `*.vtrace` post-mortem to stdout.
fn trace_dump(path: &Path) -> ExitCode {
    let tf = match valois_trace::TraceFile::read(path) {
        Ok(tf) => tf,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    println!("# post-mortem: {}", path.display());
    println!("# reason: {}", tf.reason);
    println!(
        "# events: {} (merged across lanes, time-ordered)",
        tf.events.len()
    );
    println!();
    for ev in &tf.events {
        let (name, arg_names) = match valois_trace::EventKind::from_u8(ev.kind) {
            Some(k) => (k.name(), k.arg_names()),
            None => ("?unknown", ["a", "b", "c"]),
        };
        print!("{:>10}  lane {:>2}  {:<20}", ev.seq, ev.lane, name);
        for (arg_name, value) in arg_names.iter().zip(ev.args) {
            if arg_name.is_empty() {
                continue;
            }
            // `@`-prefixed argument names carry pointers: render as hex.
            match arg_name.strip_prefix('@') {
                Some(n) => print!("  {n}=0x{value:x}"),
                None => print!("  {arg_name}={value}"),
            }
        }
        println!();
    }
    println!();
    println!("# counters");
    for (kind, &count) in tf.counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let name = valois_trace::EventKind::from_u8(kind as u8)
            .map(valois_trace::EventKind::name)
            .unwrap_or("?unknown");
        println!("{name:<20} {count}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => {}
        Some("trace-dump") => {
            return match (args.next(), args.next()) {
                (Some(p), None) => trace_dump(Path::new(&p)),
                _ => usage(),
            };
        }
        _ => return usage(),
    }

    let mut format = String::from("text");
    let mut deny_warnings = false;
    let mut output: Option<PathBuf> = None;
    let mut stats = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--explain" => {
                let Some(id) = args.next() else {
                    return usage();
                };
                return match render_explain(&id) {
                    Some(text) => {
                        print!("{text}");
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprintln!("error: unknown rule `{id}`; known rules:");
                        for rule in RULES {
                            eprintln!("  {}", rule.id);
                        }
                        ExitCode::FAILURE
                    }
                };
            }
            "--format" => match args.next() {
                Some(f) if ["text", "json", "sarif"].contains(&f.as_str()) => format = f,
                _ => return usage(),
            },
            "--deny" => match args.next().as_deref() {
                Some("warn") => deny_warnings = true,
                Some("error") => deny_warnings = false,
                _ => return usage(),
            },
            "--output" => match args.next() {
                Some(p) => output = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--stats" => stats = true,
            _ => return usage(),
        }
    }

    let (findings, pass_stats) = analyze_workspace_timed(&workspace_root());
    if stats {
        eprintln!(
            "xtask analyze: {} file(s) in {:.1?}",
            pass_stats.files, pass_stats.total
        );
        for (name, dur) in &pass_stats.timings {
            eprintln!("  {name:<24} {dur:>10.1?}");
        }
    }
    let rendered = match format.as_str() {
        "json" => render_json(&findings),
        "sarif" => render_sarif(&findings),
        _ => render_text(&findings),
    };
    match &output {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        None => print!("{rendered}"),
    }

    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    let warnings = findings.len() - errors;
    if findings.is_empty() {
        eprintln!(
            "xtask analyze: OK (shim, ordering, unsafe-audit, refcount-pairing, \
             cas-progress, spin-guard, probe-discipline, refcount-balance, \
             order-graph, invariant-refs, protection-window, guard-contract)"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask analyze: {errors} error(s), {warnings} warning(s)");
        if should_fail(&findings, deny_warnings) {
            ExitCode::FAILURE
        } else {
            eprintln!("(warnings are not denied; pass --deny warn to fail on them)");
            ExitCode::SUCCESS
        }
    }
}
