//! Loom model of the shard drain loop (`--cfg loom` only).
//!
//! The full channel would drag the whole list/arena machinery into the
//! state space, so the model keeps the *queue* abstract (a
//! mutex-protected deque — the scheduler still explores every lock
//! interleaving) and keeps the *protocol under test* concrete: the
//! sender-count-before-dequeue disconnect handshake copied from
//! `valois_core::channel::Receiver::try_recv`, and the batched drain
//! structure of `valois_server::shard::worker_loop`. The model's drainer
//! polls a bounded number of times concurrently with the producers, then
//! joins them and drains the tail — the scheduler's DFS forbids
//! unbounded spin-waits, and the bounded shape loses no interleavings of
//! poll vs. enqueue vs. disconnect. Properties over every explored
//! schedule:
//!
//! 1. **Disconnect is never premature** — `Disconnected` implies the
//!    queue is empty: reading the sender count *before* the dequeue
//!    attempt means an enqueue-then-disconnect racing a miss is seen on
//!    a later poll, never lost.
//! 2. **No lost requests** — after the tail drain, everything both
//!    producers enqueued was received exactly once.
//! 3. **Per-producer FIFO** — sequence numbers from one producer arrive
//!    in issue order (the per-key ordering contract's channel half).
//! 4. **Batch bound** — no drain batch exceeds the configured cap.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p valois-server --test loom_shard`
#![cfg(loom)]

use std::collections::VecDeque;
use std::sync::Arc;

use valois_sync::shim::atomic::{AtomicUsize, Ordering};
use valois_sync::shim::sync::Mutex;
use valois_sync::shim::{thread, Builder};

const BATCH: usize = 2;

/// The channel abstraction: FIFO storage plus the disconnect handshake.
struct Mailbox {
    queue: Mutex<VecDeque<(usize, u64)>>,
    senders: AtomicUsize,
}

#[derive(PartialEq)]
enum TryRecv {
    Got((usize, u64)),
    Empty,
    Disconnected,
}

impl Mailbox {
    /// Mirrors `Receiver::try_recv`: the sender count is read *before*
    /// the dequeue attempt, so an enqueue-then-disconnect racing with a
    /// miss is seen on the next call, never lost.
    fn try_recv(&self) -> TryRecv {
        // ORDER: Acquire pairs with the producers' Release fetch_sub —
        // observing senders == 0 implies their final enqueues are
        // visible to the dequeue below.
        let senders = self.senders.load(Ordering::Acquire);
        let popped = self.queue.lock().unwrap().pop_front();
        match popped {
            Some(v) => TryRecv::Got(v),
            None if senders == 0 => {
                // Property 1: a correct handshake never reports
                // disconnection with requests still queued.
                assert!(
                    self.queue.lock().unwrap().is_empty(),
                    "Disconnected with requests still queued"
                );
                TryRecv::Disconnected
            }
            None => TryRecv::Empty,
        }
    }
}

/// One drain pass: collect up to `BATCH` requests without blocking,
/// exactly like `worker_loop`'s opportunistic fill.
fn drain_batch(mb: &Mailbox, received: &mut Vec<(usize, u64)>) -> TryRecv {
    let mut batch = Vec::new();
    let mut last = TryRecv::Empty;
    while batch.len() < BATCH {
        match mb.try_recv() {
            TryRecv::Got(v) => batch.push(v),
            other => {
                last = other;
                break;
            }
        }
    }
    assert!(batch.len() <= BATCH, "batch cap violated");
    received.extend(batch);
    last
}

/// Two producers (two requests each, then disconnect) racing the batched
/// drainer. Bounded DFS over every schedule within the preemption bound.
#[test]
fn drain_loop_loses_nothing_and_keeps_per_producer_order() {
    let explored = Builder::new().preemption_bound(2).check(|| {
        let mailbox = Arc::new(Mailbox {
            queue: Mutex::new(VecDeque::new()),
            senders: AtomicUsize::new(2),
        });
        let mut producers = Vec::new();
        for id in 0..2usize {
            let mb = Arc::clone(&mailbox);
            producers.push(thread::spawn(move || {
                for seq in 0..2u64 {
                    mb.queue.lock().unwrap().push_back((id, seq));
                }
                // ORDER: Release pairs with the drainer's Acquire load —
                // the disconnect publishes every enqueue above.
                mb.senders.fetch_sub(1, Ordering::Release);
            }));
        }

        let mut received: Vec<(usize, u64)> = Vec::new();
        // Concurrent phase: a bounded number of drain passes racing the
        // producers (enough passes to land mid-enqueue, mid-disconnect,
        // and between the two producers' disconnects).
        for _ in 0..3 {
            if drain_batch(&mailbox, &mut received) == TryRecv::Disconnected {
                break;
            }
        }
        for p in producers {
            p.join().unwrap();
        }
        // Tail phase: every sender is now gone (join ordered after the
        // fetch_subs), so each pass returns requests or Disconnected and
        // the loop is bounded by the queue length.
        loop {
            match drain_batch(&mailbox, &mut received) {
                TryRecv::Disconnected => break,
                _ if received.len() > 4 => unreachable!("duplicated requests"),
                _ => {}
            }
        }

        assert_eq!(received.len(), 4, "requests lost across disconnect");
        for id in 0..2usize {
            let seqs: Vec<u64> = received
                .iter()
                .filter(|(p, _)| *p == id)
                .map(|&(_, s)| s)
                .collect();
            assert_eq!(seqs, vec![0, 1], "producer {id} reordered");
        }
    });
    assert!(explored > 1, "must explore more than one schedule");
}

/// The disconnect race distilled: a lone producer enqueues its final
/// request and disconnects while the drainer polls around the miss. The
/// sender-count-before-dequeue ordering must hand the request to a later
/// poll rather than losing it behind a premature `Disconnected`.
#[test]
fn enqueue_then_disconnect_never_drops_the_last_request() {
    let explored = Builder::new().check(|| {
        let mailbox = Arc::new(Mailbox {
            queue: Mutex::new(VecDeque::new()),
            senders: AtomicUsize::new(1),
        });
        let mb = Arc::clone(&mailbox);
        let producer = thread::spawn(move || {
            mb.queue.lock().unwrap().push_back((0, 0));
            // ORDER: Release — see above.
            mb.senders.fetch_sub(1, Ordering::Release);
        });
        let mut got = 0usize;
        // Concurrent polls: lands before the push, between push and
        // disconnect, and after both.
        for _ in 0..3 {
            match mailbox.try_recv() {
                TryRecv::Got(_) => got += 1,
                TryRecv::Disconnected => break,
                TryRecv::Empty => {}
            }
        }
        producer.join().unwrap();
        // Post-join: the disconnect (and its enqueue) are visible.
        loop {
            match mailbox.try_recv() {
                TryRecv::Got(_) => got += 1,
                TryRecv::Disconnected => break,
                TryRecv::Empty => unreachable!("Empty after every sender disconnected"),
            }
        }
        assert_eq!(got, 1, "final request lost at disconnect");
        assert!(mailbox.queue.lock().unwrap().is_empty());
    });
    assert!(explored > 1, "must explore more than one schedule");
}
