//! Service-level correctness: per-key FIFO ordering through the batched
//! request channels, linearizability of concurrent same-key histories,
//! the live telemetry feed, and clean shutdown.

use std::time::{Duration, Instant};

use valois_core::channel::channel;
use valois_core::ArenaConfig;
use valois_harness::{check_linearizable, History, KeyDist, Op as HOp};
use valois_mem::{Epoch, Reclaimer, RefCount};
use valois_server::{
    run_service, Op, Outcome, Request, Response, Server, ServiceConfig, ServiceMix, SimConfig,
    StatsFeed,
};

fn small_config(shards: usize) -> ServiceConfig {
    ServiceConfig {
        shards,
        batch: 8,
        commit_group: 0,
        ..ServiceConfig::default()
    }
}

/// Same connection, same key: responses must come back in issue order
/// with the outcomes of sequential execution. The guarantee is
/// structural (one key → one shard → one FIFO channel → in-order drain),
/// and this pins it end to end across a batch-sized burst.
fn same_key_same_conn_fifo<R: Reclaimer + 'static>() {
    let server: Server<R> = Server::start(&small_config(4));
    let (tx, rx) = channel::<Response>();
    let key = 0xDEAD_BEEF;
    // Alternating put/del with interleaved gets, issued back to back so
    // several land in one drain batch.
    let rounds = 24u64;
    for seq in 0..rounds {
        let op = match seq % 3 {
            0 => Op::Put(key, seq),
            1 => Op::Get(key),
            _ => Op::Del(key),
        };
        server
            .submit(Request {
                conn: 7,
                seq,
                op,
                issued: Instant::now(),
                reply: tx.clone(),
            })
            .expect("server running");
    }
    for seq in 0..rounds {
        let resp = rx.recv().expect("reply");
        assert_eq!(resp.seq, seq, "per-key responses arrived out of order");
        assert_eq!(resp.conn, 7);
        let expected = match seq % 3 {
            0 => Outcome::Inserted(true),       // key always absent here
            1 => Outcome::Value(Some(seq - 1)), // the put just before
            _ => Outcome::Deleted(true),
        };
        assert_eq!(resp.outcome, expected, "sequential semantics at seq {seq}");
    }
    drop(tx);
    server.shutdown();
}

/// Concurrent clients hammering one key through the full service stack:
/// every recorded history must admit a linearization. The seeds make the
/// interleavings reproducible; the exhaustive checker keeps histories
/// small.
fn seeded_same_key_histories_linearizable<R: Reclaimer + 'static>() {
    for seed in 0..8u64 {
        let server: Server<R> = Server::start(&small_config(2));
        let key = 100 + seed;
        let client = server.client();
        // 3 threads × 5 ops = 15 ops, inside the checker's budget.
        let plan = |ops: [HOp; 5]| ops.to_vec();
        let plans = vec![
            plan([
                HOp::Insert(key),
                HOp::Find(key),
                HOp::Remove(key),
                HOp::Insert(key),
                HOp::Find(key),
            ]),
            plan([
                HOp::Remove(key),
                HOp::Insert(key),
                HOp::Find(key),
                HOp::Remove(key),
                HOp::Remove(key),
            ]),
            plan([
                HOp::Find(key),
                HOp::Insert(key),
                HOp::Insert(key),
                HOp::Find(key),
                HOp::Remove(key),
            ]),
        ];
        let history = History::record(&client, &plans);
        assert!(
            check_linearizable(&history),
            "seed {seed}: no linearization found for:\n{history}"
        );
        server.shutdown();
    }
}

/// The live stats feed must advance *while traffic is in flight* — ticks
/// sampled mid-run show growing completion counts and latency samples.
fn live_feed_advances_under_traffic<R: Reclaimer + 'static>() {
    let server: Server<R> = Server::start(&small_config(2));
    let feed = StatsFeed::start(server.shards(), Duration::from_millis(5), false);
    let report = run_service(
        &server,
        &SimConfig {
            client_threads: 2,
            connections: 256,
            requests_per_conn: 40,
            window: 32,
            mix: ServiceMix::scan_heavy(),
            keys: KeyDist::Zipf { range: 4096 },
            scan_len: 8,
            seed: 0xFEED,
        },
    );
    assert_eq!(report.issued, 256 * 40);
    // Give the sampler one more interval, then stop it.
    std::thread::sleep(Duration::from_millis(15));
    let ticks = feed.stop();
    assert!(
        ticks.len() >= 2,
        "sampler should have ticked during the run: {} ticks",
        ticks.len()
    );
    let last = ticks.last().expect("nonempty");
    assert_eq!(
        last.completed, report.issued,
        "feed must converge on the served total"
    );
    assert!(
        ticks
            .iter()
            .any(|t| t.delta_completed > 0 && t.next_steps > 0),
        "some tick must observe live progress (completions + traversal)"
    );
    assert!(
        last.latency.is_some(),
        "latency summary present once requests were served"
    );
    server.shutdown();
}

/// Shutdown drains every channel, joins every worker, and the returned
/// dictionaries pass the full structural + refcount audit.
fn shutdown_returns_consistent_dicts<R: Reclaimer + 'static>() {
    let server: Server<R> = Server::start(&small_config(3));
    let report = run_service(
        &server,
        &SimConfig {
            client_threads: 2,
            connections: 128,
            requests_per_conn: 30,
            window: 16,
            keys: KeyDist::Zipf { range: 2048 },
            ..SimConfig::default()
        },
    );
    assert_eq!(report.issued, 128 * 30);
    assert_eq!(server.completed(), report.issued);
    let len_before = server.len();
    let dicts = server.shutdown();
    assert_eq!(dicts.len(), 3);
    let total: usize = dicts.iter().map(valois_dict::Dictionary::len).sum();
    assert_eq!(total, len_before, "no in-flight writes after shutdown");
    for mut dict in dicts {
        dict.check_invariants()
            .unwrap_or_else(|e| panic!("shard dictionary corrupt after service run: {e}"));
    }
}

/// A capped node pool under service load: the shards shed and retry
/// internally; the service stays up, answers every request, and anything
/// it could not absorb surfaces as `Overloaded` replies — never a panic.
fn capped_pool_service_survives<R: Reclaimer + 'static>() {
    let server: Server<R> = Server::start(&ServiceConfig {
        shards: 2,
        batch: 8,
        commit_group: 0,
        arena: ArenaConfig::new().initial_capacity(512).max_nodes(512),
        ..ServiceConfig::default()
    });
    let report = run_service(
        &server,
        &SimConfig {
            client_threads: 2,
            connections: 128,
            requests_per_conn: 40,
            window: 16,
            // Heavy write churn against a small hot keyspace: constant
            // insert/delete pressure on the capped pools.
            mix: ServiceMix::new(10, 45, 40, 5),
            keys: KeyDist::Zipf { range: 512 },
            scan_len: 4,
            seed: 0xCAFE,
        },
    );
    assert_eq!(report.issued, 128 * 40, "every request answered");
    for mut dict in server.shutdown() {
        dict.check_invariants()
            .unwrap_or_else(|e| panic!("shard dictionary corrupt under memory pressure: {e}"));
    }
}

mod refcount {
    use super::*;

    #[test]
    fn same_key_same_conn_fifo() {
        super::same_key_same_conn_fifo::<RefCount>();
    }

    #[test]
    fn seeded_same_key_histories_linearizable() {
        super::seeded_same_key_histories_linearizable::<RefCount>();
    }

    #[test]
    fn live_feed_advances_under_traffic() {
        super::live_feed_advances_under_traffic::<RefCount>();
    }

    #[test]
    fn shutdown_returns_consistent_dicts() {
        super::shutdown_returns_consistent_dicts::<RefCount>();
    }

    #[test]
    fn capped_pool_service_survives() {
        super::capped_pool_service_survives::<RefCount>();
    }
}

mod epoch {
    use super::*;

    #[test]
    fn same_key_same_conn_fifo() {
        super::same_key_same_conn_fifo::<Epoch>();
    }

    #[test]
    fn seeded_same_key_histories_linearizable() {
        super::seeded_same_key_histories_linearizable::<Epoch>();
    }

    #[test]
    fn live_feed_advances_under_traffic() {
        super::live_feed_advances_under_traffic::<Epoch>();
    }

    #[test]
    fn shutdown_returns_consistent_dicts() {
        super::shutdown_returns_consistent_dicts::<Epoch>();
    }

    #[test]
    fn capped_pool_service_survives() {
        super::capped_pool_service_survives::<Epoch>();
    }
}
