//! Simulated service traffic: thousands of connections multiplexed over
//! a few client threads, issuing Zipfian and scan-heavy mixes.
//!
//! Each client thread owns a slice of the connections and one reply
//! channel shared by all of them (responses carry `conn`/`seq`, so
//! multiplexing is just bookkeeping). Issue-side flow control is a
//! sliding window: once `window` requests are in flight the thread
//! blocks draining replies, which is what a real event loop does when
//! the kernel's socket buffers fill.

use std::time::{Duration, Instant};

use valois_core::channel::channel;
use valois_harness::{KeyDist, LatencySummary};
use valois_mem::Reclaimer;
use valois_sync::rng::SmallRng;
use valois_sync::shim::atomic::{AtomicU64, Ordering};

use crate::request::{Op, Outcome, Request, Response};
use crate::server::Server;

/// Percentages of get/put/del/scan requests (must sum to 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceMix {
    /// Percent `Get`.
    pub get_pct: u8,
    /// Percent `Put`.
    pub put_pct: u8,
    /// Percent `Del`.
    pub del_pct: u8,
    /// Percent `Scan`.
    pub scan_pct: u8,
}

impl ServiceMix {
    /// A custom mix.
    ///
    /// # Panics
    ///
    /// Panics unless the percentages sum to 100.
    pub fn new(get_pct: u8, put_pct: u8, del_pct: u8, scan_pct: u8) -> Self {
        assert_eq!(
            get_pct as u32 + put_pct as u32 + del_pct as u32 + scan_pct as u32,
            100,
            "service mix must sum to 100"
        );
        Self {
            get_pct,
            put_pct,
            del_pct,
            scan_pct,
        }
    }

    /// 70% get / 15% put / 10% del / 5% scan — the cache-ish mix.
    pub fn read_mostly() -> Self {
        Self::new(70, 15, 10, 5)
    }

    /// 30% get / 25% put / 20% del / 25% scan — the scan-heavy mix.
    pub fn scan_heavy() -> Self {
        Self::new(30, 25, 20, 25)
    }

    /// Draws a request kind as an [`Op`] over `keys`.
    pub fn sample(&self, rng: &mut SmallRng, keys: &KeyDist, scan_len: u32) -> Op {
        let key = keys.sample(rng);
        let roll: u8 = rng.gen_range(0..100u8);
        if roll < self.get_pct {
            Op::Get(key)
        } else if roll < self.get_pct + self.put_pct {
            Op::Put(key, key.wrapping_mul(3))
        } else if roll < self.get_pct + self.put_pct + self.del_pct {
            Op::Del(key)
        } else {
            Op::Scan {
                start: key,
                len: scan_len,
            }
        }
    }
}

/// Traffic shape for one [`run_service`] call.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Client threads (event loops).
    pub client_threads: usize,
    /// Simulated connections, split evenly across client threads.
    pub connections: usize,
    /// Requests issued per connection.
    pub requests_per_conn: u64,
    /// Max in-flight requests per client thread before it blocks on
    /// replies.
    pub window: usize,
    /// Request mix.
    pub mix: ServiceMix,
    /// Key distribution (the service benches use `Zipf` over 1M keys).
    pub keys: KeyDist,
    /// Keys per scan request.
    pub scan_len: u32,
    /// RNG seed; each client thread derives its own stream.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            client_threads: 2,
            connections: 1024,
            requests_per_conn: 32,
            window: 64,
            mix: ServiceMix::read_mostly(),
            keys: KeyDist::Zipf { range: 1_000_000 },
            scan_len: 16,
            seed: 0x5EED_1995_5E4F_0001,
        }
    }
}

/// What a traffic run observed.
#[derive(Debug, Clone, Copy)]
pub struct SimReport {
    /// Requests issued (== replies received; the run drains fully).
    pub issued: u64,
    /// Wall-clock time of the issue+drain phase.
    pub wall: Duration,
    /// Aggregate serving rate.
    pub ops_per_sec: f64,
    /// Issue-to-served latency quantiles over the run (`None` for an
    /// empty run).
    pub latency: Option<LatencySummary>,
    /// Replies that came back [`Outcome::Overloaded`].
    pub overloaded: u64,
}

/// Drives `cfg` worth of simulated traffic through `server`, blocking
/// until every reply has been drained.
pub fn run_service<R: Reclaimer + 'static>(server: &Server<R>, cfg: &SimConfig) -> SimReport {
    let threads = cfg.client_threads.max(1);
    let conns_per_thread = (cfg.connections.max(1)).div_ceil(threads);
    let overloaded = AtomicU64::new(0);
    let issued_total = AtomicU64::new(0);
    let latency_before = server.latency().count();
    let started = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let overloaded = &overloaded;
            let issued_total = &issued_total;
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(
                    cfg.seed ^ ((t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                );
                let first_conn = (t * conns_per_thread) as u64;
                let conns = conns_per_thread as u64;
                let (reply_tx, reply_rx) = channel::<Response>();
                let mut seqs = vec![0u64; conns_per_thread];
                let mut in_flight = 0usize;
                let mut issued = 0u64;
                let drain = |resp: Response| {
                    if resp.outcome == Outcome::Overloaded {
                        overloaded.fetch_add(1, Ordering::Relaxed);
                    }
                };
                for _round in 0..cfg.requests_per_conn {
                    for c in 0..conns {
                        let op = cfg.mix.sample(&mut rng, &cfg.keys, cfg.scan_len);
                        let idx = c as usize;
                        let req = Request {
                            conn: first_conn + c,
                            seq: seqs[idx],
                            op,
                            issued: Instant::now(),
                            reply: reply_tx.clone(),
                        };
                        seqs[idx] += 1;
                        server.submit(req).expect("server is running");
                        issued += 1;
                        in_flight += 1;
                        while in_flight >= cfg.window.max(1) {
                            let resp = reply_rx.recv().expect("shard replies");
                            drain(resp);
                            in_flight -= 1;
                        }
                    }
                }
                while in_flight > 0 {
                    let resp = reply_rx.recv().expect("shard replies");
                    drain(resp);
                    in_flight -= 1;
                }
                issued_total.fetch_add(issued, Ordering::Relaxed);
            });
        }
    });
    let wall = started.elapsed();
    let issued = issued_total.load(Ordering::Relaxed);
    let hist = server.latency();
    let latency = (hist.count() > latency_before)
        .then(|| hist.summary())
        .flatten();
    SimReport {
        issued,
        wall,
        ops_per_sec: issued as f64 / wall.as_secs_f64().max(f64::EPSILON),
        latency,
        overloaded: overloaded.load(Ordering::Relaxed),
    }
}
