//! A sharded key-value *service* front-end over the Valois structures —
//! the paper's §1 claim ("a building block for other data structures and
//! systems") taken to its logical end: a running service whose every
//! concurrent component is one of the lock-free pieces built in this
//! workspace.
//!
//! # Architecture
//!
//! ```text
//!  simulated connections          shard workers (one thread each)
//!  ┌──────────────────┐   route   ┌──────────────────────────────┐
//!  │ client thread 0  │──────────▶│ shard 0: MPSC channel ──▶    │
//!  │   conns 0..k     │   by key  │   batched drain ──▶          │
//!  ├──────────────────┤           │   ResizableHashDict<_,_,_,R> │
//!  │ client thread 1  │──────────▶│   + LatencyHistogram         │
//!  │   conns k..2k    │           ├──────────────────────────────┤
//!  └──────────────────┘◀──────────│ shard 1: …                   │
//!        replies (per-request     └──────────────────────────────┘
//!         channels)                        ▲
//!                                          │ samples every tick
//!                                  telemetry::StatsFeed
//! ```
//!
//! * [`request`] — the wire types: [`Op`], [`Request`], [`Response`].
//! * [`shard`] — one worker: a batched drain loop over the lock-free
//!   MPSC channel ([`valois_core::channel`]) serving a
//!   [`ResizableHashDict`](valois_dict::ResizableHashDict).
//! * [`server`] — the [`Server`]: routing (same key → same shard, which
//!   is what makes per-key FIFO ordering hold end to end), lifecycle,
//!   aggregate stats.
//! * [`telemetry`] — [`StatsFeed`]: a sampler thread turning the live
//!   counters (kept fresh by the cursors' periodic tally flush) into
//!   per-interval [`Tick`]s.
//! * [`sim`] — thousands of simulated connections multiplexed over a few
//!   client threads, issuing Zipfian and scan-heavy mixes from
//!   [`valois_harness::workload`].
//!
//! # Ordering contract
//!
//! Requests for the *same key* from the *same connection* are answered
//! in issue order: the router sends one key to one shard for the
//! process's lifetime, the channel is FIFO, and the drain loop serves a
//! batch in dequeue order. Requests for different keys may be reordered
//! relative to each other (they can land on different shards); the
//! linearizability of each individual operation is the dictionary's.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod request;
pub mod server;
pub mod shard;
pub mod sim;
pub mod telemetry;

pub use request::{Op, Outcome, Request, Response};
pub use server::{route, BlockingClient, Server, ServiceConfig};
pub use shard::{Shard, ShardStats};
pub use sim::{run_service, ServiceMix, SimConfig, SimReport};
pub use telemetry::{StatsFeed, Tick};
