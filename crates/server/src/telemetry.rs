//! The live stats feed: a sampler thread turning the service's always-on
//! counters into per-interval [`Tick`]s.
//!
//! Three layers feed one tick, none of them added for monitoring's sake:
//!
//! 1. **Shard counters** — completed/batches/commits, plus the latency
//!    histogram (racy snapshot reads, as all live monitoring is).
//! 2. **Structure + protocol counters** — [`ListStats`]/[`MemStats`]
//!    from the shard dictionaries. These advance *mid-operation* because
//!    cursors flush their batched tallies periodically, not only on
//!    drop; without that flush a long-lived cursor froze the feed (the
//!    stale-live-stats bug this PR fixes, pinned by
//!    `crates/core/tests/live_stats.rs`).
//! 3. **Flight recorder** — [`valois_trace::snapshot`] deltas when the
//!    `trace` feature armed the recorder; all-zero otherwise.
//!
//! See `docs/OBSERVABILITY.md` for the workflow.

use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use valois_core::ListStats;
use valois_harness::LatencySummary;
use valois_mem::Reclaimer;
use valois_sync::shim::atomic::{AtomicBool, Ordering};

use crate::shard::Shard;

/// One interval's worth of service statistics.
#[derive(Debug, Clone, Copy)]
pub struct Tick {
    /// Tick index (0-based).
    pub index: u64,
    /// Requests served, cumulative.
    pub completed: u64,
    /// Requests served during this interval.
    pub delta_completed: u64,
    /// Serving rate over this interval.
    pub ops_per_sec: f64,
    /// Cumulative latency quantiles (`None` before the first sample).
    pub latency: Option<LatencySummary>,
    /// List traversal steps during this interval (all shards).
    pub next_steps: u64,
    /// Successful inserts during this interval.
    pub inserts: u64,
    /// Successful deletes during this interval.
    pub deletes: u64,
    /// `SafeRead`s during this interval (0 under the epoch backend).
    pub safe_reads: u64,
    /// Epoch-backend gauge: nodes currently parked in limbo, all shards.
    pub epoch_limbo_depth: u64,
    /// Flight-recorder events during this interval (0 when the recorder
    /// is off).
    pub trace_events: u64,
}

impl std::fmt::Display for Tick {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "t={:>4}  {:>9.0} ops/s  served {:>8}",
            self.index, self.ops_per_sec, self.delta_completed,
        )?;
        if let Some(l) = self.latency {
            write!(
                f,
                "  p50 {:>7.1?}  p99 {:>7.1?}  p999 {:>7.1?}",
                l.p50, l.p99, l.p999
            )?;
        }
        write!(
            f,
            "  steps {:>8}  ins {:>6}  del {:>6}  limbo {:>5}",
            self.next_steps, self.inserts, self.deletes, self.epoch_limbo_depth
        )
    }
}

/// A running sampler: reads every shard's counters at a fixed interval
/// and appends a [`Tick`]. Stop it (and collect the ticks) with
/// [`StatsFeed::stop`] *before* shutting the server down.
pub struct StatsFeed {
    ticks: Arc<Mutex<Vec<Tick>>>,
    stop: Arc<AtomicBool>,
    sampler: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for StatsFeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsFeed").finish_non_exhaustive()
    }
}

/// Sums the interesting [`ListStats`] fields across shards.
fn sum_list_stats<R: Reclaimer>(shards: &[Arc<Shard<R>>]) -> ListStats {
    let mut out = ListStats::default();
    for s in shards {
        let l = s.dict.list_stats();
        out.next_steps += l.next_steps;
        out.insert_successes += l.insert_successes;
        out.delete_successes += l.delete_successes;
        out.updates += l.updates;
    }
    out
}

impl StatsFeed {
    /// Starts sampling `shards` every `interval`. `print` additionally
    /// writes each tick to stdout (the live per-second feed).
    pub fn start<R: Reclaimer + 'static>(
        shards: &[Arc<Shard<R>>],
        interval: Duration,
        print: bool,
    ) -> Self {
        let shards: Vec<Arc<Shard<R>>> = shards.to_vec();
        let ticks = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let ticks_in = Arc::clone(&ticks);
        let stop_in = Arc::clone(&stop);
        let sampler = std::thread::Builder::new()
            .name("valois-stats-feed".into())
            .spawn(move || {
                let stop = stop_in;
                let mut index = 0u64;
                let mut prev_completed = 0u64;
                let mut prev_list = sum_list_stats(&shards);
                let mut prev_safe_reads = 0u64;
                let mut prev_trace = valois_trace::snapshot();
                // ORDER: Acquire pairs with the Release store in
                // `StatsFeed::stop`/`Drop` — the plain stop-flag
                // handshake before the join.
                while !stop.load(Ordering::Acquire) {
                    std::thread::sleep(interval);
                    let completed: u64 = shards
                        .iter()
                        .map(|s| s.stats.completed.load(Ordering::Relaxed))
                        .sum();
                    let list = sum_list_stats(&shards);
                    let list_delta = list.since(&prev_list);
                    let mut safe_reads = 0u64;
                    let mut limbo = 0u64;
                    for s in &shards {
                        let m = s.mem_stats();
                        safe_reads += m.safe_reads;
                        limbo += m.epoch_limbo_depth;
                    }
                    let latency = {
                        let merged = valois_harness::LatencyHistogram::new();
                        for s in &shards {
                            merged.merge(&s.latency);
                        }
                        merged.summary()
                    };
                    let trace = valois_trace::snapshot();
                    let trace_events: u64 = trace
                        .counts
                        .iter()
                        .zip(prev_trace.counts.iter())
                        .map(|(now, then)| now.saturating_sub(*then))
                        .sum();
                    let tick = Tick {
                        index,
                        completed,
                        delta_completed: completed.saturating_sub(prev_completed),
                        ops_per_sec: completed.saturating_sub(prev_completed) as f64
                            / interval.as_secs_f64().max(f64::EPSILON),
                        latency,
                        next_steps: list_delta.next_steps,
                        inserts: list_delta.insert_successes,
                        deletes: list_delta.delete_successes,
                        safe_reads: safe_reads.saturating_sub(prev_safe_reads),
                        epoch_limbo_depth: limbo,
                        trace_events,
                    };
                    if print {
                        println!("{tick}");
                    }
                    ticks_in.lock().expect("feed mutex").push(tick);
                    prev_completed = completed;
                    prev_list = list;
                    prev_safe_reads = safe_reads;
                    prev_trace = trace;
                    index += 1;
                }
            })
            .expect("spawn stats feed");
        Self {
            ticks,
            stop,
            sampler: Some(sampler),
        }
    }

    /// Ticks collected so far (the feed keeps running).
    pub fn ticks(&self) -> Vec<Tick> {
        self.ticks.lock().expect("feed mutex").clone()
    }

    /// Stops the sampler and returns every tick collected.
    pub fn stop(mut self) -> Vec<Tick> {
        // ORDER: Release store / Acquire load — the sampler must observe
        // the flag before we join it; the pairing is the plain
        // stop-flag handshake.
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.sampler.take() {
            handle.join().expect("stats feed panicked");
        }
        Arc::try_unwrap(std::mem::take(&mut self.ticks))
            .map(|m| m.into_inner().expect("feed mutex"))
            .unwrap_or_else(|arc| arc.lock().expect("feed mutex").clone())
    }
}

impl Drop for StatsFeed {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.sampler.take() {
            let _ = handle.join();
        }
    }
}
