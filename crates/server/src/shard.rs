//! One shard: a worker thread draining a lock-free MPSC request channel
//! in batches and serving a [`ResizableHashDict`].
//!
//! The drain loop is the service's heartbeat. It blocks (spin + yield)
//! for the first request, then opportunistically drains up to
//! [`ServiceConfig::batch`](crate::ServiceConfig) more without blocking —
//! batching amortizes the channel's dequeue CAS traffic and gives the
//! simulated group commit something to group. The loop exits when every
//! sender is gone and the channel is drained, so shutdown is just
//! "drop the senders, join the workers" and no request is ever lost.

use std::time::Duration;

use valois_core::channel::Receiver;
use valois_core::AllocError;
use valois_dict::{Dictionary, ResizableHashDict};
use valois_harness::LatencyHistogram;
use valois_mem::{MemStats, Reclaimer};
use valois_sync::shim::atomic::{AtomicU64, Ordering};

use crate::request::{Op, Outcome, Request, Response};
use crate::server::route;

/// Live counters for one shard. All relaxed: these are monitoring
/// counters read by the telemetry sampler, not synchronization.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Requests served (reply sent).
    pub completed: AtomicU64,
    /// Drain batches processed.
    pub batches: AtomicU64,
    /// Simulated group commits performed (see
    /// [`ServiceConfig::commit_group`](crate::ServiceConfig)).
    pub commits: AtomicU64,
    /// `Put`s refused with [`Outcome::Overloaded`].
    pub overloaded: AtomicU64,
}

/// One shard: the dictionary it owns plus its live stats.
pub struct Shard<R: Reclaimer> {
    /// This shard's index (also its routing slot).
    pub id: usize,
    /// Total shard count (needed to filter scan ranges down to the keys
    /// this shard owns).
    pub shards: usize,
    /// The shard's store.
    pub dict: ResizableHashDict<u64, u64, std::hash::RandomState, R>,
    /// Live counters.
    pub stats: ShardStats,
    /// Issue-to-served latency (includes channel queueing delay).
    pub latency: LatencyHistogram,
}

impl<R: Reclaimer> std::fmt::Debug for Shard<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("id", &self.id)
            .field("completed", &self.stats.completed)
            .finish_non_exhaustive()
    }
}

impl<R: Reclaimer> Shard<R> {
    /// Serves one operation against this shard's dictionary.
    pub fn serve(&self, op: &Op) -> Outcome {
        match *op {
            Op::Get(k) => Outcome::Value(self.dict.find(&k)),
            Op::Put(k, v) => match self.dict.try_insert(k, v) {
                Ok(inserted) => Outcome::Inserted(inserted),
                // The dictionary already shed (magazines + epoch limbo,
                // windows closed) and retried; a service answers rather
                // than panics.
                Err(AllocError) => {
                    self.stats.overloaded.fetch_add(1, Ordering::Relaxed);
                    Outcome::Overloaded
                }
            },
            Op::Del(k) => Outcome::Deleted(self.dict.remove(&k)),
            Op::Scan { start, len } => {
                let mut hits = 0u32;
                for k in start..start.saturating_add(len as u64) {
                    if route(k, self.shards) == self.id && self.dict.contains(&k) {
                        hits += 1;
                    }
                }
                Outcome::Scanned(hits)
            }
        }
    }

    /// The shard arena's memory-protocol counters.
    pub fn mem_stats(&self) -> MemStats {
        self.dict.mem_stats()
    }
}

/// Per-worker knobs, copied out of
/// [`ServiceConfig`](crate::ServiceConfig) at spawn.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WorkerConfig {
    pub batch: usize,
    pub commit_group: u32,
    pub commit_stall: Duration,
}

/// The drain loop: runs on the shard's worker thread until every sender
/// is dropped and the channel is drained.
pub(crate) fn worker_loop<R: Reclaimer>(
    shard: &Shard<R>,
    rx: &Receiver<Request>,
    cfg: WorkerConfig,
) {
    let mut batch: Vec<Request> = Vec::with_capacity(cfg.batch.max(1));
    // Puts not yet covered by a simulated group commit. The model: every
    // `commit_group` puts cost one `commit_stall` sleep (an fsync /
    // replication-ack proxy), so durability cost scales with write
    // volume per shard and overlaps across shards — which is what makes
    // shard-count scaling honestly measurable even on one core.
    let mut uncommitted_puts: u32 = 0;
    // WAIT-FREE: not a CAS retry loop — one iteration per drained batch,
    // bounded by channel disconnection; the RMWs inside are single
    // fetch_add stat counters, which cannot fail and be retried.
    loop {
        batch.clear();
        match rx.recv() {
            Some(req) => batch.push(req),
            None => break, // drained + all senders gone
        }
        while batch.len() < cfg.batch {
            match rx.try_recv() {
                Ok(req) => batch.push(req),
                Err(_) => break, // empty (or newly disconnected): serve what we have
            }
        }
        valois_trace::probe!(ServiceBatch, batch.len() as u64, shard.id as u64);
        shard.stats.batches.fetch_add(1, Ordering::Relaxed);
        for req in batch.drain(..) {
            let outcome = shard.serve(&req.op);
            if matches!(req.op, Op::Put(..)) {
                uncommitted_puts += 1;
            }
            shard.latency.record(req.issued.elapsed());
            shard.stats.completed.fetch_add(1, Ordering::Relaxed);
            // A client that hung up mid-request is not an error.
            let _ = req.reply.send(Response {
                conn: req.conn,
                seq: req.seq,
                outcome,
            });
        }
        if cfg.commit_group > 0 {
            // WAIT-FREE: bounded arithmetic countdown, not a CAS retry —
            // each pass subtracts a full commit group; the fetch_add is a
            // stat counter.
            while uncommitted_puts >= cfg.commit_group {
                std::thread::sleep(cfg.commit_stall);
                shard.stats.commits.fetch_add(1, Ordering::Relaxed);
                uncommitted_puts -= cfg.commit_group;
            }
        }
    }
}
