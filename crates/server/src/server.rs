//! The [`Server`]: shard lifecycle, key routing, aggregate statistics,
//! and a blocking single-op client used by the correctness tests.

use std::hash::RandomState;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use valois_core::channel::{channel, Receiver, Sender};
use valois_core::ArenaConfig;
use valois_dict::{Dictionary, ResizableHashDict};
use valois_harness::LatencyHistogram;
use valois_mem::{MemStats, Reclaimer};
use valois_sync::shim::atomic::{AtomicU64, Ordering};

use crate::request::{Op, Outcome, Request, Response};
use crate::shard::{worker_loop, Shard, ShardStats, WorkerConfig};

/// Routes a key to a shard. Stable for the life of the process — that
/// stability is the per-key FIFO contract: one key always flows through
/// one shard's channel.
///
/// Fibonacci multiplicative hashing on the high bits: cheap, and
/// sequential keys (the scan workloads) spread across shards instead of
/// convoying on one.
pub fn route(key: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % shards
}

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Shard (worker thread) count.
    pub shards: usize,
    /// Max requests served per drain batch.
    pub batch: usize,
    /// Puts per simulated group commit; `0` disables the commit stall
    /// entirely (pure in-memory serving).
    pub commit_group: u32,
    /// Sleep per group commit — the fsync/replication-ack proxy.
    pub commit_stall: Duration,
    /// Initial bucket count per shard dictionary.
    pub initial_buckets: u64,
    /// Node-arena configuration per shard dictionary (cap it to exercise
    /// the shed-under-load path).
    pub arena: ArenaConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            batch: 64,
            commit_group: 0,
            commit_stall: Duration::from_micros(200),
            initial_buckets: 64,
            arena: ArenaConfig::default(),
        }
    }
}

/// A running sharded KV service: `shards` worker threads, each owning a
/// [`ResizableHashDict`] and draining its own MPSC channel.
pub struct Server<R: Reclaimer + 'static> {
    shards: Vec<Arc<Shard<R>>>,
    txs: Vec<Sender<Request>>,
    workers: Vec<JoinHandle<()>>,
    next_conn: AtomicU64,
}

impl<R: Reclaimer> std::fmt::Debug for Server<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("shards", &self.shards.len())
            .field("completed", &self.completed())
            .finish_non_exhaustive()
    }
}

impl<R: Reclaimer> Server<R> {
    /// Starts the shard workers.
    pub fn start(config: &ServiceConfig) -> Self {
        let nshards = config.shards.max(1);
        let worker_cfg = WorkerConfig {
            batch: config.batch.max(1),
            commit_group: config.commit_group,
            commit_stall: config.commit_stall,
        };
        let mut shards = Vec::with_capacity(nshards);
        let mut txs = Vec::with_capacity(nshards);
        let mut workers = Vec::with_capacity(nshards);
        for id in 0..nshards {
            let shard = Arc::new(Shard {
                id,
                shards: nshards,
                dict: ResizableHashDict::with_settings(
                    config.initial_buckets,
                    RandomState::new(),
                    config.arena,
                ),
                stats: ShardStats::default(),
                latency: LatencyHistogram::new(),
            });
            let (tx, rx): (Sender<Request>, Receiver<Request>) = channel();
            let worker_shard = Arc::clone(&shard);
            let handle = std::thread::Builder::new()
                .name(format!("valois-shard-{id}"))
                .spawn(move || worker_loop(&worker_shard, &rx, worker_cfg))
                .expect("spawn shard worker");
            shards.push(shard);
            txs.push(tx);
            workers.push(handle);
        }
        Self {
            shards,
            txs,
            workers,
            next_conn: AtomicU64::new(0),
        }
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards (telemetry samplers clone these `Arc`s).
    pub fn shards(&self) -> &[Arc<Shard<R>>] {
        &self.shards
    }

    /// Which shard a key routes to.
    pub fn shard_of(&self, key: u64) -> usize {
        route(key, self.shards.len())
    }

    /// Enqueues a request on its key's shard. Returns the request back
    /// if that shard has shut down (only possible mid-`shutdown`).
    pub fn submit(&self, req: Request) -> Result<(), Request> {
        let shard = self.shard_of(req.op.route_key());
        self.txs[shard].send(req).map_err(|e| e.0)
    }

    /// A fresh connection id (routing and ordering domain for clients).
    pub fn new_conn(&self) -> u64 {
        self.next_conn.fetch_add(1, Ordering::Relaxed)
    }

    /// Total requests served across shards.
    pub fn completed(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.stats.completed.load(Ordering::Relaxed))
            .sum()
    }

    /// Total `Put`s refused with [`Outcome::Overloaded`].
    pub fn overloaded(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.stats.overloaded.load(Ordering::Relaxed))
            .sum()
    }

    /// All shards' latency histograms merged into one.
    pub fn latency(&self) -> LatencyHistogram {
        let merged = LatencyHistogram::new();
        for s in &self.shards {
            merged.merge(&s.latency);
        }
        merged
    }

    /// Memory-protocol counters summed across shard arenas (gauges like
    /// `epoch_limbo_depth` sum too: total garbage parked service-wide).
    pub fn mem_stats(&self) -> MemStats {
        let mut out = MemStats::default();
        for s in &self.shards {
            let m = s.mem_stats();
            out = MemStats {
                safe_reads: out.safe_reads + m.safe_reads,
                safe_read_retries: out.safe_read_retries + m.safe_read_retries,
                releases: out.releases + m.releases,
                allocs: out.allocs + m.allocs,
                alloc_retries: out.alloc_retries + m.alloc_retries,
                reclaims: out.reclaims + m.reclaims,
                swings: out.swings + m.swings,
                swing_failures: out.swing_failures + m.swing_failures,
                grows: out.grows + m.grows,
                epoch_pins: out.epoch_pins + m.epoch_pins,
                epoch_advances: out.epoch_advances + m.epoch_advances,
                epoch_retires: out.epoch_retires + m.epoch_retires,
                epoch_frees: out.epoch_frees + m.epoch_frees,
                epoch_limbo_depth: out.epoch_limbo_depth + m.epoch_limbo_depth,
                epoch_pin_lag: out.epoch_pin_lag.max(m.epoch_pin_lag),
            };
        }
        out
    }

    /// Total items across shard dictionaries (best-effort snapshot).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.dict.len()).sum()
    }

    /// Whether every shard dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A blocking single-op client: each call round-trips one request
    /// and waits for its reply. Implements [`Dictionary`], so the
    /// linearizability harness can drive the whole service stack.
    pub fn client(&self) -> BlockingClient<'_, R> {
        BlockingClient {
            server: self,
            conn: self.new_conn(),
            seq: AtomicU64::new(0),
        }
    }

    /// Stops the service: drops every sender (workers drain their
    /// channels and exit), joins the workers, and hands back the shard
    /// dictionaries for invariant checking.
    ///
    /// # Panics
    ///
    /// Panics if a worker panicked, or if shard `Arc`s are still held
    /// elsewhere (stop any [`StatsFeed`](crate::StatsFeed) first).
    pub fn shutdown(mut self) -> Vec<ResizableHashDict<u64, u64, RandomState, R>> {
        self.txs.clear();
        for handle in self.workers.drain(..) {
            handle.join().expect("shard worker panicked");
        }
        self.shards
            .drain(..)
            .map(|arc| {
                Arc::try_unwrap(arc)
                    .unwrap_or_else(|_| panic!("shard Arc still held at shutdown"))
                    .dict
            })
            .collect()
    }
}

impl<R: Reclaimer> Drop for Server<R> {
    fn drop(&mut self) {
        // `shutdown` already drained these; a plain drop still joins so
        // worker threads never outlive the server.
        self.txs.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A blocking client connection: one request in flight at a time, each
/// with its own reply channel (so any number of `BlockingClient`s — or
/// threads sharing one via `&` — never steal each other's replies).
pub struct BlockingClient<'a, R: Reclaimer + 'static> {
    server: &'a Server<R>,
    conn: u64,
    seq: AtomicU64,
}

impl<R: Reclaimer> std::fmt::Debug for BlockingClient<'_, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockingClient")
            .field("conn", &self.conn)
            .finish_non_exhaustive()
    }
}

impl<R: Reclaimer> BlockingClient<'_, R> {
    /// Round-trips one operation through the service.
    pub fn call(&self, op: Op) -> Outcome {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel::<Response>();
        self.server
            .submit(Request {
                conn: self.conn,
                seq,
                op,
                issued: Instant::now(),
                reply: tx,
            })
            .expect("server is running");
        let resp = rx.recv().expect("shard replies before disconnecting");
        debug_assert_eq!(resp.seq, seq);
        resp.outcome
    }
}

impl<R: Reclaimer> Dictionary<u64, u64> for BlockingClient<'_, R> {
    fn insert(&self, key: u64, value: u64) -> bool {
        matches!(self.call(Op::Put(key, value)), Outcome::Inserted(true))
    }

    fn remove(&self, key: &u64) -> bool {
        matches!(self.call(Op::Del(*key)), Outcome::Deleted(true))
    }

    fn find(&self, key: &u64) -> Option<u64> {
        match self.call(Op::Get(*key)) {
            Outcome::Value(v) => v,
            other => unreachable!("Get answered with {other:?}"),
        }
    }

    fn contains(&self, key: &u64) -> bool {
        matches!(self.call(Op::Get(*key)), Outcome::Value(Some(_)))
    }

    fn len(&self) -> usize {
        self.server.len()
    }
}
