//! The service's wire types: operations, requests, responses.
//!
//! Keys and values are `u64` — the service models a fixed-width KV store
//! (the interesting part is the concurrency, not the serialization).

use std::time::Instant;

use valois_core::channel::Sender;

/// One key-value operation, as issued by a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Read the value under a key.
    Get(u64),
    /// Insert a value if the key is absent (the paper's `Insert`
    /// semantics: keys stay unique, a duplicate put is refused).
    Put(u64, u64),
    /// Remove a key.
    Del(u64),
    /// Count the present keys in `start .. start + len` that this
    /// request's shard owns. A sharded scan is a scatter-gather in a
    /// real deployment; here each scan inspects one shard's slice of
    /// the range, which is the part that stresses the dictionary.
    Scan {
        /// First key of the range.
        start: u64,
        /// Number of keys in the range.
        len: u32,
    },
}

impl Op {
    /// The key the router shards on.
    pub fn route_key(&self) -> u64 {
        match *self {
            Op::Get(k) | Op::Put(k, _) | Op::Del(k) => k,
            Op::Scan { start, .. } => start,
        }
    }
}

/// The result of serving an [`Op`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// `Get`: the value, if the key was present.
    Value(Option<u64>),
    /// `Put`: whether the key was inserted (`false` = already present).
    Inserted(bool),
    /// `Del`: whether a key was removed.
    Deleted(bool),
    /// `Scan`: how many keys of the shard's slice of the range were
    /// present.
    Scanned(u32),
    /// `Put` on a capped node pool that stayed exhausted even after the
    /// shard shed reclaimable memory (magazines + epoch limbo): the
    /// service answers instead of panicking, and the client may retry.
    Overloaded,
}

/// One request in flight: a connection's operation plus the reply route.
pub struct Request {
    /// Issuing connection id (the FIFO ordering domain, together with
    /// the key's shard).
    pub conn: u64,
    /// Per-connection sequence number.
    pub seq: u64,
    /// The operation.
    pub op: Op,
    /// Issue timestamp — shard workers record `issued → served` into
    /// their latency histogram, so queueing delay is part of the
    /// measured service latency (that is the point: convoys show up in
    /// the tail).
    pub issued: Instant,
    /// Where the response goes.
    pub reply: Sender<Response>,
}

impl std::fmt::Debug for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Request")
            .field("conn", &self.conn)
            .field("seq", &self.seq)
            .field("op", &self.op)
            .finish_non_exhaustive()
    }
}

/// The answer to a [`Request`], delivered on its reply channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// Echo of the request's connection id.
    pub conn: u64,
    /// Echo of the request's sequence number.
    pub seq: u64,
    /// What happened.
    pub outcome: Outcome,
}
