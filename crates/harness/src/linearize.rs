//! A small exhaustive linearizability checker (Wing & Gong style).
//!
//! §2.1 of the paper: "We also require our objects to be linearizable
//! \[14\]; this implies that operations appear to happen atomically at
//! some point during their execution." This module records real
//! concurrent histories (with logical timestamps around each operation)
//! and searches for a witness: a total order of the operations that (a)
//! respects real-time precedence and (b) matches sequential dictionary
//! semantics. Exponential in history size — use with a handful of threads
//! and a few operations each, which is exactly where linearizability bugs
//! live.

use std::collections::BTreeSet;
use std::fmt;
use valois_sync::shim::atomic::{AtomicU64, Ordering};

use valois_dict::Dictionary;

/// One dictionary operation (presence semantics; values are ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `Insert(k)` — succeeds iff `k` was absent.
    Insert(u64),
    /// `Delete(k)` — succeeds iff `k` was present.
    Remove(u64),
    /// `Find(k)` — "succeeds" iff `k` was present.
    Find(u64),
}

/// A completed operation with its observed result and logical interval.
#[derive(Debug, Clone, Copy)]
pub struct Recorded {
    /// Worker thread index.
    pub thread: usize,
    /// The operation.
    pub op: Op,
    /// Observed boolean outcome.
    pub result: bool,
    /// Logical timestamp taken immediately before invocation.
    pub start: u64,
    /// Logical timestamp taken immediately after response.
    pub end: u64,
}

/// A recorded concurrent history.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// The completed operations, in no particular order.
    pub ops: Vec<Recorded>,
}

impl History {
    /// Executes `plans[i]` on thread `i` against `dict`, recording logical
    /// start/end stamps for every operation.
    pub fn record<D: Dictionary<u64, u64>>(dict: &D, plans: &[Vec<Op>]) -> History {
        let clock = AtomicU64::new(0);
        let results: Vec<Vec<Recorded>> = std::thread::scope(|s| {
            let handles: Vec<_> = plans
                .iter()
                .enumerate()
                .map(|(tid, plan)| {
                    let clock = &clock;
                    s.spawn(move || {
                        let mut out = Vec::with_capacity(plan.len());
                        for &op in plan {
                            // ORDER: SeqCst — the shared clock must give
                            // all threads' start/end stamps one total
                            // order; the linearizability check compares
                            // stamps across threads.
                            let start = clock.fetch_add(1, Ordering::SeqCst);
                            let result = match op {
                                Op::Insert(k) => dict.insert(k, k),
                                Op::Remove(k) => dict.remove(&k),
                                Op::Find(k) => dict.contains(&k),
                            };
                            // ORDER: SeqCst — same total order as `start`.
                            let end = clock.fetch_add(1, Ordering::SeqCst);
                            out.push(Recorded {
                                thread: tid,
                                op,
                                result,
                                start,
                                end,
                            });
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        History {
            ops: results.into_iter().flatten().collect(),
        }
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.ops {
            writeln!(
                f,
                "T{} [{:>3},{:>3}] {:?} -> {}",
                r.thread, r.start, r.end, r.op, r.result
            )?;
        }
        Ok(())
    }
}

/// Searches for a linearization of `history` over an (initially empty)
/// set-semantics dictionary. Returns `true` iff one exists.
pub fn check_linearizable(history: &History) -> bool {
    let n = history.ops.len();
    assert!(
        n <= 24,
        "exhaustive checker is for small histories (≤ 24 ops)"
    );
    // done-set as a bitmask; model as a BTreeSet rebuilt incrementally.
    fn step(
        ops: &[Recorded],
        done: u32,
        model: &mut BTreeSet<u64>,
        memo: &mut std::collections::HashSet<(u32, u64)>,
    ) -> bool {
        if done == (1u32 << ops.len()) - 1 {
            return true;
        }
        // Memo key: done-set plus a cheap model fingerprint (the model is a
        // function of the done-set's successful ops, but hashing it guards
        // against revisiting equivalent states through different orders).
        let fp = model.iter().fold(0u64, |h, k| {
            h.wrapping_mul(0x100000001B3).wrapping_add(*k + 1)
        });
        if !memo.insert((done, fp)) {
            return false;
        }
        for (i, r) in ops.iter().enumerate() {
            if done & (1 << i) != 0 {
                continue;
            }
            // Real-time order: r may linearize now only if every operation
            // that *finished before r started* is already linearized.
            if ops
                .iter()
                .enumerate()
                .any(|(j, q)| done & (1 << j) == 0 && j != i && q.end < r.start)
            {
                continue;
            }
            // Does the result match sequential semantics?
            let (legal, inserted, removed) = match r.op {
                Op::Insert(k) => {
                    let absent = !model.contains(&k);
                    (r.result == absent, r.result.then_some(k), None)
                }
                Op::Remove(k) => {
                    let present = model.contains(&k);
                    (r.result == present, None, r.result.then_some(k))
                }
                Op::Find(k) => (r.result == model.contains(&k), None, None),
            };
            if !legal {
                continue;
            }
            if let Some(k) = inserted {
                model.insert(k);
            }
            if let Some(k) = removed {
                model.remove(&k);
            }
            if step(ops, done | (1 << i), model, memo) {
                return true;
            }
            if let Some(k) = inserted {
                model.remove(&k);
            }
            if let Some(k) = removed {
                model.insert(k);
            }
        }
        false
    }
    let mut model = BTreeSet::new();
    let mut memo = std::collections::HashSet::new();
    step(&history.ops, 0, &mut model, &mut memo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(thread: usize, op: Op, result: bool, start: u64, end: u64) -> Recorded {
        Recorded {
            thread,
            op,
            result,
            start,
            end,
        }
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let h = History {
            ops: vec![
                rec(0, Op::Insert(1), true, 0, 1),
                rec(0, Op::Find(1), true, 2, 3),
                rec(0, Op::Remove(1), true, 4, 5),
                rec(0, Op::Find(1), false, 6, 7),
            ],
        };
        assert!(check_linearizable(&h));
    }

    #[test]
    fn duplicate_insert_wins_once() {
        // Two overlapping inserts of the same key: linearizable iff
        // exactly one reports success.
        let good = History {
            ops: vec![
                rec(0, Op::Insert(5), true, 0, 3),
                rec(1, Op::Insert(5), false, 1, 4),
            ],
        };
        assert!(check_linearizable(&good));
        let bad = History {
            ops: vec![
                rec(0, Op::Insert(5), true, 0, 3),
                rec(1, Op::Insert(5), true, 1, 4),
            ],
        };
        assert!(!check_linearizable(&bad), "two winners is unserializable");
    }

    #[test]
    fn stale_read_after_precedence_is_rejected() {
        // Insert completes strictly before the find starts, yet the find
        // misses: not linearizable.
        let bad = History {
            ops: vec![
                rec(0, Op::Insert(9), true, 0, 1),
                rec(1, Op::Find(9), false, 2, 3),
            ],
        };
        assert!(!check_linearizable(&bad));
        // If they overlap, the miss is allowed (find linearizes first).
        let ok = History {
            ops: vec![
                rec(0, Op::Insert(9), true, 0, 2),
                rec(1, Op::Find(9), false, 1, 3),
            ],
        };
        assert!(check_linearizable(&ok));
    }

    #[test]
    fn remove_of_absent_key_must_fail() {
        let bad = History {
            ops: vec![rec(0, Op::Remove(1), true, 0, 1)],
        };
        assert!(!check_linearizable(&bad));
    }

    #[test]
    fn recorded_real_history_is_linearizable() {
        use valois_dict::SortedListDict;
        // Three threads, overlapping inserts/removes/finds on 3 keys.
        let dict: SortedListDict<u64, u64> = SortedListDict::new();
        let plans = vec![
            vec![Op::Insert(1), Op::Remove(2), Op::Find(3), Op::Insert(2)],
            vec![Op::Insert(2), Op::Find(1), Op::Remove(1), Op::Find(2)],
            vec![Op::Insert(3), Op::Remove(3), Op::Insert(1), Op::Find(1)],
        ];
        for _ in 0..50 {
            let d = &dict;
            let h = History::record(d, &plans);
            assert!(
                check_linearizable(&h),
                "non-linearizable history observed:\n{h}"
            );
            // Reset between rounds.
            for k in 1..=3 {
                let _ = dict.remove(&k);
            }
        }
    }
}
