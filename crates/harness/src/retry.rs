//! The deterministic worst-case workload for retry resumption (after
//! Träff & Pöter, arXiv:2010.15755): a long *cold prefix* of keys that
//! no operation ever touches, with every thread hammering a small *hot
//! window* of keys ordered after it.
//!
//! The shape isolates exactly the cost `Cursor::resume` and cached
//! cursors remove. Under restart-from-head, every operation — and every
//! CAS retry — re-walks the whole cold prefix to reach the contention
//! site: O(prefix) per attempt. With resumption the prefix is paid once
//! per thread (to warm the cached cursor) and each retry costs only the
//! distance back to the conflict. Unlike the randomized mixed-op
//! workloads ([`crate::run_throughput`]), the operation sequence is a
//! fixed function of `(thread, iteration)` — identical across runs and
//! configurations — so two measurements differ only in the mechanism
//! under test.

use std::sync::Barrier;
use std::time::{Duration, Instant};

use valois_dict::{Dictionary, SortedListDict};

/// Shape of a deterministic hot-window run.
#[derive(Debug, Clone, Copy)]
pub struct HotWindowConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Cold-prefix length: keys `0, 2, 4, ..` inserted before the run
    /// and never touched by it.
    pub prefix: u64,
    /// Hot-window width: the number of distinct keys (all ordered after
    /// the prefix) the threads contend on.
    pub window: u64,
    /// Alternating insert/remove pairs each thread performs.
    pub pairs_per_thread: u64,
}

impl Default for HotWindowConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            prefix: 4096,
            window: 8,
            pairs_per_thread: 1000,
        }
    }
}

/// Measurements of one hot-window run.
#[derive(Debug, Clone, Copy)]
pub struct HotWindowResult {
    /// Wall-clock time for all threads to finish their fixed op counts.
    pub elapsed: Duration,
    /// Total operations performed (`2 * pairs_per_thread * threads`).
    pub ops: u64,
    /// Mean nanoseconds per operation.
    pub ns_per_op: f64,
    /// Failed insert/delete CAS attempts per operation.
    pub retries_per_op: f64,
    /// `Cursor::resume` back-walks that found a deleted anchor.
    pub resumes: u64,
    /// Total back-link hops those resumes performed (`resume_hops /
    /// resumes` = mean distance-to-conflict).
    pub resume_hops: u64,
    /// Forward `Next` steps per operation — the positioning cost the
    /// resumption machinery exists to cut.
    pub next_steps_per_op: f64,
}

/// Runs the deterministic hot-window workload on `dict` and returns the
/// per-op costs derived from wall clock and [`SortedListDict::list_stats`]
/// deltas.
///
/// The dictionary should be freshly built (the prefix is inserted here);
/// pass one constructed with
/// [`SortedListDict::with_config_cached`]`(.., false)` to measure the
/// restart-from-head baseline.
pub fn run_hot_window(
    dict: &SortedListDict<u64, u64>,
    config: &HotWindowConfig,
) -> HotWindowResult {
    // Cold prefix: even keys, so the hot window below interleaves
    // nothing with it.
    for k in 0..config.prefix {
        dict.insert(2 * k, k);
    }
    let base = 2 * config.prefix + 2;
    let before = dict.list_stats();
    let barrier = Barrier::new(config.threads + 1);
    let started = std::thread::scope(|s| {
        for tid in 0..config.threads as u64 {
            let (dict, barrier) = (&dict, &barrier);
            let config = *config;
            s.spawn(move || {
                barrier.wait();
                for i in 0..config.pairs_per_thread {
                    // Every thread walks the same window phase-shifted
                    // by its id: all CASes land within `window` cells of
                    // each other, and the schedule is a pure function of
                    // (tid, i).
                    let key = base + 2 * ((i + tid) % config.window);
                    dict.insert(key, tid);
                    dict.remove(&key);
                }
            });
        }
        // Start the clock *before* releasing the barrier: on a saturated
        // machine the workers can run to completion before this thread is
        // rescheduled, and a post-release `Instant::now()` would miss the
        // whole measurement window.
        let started = Instant::now();
        barrier.wait();
        started
    });
    let elapsed = started.elapsed();
    let delta = dict.list_stats().since(&before);
    let ops = 2 * config.pairs_per_thread * config.threads as u64;
    let retries = delta.insert_retries() + delta.delete_retries();
    HotWindowResult {
        elapsed,
        ops,
        ns_per_op: elapsed.as_nanos() as f64 / ops as f64,
        retries_per_op: retries as f64 / ops as f64,
        resumes: delta.resumes,
        resume_hops: delta.resume_hops,
        next_steps_per_op: delta.next_steps as f64 / ops as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valois_core::ArenaConfig;

    #[test]
    fn hot_window_is_deterministic_in_shape() {
        let config = HotWindowConfig {
            threads: 2,
            prefix: 128,
            window: 4,
            pairs_per_thread: 50,
        };
        let dict = SortedListDict::new();
        let r = run_hot_window(&dict, &config);
        assert_eq!(r.ops, 2 * 50 * 2);
        assert!(r.ns_per_op > 0.0);
        // The run leaves the prefix intact: every op targeted the window.
        assert_eq!(dict.keys().len(), 128);
    }

    #[test]
    fn resumption_beats_restart_from_head_single_thread() {
        // Even uncontended (one thread, zero retries), the cached cursor
        // must slash the positioning walk over the cold prefix.
        let config = HotWindowConfig {
            threads: 1,
            prefix: 1024,
            window: 4,
            pairs_per_thread: 100,
        };
        let baseline = {
            let dict = SortedListDict::with_config_cached(ArenaConfig::default(), false);
            run_hot_window(&dict, &config)
        };
        let resumed = {
            let dict = SortedListDict::with_config_cached(ArenaConfig::default(), true);
            run_hot_window(&dict, &config)
        };
        assert!(
            baseline.next_steps_per_op >= config.prefix as f64,
            "baseline must re-walk the prefix, got {} steps/op",
            baseline.next_steps_per_op
        );
        assert!(
            resumed.next_steps_per_op * 10.0 < baseline.next_steps_per_op,
            "resumption must cut steps/op >10x: {} vs {}",
            resumed.next_steps_per_op,
            baseline.next_steps_per_op
        );
    }
}
