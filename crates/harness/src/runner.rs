//! Duration-based multi-threaded throughput runs (experiments E1–E6).

use std::fmt;
use std::time::{Duration, Instant};
use valois_sync::shim::atomic::{AtomicBool, AtomicU64, Ordering};

use valois_baseline::CriticalDelay;
use valois_dict::Dictionary;

use crate::latency::{LatencyHistogram, LatencySummary};
use crate::workload::{OpKind, WorkloadSpec};

/// Configuration of one throughput run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Concurrent worker threads.
    pub threads: usize,
    /// Measured wall-clock duration.
    pub duration: Duration,
    /// The workload.
    pub workload: WorkloadSpec,
    /// Stall injected *around* each operation for lock-free structures
    /// (lock-based structures additionally/instead inject inside their
    /// critical sections — configure those at construction). A stalled
    /// lock-free operation delays only its own thread; that asymmetry is
    /// the E2 result.
    pub op_delay: Option<CriticalDelay>,
    /// Record per-operation latency (adds one clock read per op).
    pub measure_latency: bool,
}

impl RunConfig {
    /// `threads` workers for `millis` ms over the standard workload.
    pub fn new(threads: usize, millis: u64, workload: WorkloadSpec) -> Self {
        Self {
            threads,
            duration: Duration::from_millis(millis),
            workload,
            op_delay: None,
            measure_latency: false,
        }
    }

    /// Adds a per-operation stall (see field docs).
    pub fn with_op_delay(mut self, delay: CriticalDelay) -> Self {
        self.op_delay = Some(delay);
        self
    }

    /// Enables per-operation latency recording.
    pub fn with_latency(mut self) -> Self {
        self.measure_latency = true;
        self
    }
}

/// Result of one throughput run.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Total completed operations across threads.
    pub total_ops: u64,
    /// Completed find operations.
    pub finds: u64,
    /// Successful inserts.
    pub insert_hits: u64,
    /// Successful deletes.
    pub delete_hits: u64,
    /// Measured wall-clock time.
    pub elapsed: Duration,
    /// Minimum per-thread completed ops (fairness / starvation signal).
    pub min_thread_ops: u64,
    /// Maximum per-thread completed ops.
    pub max_thread_ops: u64,
    /// Per-operation latency quantiles (when requested).
    pub latency: Option<LatencySummary>,
}

impl RunResult {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64()
    }

    /// max/min per-thread ratio (1.0 = perfectly fair).
    pub fn fairness_ratio(&self) -> f64 {
        if self.min_thread_ops == 0 {
            f64::INFINITY
        } else {
            self.max_thread_ops as f64 / self.min_thread_ops as f64
        }
    }
}

impl fmt::Display for RunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} ops/s ({} ops in {:?})",
            self.ops_per_sec(),
            self.total_ops,
            self.elapsed
        )
    }
}

/// Prefills `dict`, then runs `config.threads` workers for
/// `config.duration`, returning aggregate counts.
pub fn run_throughput<D: Dictionary<u64, u64>>(dict: &D, config: &RunConfig) -> RunResult {
    // Prefill with even keys first (finds hit ~50%, deletes have prey),
    // continuing into odd keys if the requested prefill exceeds them.
    // Insertion order is shuffled: ascending-order prefill would degenerate
    // the BST into a spine and bias the sorted-list walks.
    let spec = &config.workload;
    let range = spec.keys.range().max(1);
    let evens = (0..range).step_by(2);
    let odds = (1..range).step_by(2);
    let mut candidates: Vec<u64> = evens.chain(odds).collect();
    {
        let mut rng = spec.rng_for(u64::MAX);
        rng.shuffle(&mut candidates);
    }
    let mut prefilled = 0u64;
    for k in candidates {
        if prefilled >= spec.prefill.min(range) {
            break;
        }
        if dict.insert(k, k) {
            prefilled += 1;
        }
    }

    let histogram = LatencyHistogram::new();
    let stop = AtomicBool::new(false);
    let started = AtomicU64::new(0);
    let per_thread: Vec<[AtomicU64; 3]> = (0..config.threads)
        .map(|_| [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)])
        .collect();

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for (tid, counters) in per_thread.iter().enumerate() {
            let stop = &stop;
            let started = &started;
            let delay = config.op_delay.clone();
            let mut rng = spec.rng_for(tid as u64);
            let mix = spec.mix;
            let keys = spec.keys;
            let measure = config.measure_latency;
            let histogram = &histogram;
            s.spawn(move || {
                started.fetch_add(1, Ordering::Release);
                while !stop.load(Ordering::Relaxed) {
                    let key = keys.sample(&mut rng);
                    if let Some(d) = &delay {
                        d.maybe_stall();
                    }
                    let op_t0 = measure.then(Instant::now);
                    match mix.sample(&mut rng) {
                        OpKind::Find => {
                            let _ = dict.contains(&key);
                            counters[0].fetch_add(1, Ordering::Relaxed);
                        }
                        OpKind::Insert => {
                            let _ = dict.insert(key, key);
                            counters[1].fetch_add(1, Ordering::Relaxed);
                        }
                        OpKind::Delete => {
                            let _ = dict.remove(&key);
                            counters[2].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if let Some(t0) = op_t0 {
                        histogram.record(t0.elapsed());
                    }
                }
            });
        }
        // Let all workers come up, then time the window.
        while (started.load(Ordering::Acquire) as usize) < config.threads {
            valois_sync::shim::hint::spin_loop();
        }
        std::thread::sleep(config.duration);
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = t0.elapsed();

    let mut total = 0;
    let mut finds = 0;
    let mut inserts = 0;
    let mut deletes = 0;
    let mut min_t = u64::MAX;
    let mut max_t = 0;
    for c in &per_thread {
        let f = c[0].load(Ordering::Relaxed);
        let i = c[1].load(Ordering::Relaxed);
        let d = c[2].load(Ordering::Relaxed);
        let sum = f + i + d;
        total += sum;
        finds += f;
        inserts += i;
        deletes += d;
        min_t = min_t.min(sum);
        max_t = max_t.max(sum);
    }
    RunResult {
        total_ops: total,
        finds,
        insert_hits: inserts,
        delete_hits: deletes,
        elapsed,
        min_thread_ops: if min_t == u64::MAX { 0 } else { min_t },
        max_thread_ops: max_t,
        latency: if config.measure_latency {
            histogram.summary()
        } else {
            None
        },
    }
}

/// Result of a growth (bulk-fill) run — see [`run_fill`].
#[derive(Debug, Clone, Copy)]
pub struct FillResult {
    /// Keys inserted (each exactly once).
    pub keys: u64,
    /// Wall-clock time for the whole fill.
    pub elapsed: Duration,
}

impl FillResult {
    /// Successful insertions per second.
    pub fn inserts_per_sec(&self) -> f64 {
        self.keys as f64 / self.elapsed.as_secs_f64()
    }
}

impl fmt::Display for FillResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} inserts/s ({} keys in {:?})",
            self.inserts_per_sec(),
            self.keys,
            self.elapsed
        )
    }
}

/// The dataset-growth phase of the E-resize experiment: `threads`
/// workers insert the keys `0..keys` (disjoint strided shards, so every
/// insert succeeds exactly once) as fast as they can. This is the
/// workload that punishes a fixed bucket count — the table is forced
/// through its whole size range in one run — and the one a resizable
/// table must absorb with doublings.
pub fn run_fill<D: Dictionary<u64, u64>>(dict: &D, keys: u64, threads: usize) -> FillResult {
    let threads = threads.max(1) as u64;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            s.spawn(move || {
                let mut k = tid;
                while k < keys {
                    let inserted = dict.insert(k, k);
                    debug_assert!(inserted, "shards are disjoint");
                    k += threads;
                }
            });
        }
    });
    FillResult {
        keys,
        elapsed: t0.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;
    use valois_dict::SortedListDict;

    #[test]
    fn runner_counts_operations() {
        let dict: SortedListDict<u64, u64> = SortedListDict::new();
        let cfg = RunConfig::new(2, 50, WorkloadSpec::standard(64));
        let res = run_throughput(&dict, &cfg);
        assert!(res.total_ops > 0, "some operations must complete");
        assert_eq!(res.total_ops, res.finds + res.insert_hits + res.delete_hits);
        assert!(res.ops_per_sec() > 0.0);
        assert!(res.elapsed >= Duration::from_millis(50));
    }

    #[test]
    fn runner_prefills() {
        let dict: SortedListDict<u64, u64> = SortedListDict::new();
        let mut spec = WorkloadSpec::standard(128);
        spec.prefill = 32;
        // Zero-duration run: only the prefill happens.
        let cfg = RunConfig {
            threads: 1,
            duration: Duration::from_millis(1),
            workload: spec,
            op_delay: None,
            measure_latency: false,
        };
        let _ = run_throughput(&dict, &cfg);
        assert!(dict.len() >= 16, "prefill must populate the dictionary");
    }

    #[test]
    fn latency_recording_produces_summary() {
        let dict: SortedListDict<u64, u64> = SortedListDict::new();
        let cfg = RunConfig::new(2, 50, WorkloadSpec::standard(64)).with_latency();
        let res = run_throughput(&dict, &cfg);
        let lat = res.latency.expect("latency requested");
        assert!(lat.samples > 0);
        assert!(lat.p50 <= lat.p99 && lat.p99 <= lat.p999);
    }

    #[test]
    fn fill_inserts_every_key_once() {
        let dict: SortedListDict<u64, u64> = SortedListDict::new();
        let res = run_fill(&dict, 64, 3);
        assert_eq!(res.keys, 64);
        assert_eq!(dict.len(), 64);
        assert!(res.inserts_per_sec() > 0.0);
    }

    #[test]
    fn fairness_ratio_computed() {
        let r = RunResult {
            total_ops: 100,
            finds: 0,
            insert_hits: 0,
            delete_hits: 0,
            elapsed: Duration::from_secs(1),
            min_thread_ops: 40,
            max_thread_ops: 60,
            latency: None,
        };
        assert!((r.fairness_ratio() - 1.5).abs() < 1e-9);
    }
}
