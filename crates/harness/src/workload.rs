//! Workload specification: operation mixes and key distributions.
//!
//! The experiment suite uses the mixes the literature standardized on:
//! read-heavy (90/5/5), balanced (50/25/25), and write-only churn
//! (0/50/50) — all expressible as an [`OpMix`].

use std::fmt;

use valois_sync::rng::SmallRng;

/// One dictionary operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `Find` (§4).
    Find,
    /// `Insert` (§4).
    Insert,
    /// `Delete` (§4).
    Delete,
}

/// Percentages of find/insert/delete operations (must sum to 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Percent of `Find` operations.
    pub find_pct: u8,
    /// Percent of `Insert` operations.
    pub insert_pct: u8,
    /// Percent of `Delete` operations.
    pub delete_pct: u8,
}

impl OpMix {
    /// A custom mix.
    ///
    /// # Panics
    ///
    /// Panics unless the percentages sum to 100.
    pub fn new(find_pct: u8, insert_pct: u8, delete_pct: u8) -> Self {
        assert_eq!(
            find_pct as u32 + insert_pct as u32 + delete_pct as u32,
            100,
            "operation mix must sum to 100"
        );
        Self {
            find_pct,
            insert_pct,
            delete_pct,
        }
    }

    /// 90% find / 5% insert / 5% delete.
    pub fn read_heavy() -> Self {
        Self::new(90, 5, 5)
    }

    /// 50% find / 25% insert / 25% delete.
    pub fn balanced() -> Self {
        Self::new(50, 25, 25)
    }

    /// 0% find / 50% insert / 50% delete.
    pub fn write_only() -> Self {
        Self::new(0, 50, 50)
    }

    /// Draws an operation kind.
    pub fn sample(&self, rng: &mut SmallRng) -> OpKind {
        let roll: u8 = rng.gen_range(0..100u8);
        if roll < self.find_pct {
            OpKind::Find
        } else if roll < self.find_pct + self.insert_pct {
            OpKind::Insert
        } else {
            OpKind::Delete
        }
    }
}

impl fmt::Display for OpMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}",
            self.find_pct, self.insert_pct, self.delete_pct
        )
    }
}

/// Key distribution over `0..range`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Uniform over the range.
    Uniform {
        /// Exclusive upper bound.
        range: u64,
    },
    /// A fraction of operations hit a small hot set (contention model).
    Hotspot {
        /// Exclusive upper bound.
        range: u64,
        /// Size of the hot set (first `hot` keys).
        hot: u64,
        /// Fraction of operations targeting the hot set (0.0–1.0).
        hot_fraction: f64,
    },
    /// Approximate Zipf(θ≈1) over the range via the rejection-inversion
    /// trick on a small table — heavy head, long tail.
    Zipf {
        /// Exclusive upper bound.
        range: u64,
    },
}

impl KeyDist {
    /// Exclusive upper bound of generated keys.
    pub fn range(&self) -> u64 {
        match *self {
            KeyDist::Uniform { range }
            | KeyDist::Hotspot { range, .. }
            | KeyDist::Zipf { range } => range,
        }
    }
}

impl KeyDist {
    /// Draws a key.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match *self {
            KeyDist::Uniform { range } => rng.gen_range(0..range.max(1)),
            KeyDist::Hotspot {
                range,
                hot,
                hot_fraction,
            } => {
                if rng.gen_bool(hot_fraction.clamp(0.0, 1.0)) {
                    rng.gen_range(0..hot.clamp(1, range))
                } else {
                    rng.gen_range(0..range.max(1))
                }
            }
            KeyDist::Zipf { range } => {
                // Inverse-CDF of a continuous 1/x density on [1, range+1):
                // heavier head than uniform, cheap to sample.
                let n = range.max(1) as f64;
                let u: f64 = rng.gen_f64();
                let x = (n + 1.0).powf(u) - 1.0;
                (x as u64).min(range.saturating_sub(1))
            }
        }
    }
}

/// A complete workload description for one run.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Operation mix.
    pub mix: OpMix,
    /// Key distribution.
    pub keys: KeyDist,
    /// Items inserted (uniformly) before measurement starts.
    pub prefill: u64,
    /// RNG seed (each thread derives its own stream).
    pub seed: u64,
}

impl WorkloadSpec {
    /// Balanced mix over a uniform key range, half prefilled.
    pub fn standard(key_range: u64) -> Self {
        Self {
            mix: OpMix::balanced(),
            keys: KeyDist::Uniform { range: key_range },
            prefill: key_range / 2,
            seed: 0x5EED_1995_0CA5_0001,
        }
    }

    /// Thread-local RNG for thread `tid`.
    pub fn rng_for(&self, tid: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.seed ^ (tid.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_sums_enforced() {
        let m = OpMix::new(50, 25, 25);
        assert_eq!(m.find_pct, 50);
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_mix_panics() {
        let _ = OpMix::new(50, 25, 30);
    }

    #[test]
    fn mix_sampling_matches_percentages() {
        let m = OpMix::read_heavy();
        let mut rng = SmallRng::seed_from_u64(42);
        let mut finds = 0;
        for _ in 0..10_000 {
            if m.sample(&mut rng) == OpKind::Find {
                finds += 1;
            }
        }
        assert!((8_700..9_300).contains(&finds), "finds={finds}");
    }

    #[test]
    fn uniform_keys_in_range() {
        let d = KeyDist::Uniform { range: 64 };
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1_000 {
            assert!(d.sample(&mut rng) < 64);
        }
    }

    #[test]
    fn hotspot_skews_towards_hot_set() {
        let d = KeyDist::Hotspot {
            range: 1_000,
            hot: 10,
            hot_fraction: 0.9,
        };
        let mut rng = SmallRng::seed_from_u64(2);
        let hot_hits = (0..10_000).filter(|_| d.sample(&mut rng) < 10).count();
        assert!(hot_hits > 8_500, "hot_hits={hot_hits}");
    }

    #[test]
    fn zipf_head_is_heavy() {
        let d = KeyDist::Zipf { range: 1_000 };
        let mut rng = SmallRng::seed_from_u64(3);
        let head = (0..10_000).filter(|_| d.sample(&mut rng) < 10).count();
        let uniform_expect = 10_000 / 100; // 1% of range
        assert!(head > uniform_expect * 5, "head={head}");
    }

    #[test]
    fn per_thread_rngs_differ() {
        let spec = WorkloadSpec::standard(100);
        let a: u64 = spec.rng_for(0).next_u64();
        let b: u64 = spec.rng_for(1).next_u64();
        assert_ne!(a, b);
    }
}
