//! Workload generation, throughput measurement, and correctness checking
//! for the Valois reproduction experiments (DESIGN.md §4, E1–E8).
//!
//! * [`workload`] — operation mixes, key distributions, prefilling.
//! * [`runner`] — multi-threaded duration-based throughput runs with
//!   optional stall injection (the E2 preemption model).
//! * [`linearize`] — a Wing–Gong-style exhaustive linearizability checker
//!   for small recorded histories (validates the §2.1 requirement).
//! * [`table`] — fixed-width table printing for paper-style experiment
//!   output.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod latency;
pub mod linearize;
pub mod retry;
pub mod runner;
pub mod table;
pub mod workload;

pub use latency::{LatencyHistogram, LatencySummary};
pub use linearize::{check_linearizable, History, Op, Recorded};
pub use retry::{run_hot_window, HotWindowConfig, HotWindowResult};
pub use runner::{run_fill, run_throughput, FillResult, RunConfig, RunResult};
pub use table::Table;
pub use workload::{KeyDist, OpKind, OpMix, WorkloadSpec};
