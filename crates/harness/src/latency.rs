//! Log-scale latency histograms for per-operation timing.
//!
//! The convoy effects the paper describes (§1) show up far more clearly in
//! tail latency than in throughput: a stalled lock holder turns every
//! waiter's operation into a multi-millisecond outlier. The runner records
//! into a [`LatencyHistogram`] when asked; experiments report p50/p99/max.

use std::fmt;
use std::time::Duration;
use valois_sync::shim::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets (covers 1 ns ..= ~18 s).
const BUCKETS: usize = 64;

/// A concurrent power-of-two-bucket latency histogram.
///
/// Recording is one relaxed `fetch_add`; any thread may record while
/// another reads quantiles (reads are racy snapshots, as all live
/// monitoring is).
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().max(1) as u64;
        let bucket = (63 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The upper bound of the bucket containing quantile `q` (0.0–1.0),
    /// i.e. the latency below which ~q of samples fall (within the 2×
    /// bucket resolution). `None` when empty.
    ///
    /// Nearest-rank semantics: the sample at rank `ceil(q·n)` (1-based).
    /// At small sample counts high quantiles *saturate to the maximum
    /// recorded sample* — with n < 1000, p999's rank is n, so
    /// `quantile(0.999)` equals `quantile(1.0)`. It never indexes out of
    /// range and never silently degrades to a lower percentile: the rank
    /// is clamped into `1..=n` (guarding the float round-up at huge n,
    /// where `ceil(q·n)` can land on `n + 1` and would otherwise fall
    /// through to the open-ended overflow bucket), and a non-finite `q`
    /// saturates to the max sample rather than propagating NaN as rank 0.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = if q.is_finite() {
            q.clamp(0.0, 1.0)
        } else {
            1.0
        };
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(Duration::from_nanos(
                    1u64.checked_shl(i as u32 + 1).unwrap_or(u64::MAX),
                ));
            }
        }
        Some(Duration::from_nanos(u64::MAX))
    }

    /// The maximum recorded sample's bucket upper bound (`quantile(1.0)`).
    /// `None` when empty.
    pub fn max(&self) -> Option<Duration> {
        self.quantile(1.0)
    }

    /// Convenience: (p50, p99, p999) upper bounds.
    pub fn summary(&self) -> Option<LatencySummary> {
        Some(LatencySummary {
            p50: self.quantile(0.50)?,
            p99: self.quantile(0.99)?,
            p999: self.quantile(0.999)?,
            samples: self.count(),
        })
    }

    /// Merges another histogram into this one.
    pub fn merge(&self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter().zip(other.buckets.iter()) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.summary() {
            Some(s) => s.fmt(f),
            None => f.write_str("LatencyHistogram(empty)"),
        }
    }
}

/// Quantile snapshot of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Median upper bound.
    pub p50: Duration,
    /// 99th percentile upper bound.
    pub p99: Duration,
    /// 99.9th percentile upper bound.
    pub p999: Duration,
    /// Samples recorded.
    pub samples: u64,
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p50≤{:?} p99≤{:?} p999≤{:?} (n={})",
            self.p50, self.p99, self.p999, self.samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.quantile(0.5).is_none());
        assert!(h.summary().is_none());
    }

    #[test]
    fn quantiles_bracket_samples() {
        let h = LatencyHistogram::new();
        // 99 fast samples, 1 slow outlier.
        for _ in 0..99 {
            h.record(Duration::from_nanos(100));
        }
        h.record(Duration::from_millis(10));
        let s = h.summary().unwrap();
        assert!(s.p50 <= Duration::from_nanos(256), "p50 {:?}", s.p50);
        assert!(s.p99 <= Duration::from_nanos(256), "p99 {:?}", s.p99);
        assert!(s.p999 >= Duration::from_millis(8), "p999 {:?}", s.p999);
        assert_eq!(s.samples, 100);
    }

    #[test]
    fn bucket_bounds_are_powers_of_two() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1000)); // bucket [512, 1024)
        assert_eq!(h.quantile(1.0), Some(Duration::from_nanos(1024)));
    }

    #[test]
    fn merge_combines_counts() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(Duration::from_nanos(10));
        b.record(Duration::from_nanos(10));
        b.record(Duration::from_micros(10));
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    /// Boundary audit (n = 0): every quantile is `None`, never a panic or
    /// a zero-duration fabrication.
    #[test]
    fn boundary_n0_all_quantiles_none() {
        let h = LatencyHistogram::new();
        for q in [0.0, 0.5, 0.99, 0.999, 1.0, f64::NAN] {
            assert!(h.quantile(q).is_none(), "q={q}");
        }
        assert!(h.max().is_none());
    }

    /// Boundary audit (n = 1): with a single sample every quantile is that
    /// sample's bucket bound — rank clamps into `1..=1`.
    #[test]
    fn boundary_n1_every_quantile_is_the_sample() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(700)); // bucket (512, 1024]
        let expect = Duration::from_nanos(1024);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), Some(expect), "q={q}");
        }
        let s = h.summary().unwrap();
        assert_eq!(
            (s.p50, s.p99, s.p999, s.samples),
            (expect, expect, expect, 1)
        );
    }

    /// Boundary audit (n = 2): p999's rank is ceil(1.998) = 2, so it must
    /// report the *larger* sample (saturate to max), while p50 (rank 1)
    /// reports the smaller one.
    #[test]
    fn boundary_n2_p999_saturates_to_max() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(100)); // bucket bound 128
        h.record(Duration::from_millis(10)); // bucket bound ~16.8ms
        assert_eq!(h.quantile(0.5), Some(Duration::from_nanos(128)));
        assert_eq!(h.quantile(0.999), h.max());
        assert!(h.quantile(0.999).unwrap() >= Duration::from_millis(8));
    }

    /// n = 500: p99 (rank 495) and p999 (rank 500) must *differ* when the
    /// top sample is an outlier — p999 saturates to max rather than
    /// silently echoing p99.
    #[test]
    fn p999_is_not_p99_below_one_thousand_samples() {
        let h = LatencyHistogram::new();
        for _ in 0..499 {
            h.record(Duration::from_nanos(100));
        }
        h.record(Duration::from_millis(10));
        let s = h.summary().unwrap();
        assert!(s.p99 <= Duration::from_nanos(128), "p99 {:?}", s.p99);
        assert!(s.p999 >= Duration::from_millis(8), "p999 {:?}", s.p999);
        assert_eq!(Some(s.p999), h.max());
    }

    /// Boundary audit (n = 999): p999's rank is ceil(998.001) = 999 — the
    /// maximum sample, still saturated.
    #[test]
    fn boundary_n999_p999_is_max() {
        let h = LatencyHistogram::new();
        for _ in 0..998 {
            h.record(Duration::from_nanos(100));
        }
        h.record(Duration::from_millis(10));
        assert!(h.quantile(0.999).unwrap() >= Duration::from_millis(8));
        assert_eq!(h.quantile(0.999), h.max());
    }

    /// Boundary audit (n = 1000): the first count where p999 stops
    /// saturating — rank ceil(999.0) = 999 picks the 999th smallest, so a
    /// single top outlier is now *excluded* from p999 (and still reported
    /// by `max`).
    #[test]
    fn boundary_n1000_p999_excludes_single_outlier() {
        let h = LatencyHistogram::new();
        for _ in 0..999 {
            h.record(Duration::from_nanos(100));
        }
        h.record(Duration::from_millis(10));
        assert!(h.quantile(0.999).unwrap() <= Duration::from_nanos(128));
        assert!(h.max().unwrap() >= Duration::from_millis(8));
    }

    /// Out-of-domain `q` values clamp instead of panicking or indexing out
    /// of range: q > 1 and non-finite q saturate to max, q < 0 to rank 1.
    #[test]
    fn out_of_domain_q_clamps() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(100));
        h.record(Duration::from_millis(10));
        assert_eq!(h.quantile(2.0), h.max());
        assert_eq!(h.quantile(f64::NAN), h.max());
        assert_eq!(h.quantile(f64::INFINITY), h.max());
        assert_eq!(h.quantile(-3.0), Some(Duration::from_nanos(128)));
    }

    #[test]
    fn concurrent_recording_is_exact_in_count() {
        let h = LatencyHistogram::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..10_000u64 {
                        h.record(Duration::from_nanos(i + 1));
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
    }
}
