//! Fixed-width text tables for paper-style experiment output.

use std::fmt;

/// A simple right-aligned text table builder.
///
/// # Example
///
/// ```
/// use valois_harness::Table;
/// let mut t = Table::new(&["threads", "ops/s"]);
/// t.row(&["1", "123456"]);
/// t.row(&["2", "234567"]);
/// let s = t.to_string();
/// assert!(s.contains("threads"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long_header"]);
        t.row(&["12345", "x"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long_header"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].contains("12345"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn len_tracks_rows() {
        let mut t = Table::new(&["a"]);
        assert!(t.is_empty());
        t.row(&["1"]).row(&["2"]);
        assert_eq!(t.len(), 2);
    }
}
