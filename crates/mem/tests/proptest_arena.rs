//! Randomized tests of the §5 memory manager: conservation (every alloc
//! is reclaimable exactly once), free-list integrity after arbitrary
//! scripts, and link-transfer bookkeeping.
//!
//! Formerly proptest-based; the offline build environment cannot fetch
//! proptest, so the scripts come from the in-repo seeded RNG (fixed seeds
//! keep failures reproducible by case number).

use valois_mem::{Arena, ArenaConfig, Link, Managed, NodeHeader, ReclaimedLinks};
use valois_sync::rng::SmallRng;

#[derive(Default)]
struct TestNode {
    header: NodeHeader,
    next: Link<TestNode>,
    back: Link<TestNode>,
}

impl Managed for TestNode {
    fn header(&self) -> &NodeHeader {
        &self.header
    }
    fn free_link(&self) -> &Link<Self> {
        &self.next
    }
    fn drain_links(&self) -> ReclaimedLinks<Self> {
        let mut links = ReclaimedLinks::new();
        links.push(self.next.swap(std::ptr::null_mut()));
        links.push(self.back.swap(std::ptr::null_mut()));
        links
    }
    fn reset_for_alloc(&self) {
        self.next.write(std::ptr::null_mut());
        self.back.write(std::ptr::null_mut());
    }
}

#[derive(Debug, Clone)]
enum ArenaOp {
    Alloc,
    /// Release the i-th oldest held node (mod held count).
    Release(u8),
    /// Link the i-th held node's `back` to the j-th held node (counted).
    LinkBack(u8, u8),
}

/// Weighted 3:2:1 alloc/release/link, matching the old proptest strategy.
fn random_ops(rng: &mut SmallRng, max_len: usize) -> Vec<ArenaOp> {
    let len = rng.gen_range(1..max_len);
    (0..len)
        .map(|_| match rng.gen_range(0..6u8) {
            0..=2 => ArenaOp::Alloc,
            3 | 4 => ArenaOp::Release(rng.next_u64() as u8),
            _ => ArenaOp::LinkBack(rng.next_u64() as u8, rng.next_u64() as u8),
        })
        .collect()
}

/// Any alloc/release/link script conserves nodes: after releasing all
/// held references, live_nodes() returns to zero and every node is
/// allocatable again.
#[test]
fn scripts_conserve_nodes() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0xA4E4_0001 ^ (case * 0x9E37));
        let ops = random_ops(&mut rng, 120);
        let cap = 64usize;
        let arena: Arena<TestNode> =
            Arena::with_config(ArenaConfig::new().initial_capacity(cap).max_nodes(cap));
        let mut held: Vec<*mut TestNode> = Vec::new();
        for op in &ops {
            match *op {
                ArenaOp::Alloc => {
                    if let Ok(p) = arena.alloc() {
                        held.push(p);
                    }
                }
                ArenaOp::Release(i) => {
                    if !held.is_empty() {
                        let idx = i as usize % held.len();
                        let p = held.swap_remove(idx);
                        // SAFETY: we hold the allocation reference.
                        unsafe { arena.release(p) };
                    }
                }
                ArenaOp::LinkBack(i, j) => {
                    if held.len() >= 2 {
                        let a = held[i as usize % held.len()];
                        let b = held[j as usize % held.len()];
                        if a != b {
                            // SAFETY: both held; store_link transfers the
                            // old count and installs the new one.
                            unsafe { arena.store_link(&(*a).back, b) };
                        }
                    }
                }
            }
        }
        for p in held.drain(..) {
            // SAFETY: allocation references released exactly once.
            unsafe { arena.release(p) };
        }
        // Links may form cycles (a.back->b, b.back->a), which reference
        // counting alone cannot reclaim — allow residue but never more
        // than the pool, and the arena must remain functional.
        let live = arena.live_nodes();
        assert!(live as usize <= cap, "case {case}: live {live} > cap {cap}");
        let p = arena.alloc();
        assert!(
            p.is_ok() || live as usize == cap,
            "case {case}: arena wedged with {live} live"
        );
        if let Ok(p) = p {
            unsafe { arena.release(p) };
        }
    }
}

/// Alloc up to capacity always yields distinct nodes; exhaustion is
/// reported exactly at the cap.
#[test]
fn capped_arena_yields_distinct_nodes() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0xA4E4_0002 ^ (case * 0x9E37));
        let cap = rng.gen_range(1..64usize);
        let arena: Arena<TestNode> =
            Arena::with_config(ArenaConfig::new().initial_capacity(cap).max_nodes(cap));
        let mut seen = std::collections::HashSet::new();
        let mut held = Vec::new();
        for _ in 0..cap {
            let p = arena.alloc().expect("within capacity");
            assert!(seen.insert(p as usize), "case {case}: duplicate allocation");
            held.push(p);
        }
        assert!(arena.alloc().is_err(), "case {case}: exhaustion at cap");
        for p in held {
            // SAFETY: allocation references released exactly once.
            unsafe { arena.release(p) };
        }
        assert_eq!(arena.live_nodes(), 0, "case {case}");
    }
}

/// Free-list recycling is FIFO-agnostic but complete: after k
/// alloc/release rounds through a small pool, the stats balance.
#[test]
fn recycling_rounds_balance() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0xA4E4_0003 ^ (case * 0x9E37));
        let rounds = rng.gen_range(1..200usize);
        let arena: Arena<TestNode> =
            Arena::with_config(ArenaConfig::new().initial_capacity(4).max_nodes(4));
        for _ in 0..rounds {
            let a = arena.alloc().unwrap();
            let b = arena.alloc().unwrap();
            // SAFETY: allocation references released exactly once.
            unsafe {
                arena.release(a);
                arena.release(b);
            }
        }
        let stats = arena.stats();
        assert_eq!(stats.allocs, rounds as u64 * 2, "case {case}");
        assert_eq!(stats.reclaims, rounds as u64 * 2, "case {case}");
        assert_eq!(stats.live_nodes(), 0, "case {case}");
    }
}
