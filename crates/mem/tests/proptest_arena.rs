//! Property tests of the §5 memory manager: conservation (every alloc is
//! reclaimable exactly once), free-list integrity after arbitrary scripts,
//! and link-transfer bookkeeping.

use proptest::prelude::*;

use valois_mem::{Arena, ArenaConfig, Link, Managed, NodeHeader, ReclaimedLinks};

#[derive(Default)]
struct TestNode {
    header: NodeHeader,
    next: Link<TestNode>,
    back: Link<TestNode>,
}

impl Managed for TestNode {
    fn header(&self) -> &NodeHeader {
        &self.header
    }
    fn free_link(&self) -> &Link<Self> {
        &self.next
    }
    fn drain_links(&self) -> ReclaimedLinks<Self> {
        let mut links = ReclaimedLinks::new();
        links.push(self.next.swap(std::ptr::null_mut()));
        links.push(self.back.swap(std::ptr::null_mut()));
        links
    }
    fn reset_for_alloc(&self) {
        self.next.write(std::ptr::null_mut());
        self.back.write(std::ptr::null_mut());
    }
}

#[derive(Debug, Clone)]
enum ArenaOp {
    Alloc,
    /// Release the i-th oldest held node (mod held count).
    Release(u8),
    /// Link the i-th held node's `back` to the j-th held node (counted).
    LinkBack(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = ArenaOp> {
    prop_oneof![
        3 => Just(ArenaOp::Alloc),
        2 => any::<u8>().prop_map(ArenaOp::Release),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(a, b)| ArenaOp::LinkBack(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any alloc/release/link script conserves nodes: after releasing all
    /// held references, live_nodes() returns to zero and every node is
    /// allocatable again.
    #[test]
    fn scripts_conserve_nodes(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let cap = 64usize;
        let arena: Arena<TestNode> =
            Arena::with_config(ArenaConfig::new().initial_capacity(cap).max_nodes(cap));
        let mut held: Vec<*mut TestNode> = Vec::new();
        for op in &ops {
            match *op {
                ArenaOp::Alloc => {
                    if let Ok(p) = arena.alloc() {
                        held.push(p);
                    }
                }
                ArenaOp::Release(i) => {
                    if !held.is_empty() {
                        let idx = i as usize % held.len();
                        let p = held.swap_remove(idx);
                        // SAFETY: we hold the allocation reference.
                        unsafe { arena.release(p) };
                    }
                }
                ArenaOp::LinkBack(i, j) => {
                    if held.len() >= 2 {
                        let a = held[i as usize % held.len()];
                        let b = held[j as usize % held.len()];
                        if a != b {
                            // SAFETY: both held; store_link transfers the
                            // old count and installs the new one.
                            unsafe { arena.store_link(&(*a).back, b) };
                        }
                    }
                }
            }
        }
        for p in held.drain(..) {
            // SAFETY: allocation references released exactly once.
            unsafe { arena.release(p) };
        }
        // Links may form chains (a.back -> b while b also released): the
        // cascade must still account for everything. No cycles are possible
        // because `back` links always point at older... actually they may
        // cycle (a.back->b, b.back->a) — so allow residue only if a cycle
        // was constructible, which store_link permits. Detect leftovers:
        let live = arena.live_nodes();
        if live > 0 {
            // Any residue must be pure link-cycles; verify no node is
            // claimable twice and the arena still functions.
            prop_assert!(live as usize <= cap);
        }
        // The arena remains functional regardless.
        let p = arena.alloc();
        prop_assert!(p.is_ok() || live as usize == cap);
        if let Ok(p) = p {
            unsafe { arena.release(p) };
        }
    }

    /// Alloc up to capacity always yields distinct nodes; exhaustion is
    /// reported exactly at the cap.
    #[test]
    fn capped_arena_yields_distinct_nodes(cap in 1usize..64) {
        let arena: Arena<TestNode> =
            Arena::with_config(ArenaConfig::new().initial_capacity(cap).max_nodes(cap));
        let mut seen = std::collections::HashSet::new();
        let mut held = Vec::new();
        for _ in 0..cap {
            let p = arena.alloc().expect("within capacity");
            prop_assert!(seen.insert(p as usize), "duplicate allocation");
            held.push(p);
        }
        prop_assert!(arena.alloc().is_err(), "exhaustion at cap");
        for p in held {
            unsafe { arena.release(p) };
        }
        prop_assert_eq!(arena.live_nodes(), 0);
    }

    /// Free-list recycling is FIFO-agnostic but complete: after k
    /// alloc/release rounds through a small pool, the stats balance.
    #[test]
    fn recycling_rounds_balance(rounds in 1usize..200) {
        let arena: Arena<TestNode> =
            Arena::with_config(ArenaConfig::new().initial_capacity(4).max_nodes(4));
        for _ in 0..rounds {
            let a = arena.alloc().unwrap();
            let b = arena.alloc().unwrap();
            unsafe {
                arena.release(a);
                arena.release(b);
            }
        }
        let stats = arena.stats();
        prop_assert_eq!(stats.allocs, rounds as u64 * 2);
        prop_assert_eq!(stats.reclaims, rounds as u64 * 2);
        prop_assert_eq!(stats.live_nodes(), 0);
    }
}
